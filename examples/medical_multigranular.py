"""Multi-granular releases for audiences with different trust levels (§3).

Run with::

    python examples/medical_multigranular.py

The paper's motivating scenario: a hospital shares anonymized patient
records with three entities — in-house researchers (most trusted), an
external research group, and the open Internet (least trusted) — at
granularities 5, 20 and 50.  Releasing three anonymizations of the *same*
table invites an intersection attack, so the releases are generated from
one spatial index (whole-leaf groups are k-bound, Lemma 1) and the attack
is then actually run to show it fails.  A naive alternative — three
independent re-anonymizations — is attacked too, showing how records leak.
"""

import random

from repro import (
    DistinctLDiversity,
    MondrianAnonymizer,
    RTreeAnonymizer,
    Record,
    ReleaseRegistry,
    ReleaseRejected,
    Table,
    intersection_attack,
    make_landsend_table,
)

AILMENTS = (
    "anemia", "flu", "cancer", "torn acl", "whiplash",
    "asthma", "diabetes", "migraine",
)


def patient_table(count: int, seed: int) -> Table:
    """A sales-shaped table recast as patient records with an ailment column."""
    base = make_landsend_table(count, seed=seed)
    rng = random.Random(seed)
    records = [
        Record(record.rid, record.point, (rng.choice(AILMENTS),))
        for record in base
    ]
    return Table(base.schema, records)


def main() -> None:
    table = patient_table(10_000, seed=7)
    audiences = {
        "in-house researchers": 5,
        "external research group": 20,
        "the Internet": 50,
    }

    # One index, three releases, and a registry that audits every handout:
    # k-anonymity survives collusion, and the registry proves it on entry.
    anonymizer = RTreeAnonymizer(table, base_k=5, leaf_capacity=9)
    anonymizer.bulk_load(table)
    registry = ReleaseRegistry(table, pledge_k=5)
    safe_releases = []
    print("hierarchically bound releases (one shared index):")
    for audience, k in audiences.items():
        release = anonymizer.anonymize(k)
        safe_releases.append(release)
        registry.register(audience, release, k)
        print(f"  {audience:26s} k={k:3d}: {release.summary()}")
    report = registry.audit()
    print(f"  intersection attack over all three: minimum candidate set "
          f"{report.min_candidates} (>= 5 means base-k anonymity held)")

    # The registry is the enforcement point: a crossing re-anonymization
    # that would isolate records is refused at the door.
    rogue = MondrianAnonymizer(table.sample(len(table), seed=99)).anonymize(5)
    try:
        registry.register("rogue analytics vendor", rogue, 5)
        print("  rogue release registered (unexpected!)")
    except ReleaseRejected as refusal:
        print(f"  rogue release refused: {refusal}\n")

    # The naive alternative: independent re-anonymizations of the table.
    naive_releases = [
        MondrianAnonymizer(table.sample(len(table), seed=s)).anonymize(k)
        for s, k in zip((1, 2, 3), audiences.values())
    ]
    naive_report = intersection_attack(naive_releases)
    print("independent re-anonymizations (what the paper warns against):")
    print(f"  minimum candidate set {naive_report.min_candidates}; records with "
          f"fewer than 5 candidates: {naive_report.compromised_below[5]:,} "
          f"of {naive_report.records:,}")

    # Stronger definitions plug straight in: l-diverse release for the web.
    diverse = anonymizer.anonymize(
        50, constraint=DistinctLDiversity(l=4, sensitive_index=0)
    )
    worst = min(
        len({r.sensitive[0] for r in partition.records})
        for partition in diverse.partitions
    )
    print(f"\n4-diverse 50-anonymous web release: {diverse.summary()}; "
          f"every partition carries >= {worst} distinct ailments")


if __name__ == "__main__":
    main()
