"""Census microdata with generalization hierarchies, end to end.

Run with::

    python examples/census_hierarchies.py

The canonical k-anonymity scenario: census-style microdata (the shape of
the UCI Adult extract) with hierarchical categorical attributes.  Builds a
4-diverse 25-anonymous release where diversity is enforced on the income
bracket, renders partitions with hierarchy labels ("government",
"was-married") instead of bare code intervals, publishes the release to
CSV, and re-audits it from the published file alone — the recipient's
perspective.
"""

import tempfile
from collections import Counter
from pathlib import Path

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import describe_partition
from repro.dataset.census import make_census_table
from repro.dataset.export import read_release_csv, write_release_csv
from repro.metrics.certainty import certainty_penalty
from repro.privacy.ldiversity import DistinctLDiversity
from repro.privacy.kanonymity import verify_release

K = 25


def main() -> None:
    table = make_census_table(8_000, seed=2024)
    incomes = Counter(record.sensitive[0] for record in table)
    print(f"census table: {len(table):,} records; income marginals {dict(incomes)}")

    anonymizer = RTreeAnonymizer(table, base_k=5, leaf_capacity=9)
    anonymizer.bulk_load(table)

    constraint = DistinctLDiversity(2, sensitive_index=0)
    release = anonymizer.anonymize(K, constraint=constraint)
    print(f"{K}-anonymous, 2-diverse release: {release.summary()}")
    print("audit:", verify_release(release, table, K) or "clean")
    print("income-diverse partitions:", constraint.check_table(release))

    # Hierarchy-aware scoring: the categorical certainty penalty charges
    # covered leaf fractions instead of code-interval widths.
    numeric = certainty_penalty(release, table)
    hierarchical = certainty_penalty(release, table, use_hierarchies=True)
    print(f"certainty penalty: {numeric:,.0f} (interval) "
          f"vs {hierarchical:,.0f} (hierarchy-aware)")

    # One partition, rendered the way Figure 1(b) renders generalizations.
    print("\na published equivalence class:")
    partition = release.partitions[0]
    for name, value in zip(table.schema.names(),
                           describe_partition(partition, table.schema)):
        print(f"  {name:16s} {value}")
    brackets = Counter(r.sensitive[0] for r in partition.records)
    print(f"  income           {dict(brackets)}  "
          f"({len(partition)} indistinguishable records)")

    # Publish to CSV and re-read as the recipient would.
    with tempfile.TemporaryDirectory() as scratch:
        path = Path(scratch) / "census_release.csv"
        rows = write_release_csv(release, path)
        recipient_view = read_release_csv(path, table.schema)
        print(f"\npublished {rows:,} rows to CSV; recipient sees "
              f"{len(recipient_view.boxes)} equivalence classes, "
              f"k-effective {recipient_view.k_effective}")


if __name__ == "__main__":
    main()
