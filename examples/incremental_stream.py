"""Incremental anonymization of a record stream (§2.2).

Run with::

    python examples/incremental_stream.py

Simulates a live sales feed: an initial bulk load, then batches of new
orders arriving (with occasional deletions for returns/GDPR erasure).
After every batch the anonymized view is immediately consistent — no
re-anonymization ever happens — and its quality is tracked to show it does
not decay relative to anonymizing everything from scratch.
"""

import random
import time

from repro import (
    LandsEndGenerator,
    MondrianAnonymizer,
    RTreeAnonymizer,
    Table,
    certainty_penalty,
    compact_table,
    is_k_anonymous,
)

K = 10
BATCH = 2_500
BATCHES = 6


def main() -> None:
    generator = LandsEndGenerator(seed=11)
    rng = random.Random(11)

    first = generator.generate(BATCH, stream_offset=0)
    anonymizer = RTreeAnonymizer(first, base_k=K, leaf_capacity=2 * K - 1)
    start = time.perf_counter()
    anonymizer.bulk_load(first)
    print(f"initial load: {BATCH:,} records in {time.perf_counter() - start:.2f}s")

    seen = Table(first.schema, list(first.records))
    live_rids = {record.rid: record for record in first}

    for batch_number in range(1, BATCHES + 1):
        batch = generator.generate(
            BATCH, stream_offset=batch_number, first_rid=batch_number * BATCH
        )
        start = time.perf_counter()
        anonymizer.insert_batch(batch)
        insert_time = time.perf_counter() - start
        for record in batch:
            seen.append(record)
            live_rids[record.rid] = record

        # A few returns: delete ~1% of live records through the index.
        victims = rng.sample(sorted(live_rids), k=max(1, len(live_rids) // 100))
        start = time.perf_counter()
        for rid in victims:
            record = live_rids.pop(rid)
            anonymizer.delete(rid, record.point)
        delete_time = time.perf_counter() - start

        current = Table(seen.schema, list(live_rids.values()))
        incremental = anonymizer.anonymize(K)
        scratch = compact_table(MondrianAnonymizer(current).anonymize(K))
        print(
            f"batch {batch_number}: +{BATCH:,}/-{len(victims)} records in "
            f"{insert_time:.2f}s/{delete_time:.2f}s | "
            f"{len(anonymizer):,} live | k-anonymous: "
            f"{is_k_anonymous(incremental, K)} | certainty "
            f"incremental {certainty_penalty(incremental, current):,.0f} vs "
            f"from-scratch {certainty_penalty(scratch, current):,.0f}"
        )

    print("\nincremental maintenance never re-anonymized the data set; "
          "a non-incremental algorithm would have re-run "
          f"{BATCHES} times over up to {len(seen):,} records.")


if __name__ == "__main__":
    main()
