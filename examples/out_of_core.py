"""Out-of-core anonymization with the metered storage layer (§2.1, §5.2).

Run with::

    python examples/out_of_core.py

Stages a synthetic Agrawal data set to a binary record file, then
bulk-anonymizes it through the buffer tree with the simulated page storage
attached, under shrinking memory budgets.  The printed I/O counts are what
Figure 8(b) plots: note how halving memory raises I/O by *less* than 2x.
"""

import os
import tempfile

from repro import AgrawalGenerator, RTreeAnonymizer
from repro.dataset.io import RecordFileReader, read_table
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile

RECORDS = 30_000
K = 10


def main() -> None:
    generator = AgrawalGenerator(seed=5)
    with tempfile.TemporaryDirectory() as scratch:
        path = os.path.join(scratch, "agrawal.rec")
        written = generator.write_file(path, RECORDS)
        reader = RecordFileReader(path)
        data_bytes = written * reader.record_bytes
        print(f"staged {written:,} records ({reader.record_bytes} bytes each, "
              f"{data_bytes / 1e6:.1f} MB) to {path}")

        table = read_table(path, generator.schema)
        print(f"{'memory':>10s} {'reads':>10s} {'writes':>10s} {'total I/O':>10s}")
        budget = data_bytes // 2
        previous_total = None
        while budget >= data_bytes // 16:
            pagefile: PageFile = PageFile(page_bytes=4096, record_bytes=36)
            pool: BufferPool = BufferPool(pagefile, budget)
            anonymizer = RTreeAnonymizer(
                table, base_k=K, leaf_capacity=2 * K - 1, pool=pool
            )
            anonymizer.bulk_load(table)
            pool.flush()
            stats = pagefile.stats
            growth = (
                f"  ({stats.total / previous_total:.2f}x after halving memory)"
                if previous_total
                else ""
            )
            print(f"{budget // 1024:>8d}KB {stats.reads:>10,} {stats.writes:>10,} "
                  f"{stats.total:>10,}{growth}")
            previous_total = stats.total
            budget //= 2

    print("\nthe sub-2x growth per halving is the buffer tree at work: "
          "most page traffic hits the hot upper levels, which stay cached.")


if __name__ == "__main__":
    main()
