"""Workload-aware anonymization with biased and weighted splitting (§2.4).

Run with::

    python examples/workload_aware.py

When the analysts who will consume the anonymized data are known to query
mostly one attribute (zipcode, say, for regional studies), the index can
spend its splits there.  This example compares three trees on a
zipcode-only COUNT workload: unbiased, hard-biased (always split zipcode),
and softly weighted (zipcode worth 4x in the split objective) — and then
shows the price the biased tree pays on a general all-attribute workload.
"""

from repro import (
    BiasedSplitPolicy,
    RTreeAnonymizer,
    WeightedSplitPolicy,
    average_error,
    evaluate_workload,
    make_landsend_table,
    random_range_workload,
    single_attribute_workload,
)

K = 10


def main() -> None:
    table = make_landsend_table(15_000, seed=3)
    zip_dimension = table.schema.index_of("zipcode")
    dimensions = table.schema.dimensions

    trees = {
        "unbiased": None,
        "biased (zipcode only)": BiasedSplitPolicy([zip_dimension]),
        "weighted (zipcode x4)": WeightedSplitPolicy(
            [4.0 if d == zip_dimension else 1.0 for d in range(dimensions)]
        ),
    }

    zipcode_queries = single_attribute_workload(table, "zipcode", 500, seed=21)
    general_queries = random_range_workload(table, 500, seed=22)

    print(f"{'policy':24s} {'zipcode workload':>18s} {'general workload':>18s}")
    for name, policy in trees.items():
        anonymizer = RTreeAnonymizer(
            table, base_k=K, leaf_capacity=2 * K - 1, split_policy=policy
        )
        anonymizer.bulk_load(table)
        release = anonymizer.anonymize(K)
        zip_error = average_error(evaluate_workload(zipcode_queries, release, table))
        general_error = average_error(
            evaluate_workload(general_queries, release, table)
        )
        print(f"{name:24s} {zip_error:18.2f} {general_error:18.2f}")

    print("\nlower is better: biasing buys accuracy on the anticipated "
          "workload at the cost of the general one — the §2.4 trade-off.")


if __name__ == "__main__":
    main()
