"""Quickstart: bulk-anonymize a table and inspect the release.

Run with::

    python examples/quickstart.py

Builds a Lands End-like sales table, bulk-loads it through the R+-tree
anonymizer, emits a 10-anonymous release, verifies it, and scores it with
the three paper metrics.
"""

from repro import (
    RTreeAnonymizer,
    certainty_penalty,
    discernibility_penalty,
    kl_divergence,
    make_landsend_table,
    verify_release,
)
from repro.core.compaction import describe_partition


def main() -> None:
    # A 10,000-record sales table with eight quasi-identifier attributes.
    table = make_landsend_table(10_000, seed=42)
    print(f"original table: {len(table):,} records, "
          f"{table.schema.dimensions} quasi-identifier attributes")

    # Build the index at base k=5: every leaf holds 5..9 records, so the
    # leaf partitioning is 5-anonymous by construction.
    anonymizer = RTreeAnonymizer(table, base_k=5, leaf_capacity=9)
    anonymizer.bulk_load(table)
    print(f"index: {anonymizer.leaf_count():,} leaves, "
          f"height {anonymizer.tree.height}")

    # Any granularity >= base k comes from a leaf scan — no rebuild.
    release = anonymizer.anonymize(k=10)
    print(f"10-anonymous release: {release.summary()}")

    # Verify the release the way an auditor would.
    problems = verify_release(release, table, k=10)
    print("audit:", "clean" if not problems else problems)

    # Score it with the paper's three quality metrics.
    print(f"discernibility penalty: {discernibility_penalty(release):,}")
    print(f"certainty penalty:      {certainty_penalty(release, table):,.1f}")
    print(f"KL divergence:          {kl_divergence(release, table):.3f}")

    # What a data recipient sees: generalized rows (Figure 1(b) style).
    print("\nfirst partition, as published:")
    first = release.partitions[0]
    names = table.schema.names()
    values = describe_partition(first, table.schema)
    for name, value in zip(names, values):
        print(f"  {name:12s} {value}")
    print(f"  ({len(first)} indistinguishable records share these values)")


if __name__ == "__main__":
    main()
