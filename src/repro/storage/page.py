"""Fixed-capacity pages of records.

A :class:`Page` is the disk-transfer unit of the simulated storage layer:
a bounded container of items (records, in the buffer-tree's case) with a
stable page id.  Capacity is expressed in items; the byte-level page size is
a property of the owning :class:`~repro.storage.pagefile.PageFile`, which
derives items-per-page from ``page_bytes // record_bytes`` — the ``B`` of
the paper's I/O model.
"""

from __future__ import annotations

from typing import Generic, Iterator, TypeVar

ItemT = TypeVar("ItemT")


class Page(Generic[ItemT]):
    """A bounded, identified container of items."""

    __slots__ = ("page_id", "capacity", "items")

    def __init__(self, page_id: int, capacity: int) -> None:
        if capacity <= 0:
            raise ValueError("page capacity must be positive")
        self.page_id = page_id
        self.capacity = capacity
        self.items: list[ItemT] = []

    @property
    def is_full(self) -> bool:
        return len(self.items) >= self.capacity

    @property
    def free_slots(self) -> int:
        return self.capacity - len(self.items)

    def append(self, item: ItemT) -> None:
        """Add one item; raises if the page is already full."""
        if self.is_full:
            raise OverflowError(f"page {self.page_id} is full ({self.capacity} items)")
        self.items.append(item)

    def extend_upto(self, items: list[ItemT]) -> list[ItemT]:
        """Absorb as many items as fit; return the leftovers."""
        space = self.free_slots
        self.items.extend(items[:space])
        return items[space:]

    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[ItemT]:
        return iter(self.items)

    def __repr__(self) -> str:
        return f"Page(id={self.page_id}, {len(self.items)}/{self.capacity})"
