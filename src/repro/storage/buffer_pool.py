"""An LRU buffer pool over the simulated page file.

The pool holds at most ``memory_bytes // page_bytes`` pages in memory.
Accessing a cached page is free; a miss charges one disk read (via the
:class:`~repro.storage.pagefile.PageFile` counters), and evicting a dirty
page charges one write.  This is the mechanism behind the paper's claim
that "I/O costs increase by less than a factor of two when the allotted
memory is reduced by a factor of two" (Figure 8(b)): halving
``memory_bytes`` halves the pool and increases misses sub-linearly because
the buffer-tree's access pattern is strongly skewed toward the upper tree
levels.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Generic, TypeVar

from repro.obs import OBS, TRACE
from repro.storage.page import Page
from repro.storage.pagefile import PageFile

ItemT = TypeVar("ItemT")


class BufferPool(Generic[ItemT]):
    """An LRU cache of pages with dirty-page write-back."""

    def __init__(self, pagefile: PageFile[ItemT], memory_bytes: int) -> None:
        capacity = memory_bytes // pagefile.page_bytes
        if capacity < 1:
            raise ValueError(
                f"memory budget of {memory_bytes} bytes holds no "
                f"{pagefile.page_bytes}-byte page"
            )
        self._pagefile = pagefile
        self._capacity = capacity
        self._cached: OrderedDict[int, Page[ItemT]] = OrderedDict()
        self._dirty: set[int] = set()
        self.hits = 0
        self.misses = 0

    @property
    def pagefile(self) -> PageFile[ItemT]:
        """The backing simulated disk (exposes the I/O counters)."""
        return self._pagefile

    @property
    def capacity_pages(self) -> int:
        """How many pages the memory budget holds."""
        return self._capacity

    @property
    def resident_pages(self) -> int:
        return len(self._cached)

    def new_page(self) -> Page[ItemT]:
        """Allocate a fresh page directly into the pool, marked dirty."""
        page = self._pagefile.allocate()
        self._admit(page, dirty=True)
        return page

    def get(self, page_id: int, for_write: bool = False) -> Page[ItemT]:
        """Fetch a page, charging a disk read only on a pool miss."""
        cached = self._cached.get(page_id)
        if cached is not None:
            self.hits += 1
            if OBS.enabled:
                OBS.count("pool.hits")
            self._cached.move_to_end(page_id)
            if for_write:
                self._dirty.add(page_id)
            return cached
        self.misses += 1
        if OBS.enabled:
            OBS.count("pool.misses")
        page = self._pagefile.read_page(page_id)
        self._admit(page, dirty=for_write)
        return page

    def mark_dirty(self, page_id: int) -> None:
        """Record that a cached page has been modified in place.

        Raises ``KeyError`` when the page is not resident: the caller
        mutated a page object the pool has since evicted, so silently
        ignoring the call would drop that modification on the floor (the
        evicted copy was written back *before* the change).  Callers must
        hold the page via :meth:`get` — pass ``for_write=True`` to mark it
        dirty atomically with the fetch, which every in-tree mutation site
        (:class:`~repro.index.leaf_store.PagedLeafStore`) does.
        """
        if page_id not in self._cached:
            raise KeyError(
                f"page {page_id} is not resident in the pool; re-fetch it "
                "with get(page_id, for_write=True) before modifying it"
            )
        self._dirty.add(page_id)

    def free(self, page_id: int) -> None:
        """Drop a page entirely (it will never be written back)."""
        self._cached.pop(page_id, None)
        self._dirty.discard(page_id)
        self._pagefile.free(page_id)

    def flush(self) -> None:
        """Write back every dirty cached page (end-of-load barrier)."""
        with TRACE.span("pool.flush", "storage", dirty=len(self._dirty)):
            for page_id in sorted(self._dirty):
                page = self._cached.get(page_id)
                if page is not None:
                    if OBS.enabled:
                        OBS.count("pool.writebacks")
                    self._pagefile.write_page(page)
            self._dirty.clear()

    def _admit(self, page: Page[ItemT], dirty: bool) -> None:
        while len(self._cached) >= self._capacity:
            victim_id, victim = self._cached.popitem(last=False)
            if OBS.enabled:
                OBS.count("pool.evictions")
            if TRACE.enabled:
                TRACE.instant("pool.eviction", "storage", page_id=victim_id)
            if victim_id in self._dirty:
                if OBS.enabled:
                    OBS.count("pool.writebacks")
                self._pagefile.write_page(victim)
                self._dirty.discard(victim_id)
        self._cached[page.page_id] = page
        if dirty:
            self._dirty.add(page.page_id)
