"""Simulated paged storage with explicit I/O accounting.

The paper's scaling experiments run against a real disk and report two
quantities: wall-clock time (Figure 8(a)) and *the total number of explicit
I/O system calls* (Figure 8(b)).  This subpackage reproduces the substrate:
a paged "disk" (:class:`~repro.storage.pagefile.PageFile`) fronted by an LRU
buffer pool (:class:`~repro.storage.buffer_pool.BufferPool`) of configurable
memory budget.  Every page fetch that misses the pool and every dirty-page
eviction increments a counter, so the I/O experiment measures exactly what
the paper measured — counts, which are hardware-independent.
"""

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page
from repro.storage.pagefile import IOStats, PageFile

__all__ = ["BufferPool", "IOStats", "Page", "PageFile"]
