"""The simulated disk: a page store with read/write counters.

A :class:`PageFile` owns every page the buffer-tree spills.  Reads and
writes go through :meth:`read_page` / :meth:`write_page`, each of which
bumps an :class:`IOStats` counter — these counters are the measured
quantity of the Figure 8(b) reproduction.  Pages live in a dict rather than
on a real disk; what matters for the experiment is *when* the algorithm
would touch disk, not the bytes themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generic, TypeVar

from repro.obs import OBS, TRACE
from repro.storage.page import Page

ItemT = TypeVar("ItemT")

#: Default simulated page size, matching a common 2007-era DB page.
DEFAULT_PAGE_BYTES = 8_192


@dataclass
class IOStats:
    """Counters of explicit page I/O operations.

    ``fsyncs`` counts durability barriers (WAL group commits, checkpoint
    publishes) — real I/O stalls, but not page transfers, so it is *not*
    part of ``total``, which remains the paper's page-I/O quantity.
    """

    reads: int = 0
    writes: int = 0
    fsyncs: int = 0

    @property
    def total(self) -> int:
        return self.reads + self.writes

    def snapshot(self) -> "IOStats":
        """A copy, for before/after deltas."""
        return IOStats(self.reads, self.writes, self.fsyncs)

    def delta(self, earlier: "IOStats") -> "IOStats":
        """I/Os performed since ``earlier`` was snapshotted."""
        return IOStats(
            self.reads - earlier.reads,
            self.writes - earlier.writes,
            self.fsyncs - earlier.fsyncs,
        )


@dataclass
class PageFile(Generic[ItemT]):
    """A simulated paged disk.

    ``page_bytes`` and ``record_bytes`` determine the per-page item capacity
    ``B = page_bytes // record_bytes`` of the paper's I/O model.
    """

    page_bytes: int = DEFAULT_PAGE_BYTES
    record_bytes: int = 36
    stats: IOStats = field(default_factory=IOStats)
    _pages: dict[int, Page[ItemT]] = field(default_factory=dict)
    _next_id: int = 0

    def __post_init__(self) -> None:
        if self.page_bytes < self.record_bytes:
            raise ValueError(
                f"page of {self.page_bytes} bytes cannot hold a "
                f"{self.record_bytes}-byte record"
            )

    @property
    def items_per_page(self) -> int:
        """``B``: how many records fit on one page."""
        return self.page_bytes // self.record_bytes

    @property
    def page_count(self) -> int:
        return len(self._pages)

    def allocate(self) -> Page[ItemT]:
        """Create a fresh empty page (no I/O is charged for allocation)."""
        if OBS.enabled:
            OBS.count("page.allocations")
        page: Page[ItemT] = Page(self._next_id, self.items_per_page)
        self._pages[page.page_id] = page
        self._next_id += 1
        return page

    def read_page(self, page_id: int) -> Page[ItemT]:
        """Fetch a page from "disk", charging one read."""
        self.stats.reads += 1
        if OBS.enabled:
            OBS.count("page.reads")
        if TRACE.enabled:
            TRACE.instant("page.read", "storage", page_id=page_id)
        return self._pages[page_id]

    def write_page(self, page: Page[ItemT]) -> None:
        """Persist a page to "disk", charging one write."""
        self.stats.writes += 1
        if OBS.enabled:
            OBS.count("page.writes")
        if TRACE.enabled:
            TRACE.instant("page.write", "storage", page_id=page.page_id)
        self._pages[page.page_id] = page

    def free(self, page_id: int) -> None:
        """Release a page (no I/O charged — deallocation is a metadata op)."""
        self._pages.pop(page_id, None)

    def reset_stats(self) -> None:
        self.stats = IOStats()
