"""repro — k-anonymization as spatial indexing.

A reproduction of Iwuchukwu & Naughton, *K-Anonymization as Spatial
Indexing: Toward Scalable and Incremental Anonymization* (VLDB 2007).

Quickstart::

    from repro import RTreeAnonymizer, make_landsend_table

    table = make_landsend_table(10_000, seed=1)
    anonymizer = RTreeAnonymizer(table, base_k=5)
    anonymizer.bulk_load(table)
    release = anonymizer.anonymize(k=10)
    print(release.summary())

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every reproduced table and figure.
"""

from repro import api
from repro.api import Anonymizer, ReleaseResult
from repro.cluster import ClusterConfig, ShardedCluster
from repro.serve import (
    AnonymizerService,
    ReleaseSnapshot,
    ServiceConfig,
    ServiceProtocol,
    TelemetryConfig,
)
from repro.baselines.grid import GridFileAnonymizer, gridfile_anonymize
from repro.baselines.mondrian import MondrianAnonymizer, mondrian_anonymize
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_partitions, compact_table
from repro.core.leafscan import leaf_scan
from repro.core.multigranular import (
    hierarchical_granularities,
    hierarchical_release,
    verify_k_bound,
)
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.agrawal import AgrawalGenerator, make_agrawal_table
from repro.dataset.census import CensusGenerator, make_census_table
from repro.dataset.export import read_release_csv, write_release_csv
from repro.dataset.landsend import LandsEndGenerator, make_landsend_table
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, RecoveryError
from repro.geometry.box import Box
from repro.hierarchy.tree import GeneralizationHierarchy
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.constrained import ConstrainedSplitPolicy
from repro.index.gridfile import GridFile
from repro.index.rtree import RPlusTree
from repro.index.split import (
    BiasedSplitPolicy,
    MidpointSplitPolicy,
    MinMarginSplitPolicy,
    WeightedSplitPolicy,
)
from repro.kernels import (
    RecordBatch,
    kernels_enabled,
    scoped_kernels,
    set_kernels_enabled,
)
from repro.metrics.certainty import certainty_penalty
from repro.metrics.discernibility import discernibility_penalty
from repro.metrics.kl import kl_divergence
from repro.metrics.quality import quality_report
from repro.privacy.attack import intersection_attack
from repro.privacy.linkage import linkage_attack
from repro.privacy.registry import ReleaseRegistry, ReleaseRejected
from repro.privacy.kanonymity import is_k_anonymous, verify_release
from repro.privacy.ldiversity import DistinctLDiversity
from repro.query.accuracy import average_error, evaluate_workload
from repro.query.workload import random_range_workload, single_attribute_workload

__version__ = "1.0.0"

__all__ = [
    "AgrawalGenerator",
    "AnonymizedTable",
    "Anonymizer",
    "AnonymizerService",
    "Attribute",
    "AttributeKind",
    "BiasedSplitPolicy",
    "Box",
    "BufferTreeLoader",
    "CensusGenerator",
    "ClusterConfig",
    "ConstrainedSplitPolicy",
    "DurabilityConfig",
    "GridFile",
    "GridFileAnonymizer",
    "DistinctLDiversity",
    "GeneralizationHierarchy",
    "LandsEndGenerator",
    "MidpointSplitPolicy",
    "MinMarginSplitPolicy",
    "MondrianAnonymizer",
    "Partition",
    "RPlusTree",
    "RTreeAnonymizer",
    "Record",
    "RecordBatch",
    "RecoveryError",
    "ReleaseRegistry",
    "ReleaseRejected",
    "ReleaseResult",
    "ReleaseSnapshot",
    "Schema",
    "ServiceConfig",
    "ServiceProtocol",
    "ShardedCluster",
    "Table",
    "TelemetryConfig",
    "WeightedSplitPolicy",
    "api",
    "average_error",
    "certainty_penalty",
    "compact_partitions",
    "compact_table",
    "discernibility_penalty",
    "evaluate_workload",
    "gridfile_anonymize",
    "hierarchical_granularities",
    "hierarchical_release",
    "intersection_attack",
    "is_k_anonymous",
    "kernels_enabled",
    "kl_divergence",
    "leaf_scan",
    "linkage_attack",
    "make_agrawal_table",
    "make_census_table",
    "make_landsend_table",
    "mondrian_anonymize",
    "quality_report",
    "random_range_workload",
    "read_release_csv",
    "scoped_kernels",
    "set_kernels_enabled",
    "single_attribute_workload",
    "verify_k_bound",
    "verify_release",
    "write_release_csv",
]
