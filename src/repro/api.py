"""The consolidated front door: ``repro.api``.

One small, keyword-only surface over the anonymization stack, so callers
(and the CLI, which goes through this module exclusively) never assemble
schemas, loaders, pools and durability managers by hand:

* :func:`open` — create an :class:`Anonymizer` handle from a
  :class:`~repro.dataset.schema.Schema`, a
  :class:`~repro.dataset.table.Table`, or a record-file path (the schema
  is synthesized by one streaming min/max pass — the file is *not*
  materialized).  Pass ``durability=DurabilityConfig(dir=...)`` for crash
  safety.
* :meth:`Anonymizer.load` — bulk ingestion from records or a file, with
  optional sharded parallelism (``workers=``).
* :meth:`Anonymizer.release` — a k-anonymous release as a typed
  :class:`ReleaseResult`: the table, its audit record, and its digest.
* :func:`recover` — rebuild a durable handle from its directory after a
  crash; the evidence trail is on :attr:`Anonymizer.recovery`.
* :func:`open` with ``serve=True`` (or :func:`serve` directly) — a
  thread-safe :class:`~repro.serve.AnonymizerService` handle that serves
  immutable release snapshots to concurrent readers while a single
  writer thread applies queued mutations (see docs/API.md "Serving").
* ``service.query(...)`` on either serving backend — §5.4 point-lookup,
  range-COUNT, group-by and distinct-count queries answered through the
  release's partition index (:class:`~repro.query.QueryEngine` pushdown;
  see docs/API.md "Querying releases").

The migration table from the older layered API lives in ``docs/API.md``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.anonymizer import DEFAULT_BASE_K, RTreeAnonymizer
from repro.core.leafscan import Constraint
from repro.core.partition import AnonymizedTable, release_digest
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.durability.manager import DurabilityConfig
from repro.durability.recovery import RecoveryResult
from repro.durability.recovery import recover as _recover_directory
from repro.index.split import SplitPolicy
from repro.cluster import ClusterConfig, ShardedCluster
from repro.obs import AUDITOR
from repro.obs.audit import audit_release
from repro.query.engine import (
    QueryEngine,
    QueryResult,
    group_by_queries,
    point_query,
)
from repro.query.ranges import RangeQuery
from repro.serve import (
    AnonymizerService,
    ReleaseSnapshot,
    ServiceConfig,
    ServiceProtocol,
    TelemetryConfig,
)
from repro.storage.buffer_pool import BufferPool

__all__ = [
    "Anonymizer",
    "AnonymizerService",
    "CheckpointResult",
    "ClusterConfig",
    "QueryEngine",
    "QueryResult",
    "RangeQuery",
    "ReleaseResult",
    "ReleaseSnapshot",
    "ServiceConfig",
    "ServiceProtocol",
    "ShardedCluster",
    "TelemetryConfig",
    "group_by_queries",
    "open",
    "point_query",
    "recover",
    "serve",
]


@dataclass(frozen=True)
class ReleaseResult:
    """One published release with its evidence attached.

    ``audit`` is the structured privacy-audit record (always computed —
    through the global :data:`~repro.obs.AUDITOR` when it is enabled, so
    strict-mode gating still applies, otherwise directly).  ``digest`` is
    the sha256 release fingerprint CI compares across runs and crashes.
    """

    table: AnonymizedTable
    audit: dict[str, object]
    digest: str
    k: int

    @property
    def record_count(self) -> int:
        return self.table.record_count

    @property
    def partition_count(self) -> int:
        return len(self.table.partitions)

    @property
    def k_satisfied(self) -> bool:
        return bool(self.audit["k_satisfied"])


@dataclass(frozen=True)
class CheckpointResult:
    """Where a checkpoint landed: its LSN and the directory holding it."""

    lsn: int
    directory: Path


class Anonymizer:
    """The facade handle around one :class:`RTreeAnonymizer`.

    Construct via :func:`open` or :func:`recover`, not directly.  The
    underlying engine stays reachable as :attr:`engine` for callers that
    need the full layered API (multi-granular releases, tree inspection).
    """

    def __init__(
        self,
        engine: RTreeAnonymizer,
        *,
        recovery: RecoveryResult | None = None,
    ) -> None:
        self._engine = engine
        #: The :class:`RecoveryResult` when this handle came from
        #: :func:`recover`, else ``None``.
        self.recovery = recovery

    # -- ingestion -----------------------------------------------------------

    def load(
        self,
        source: "Table | Iterable[Record] | str | Path",
        *,
        workers: int | None = None,
        batch_size: int = 8_192,
        first_rid: int = 0,
        use_kernels: bool | None = None,
    ) -> int:
        """Bulk-anonymize a table, record stream, or record file.

        Returns the number of records consumed.  ``workers`` selects the
        sharded parallel engine for file sources (deterministic for every
        worker count); it is rejected for in-memory sources, which have no
        shardable byte ranges.  ``use_kernels`` overrides the process-wide
        columnar-kernel default for this load (``None`` defers to it); the
        result is bit-identical either way — the flag only trades the
        scalar oracle path for the vectorized one.
        """
        if isinstance(source, (str, Path)):
            return self._engine.bulk_load_file(
                str(source),
                batch_size=batch_size,
                first_rid=first_rid,
                workers=workers,
                use_kernels=use_kernels,
            )
        if workers is not None:
            raise ValueError(
                "workers= applies only to file sources; in-memory records "
                "load through the serial buffer-tree path"
            )
        return self._engine.bulk_load(source)

    def insert(self, record: Record) -> None:
        """Insert one record incrementally."""
        self._engine.insert(record)

    def insert_batch(self, records: "Table | Iterable[Record]") -> int:
        """Insert a batch through the amortized buffered path."""
        return self._engine.insert_batch(records)

    def delete(self, rid: int, point: Sequence[float]) -> Record:
        """Delete one record; k-occupancy is restored before returning."""
        return self._engine.delete(rid, point)

    def update(
        self, rid: int, old_point: Sequence[float], record: Record
    ) -> Record:
        """Move one record's quasi-identifier point."""
        return self._engine.update(rid, old_point, record)

    # -- releases ------------------------------------------------------------

    def release(
        self,
        *,
        k: int,
        constraints: "Constraint | Sequence[Constraint] | None" = None,
        compact: bool = True,
        strategy: str = "subtree",
        use_kernels: bool | None = None,
    ) -> ReleaseResult:
        """Publish a k-anonymous release with its audit and digest.

        ``constraints`` accepts one per-partition predicate or a sequence
        (composed with logical AND).  When the global auditor is enabled
        the release's audit record comes from it — strict mode therefore
        still gates this publish site — otherwise an equivalent record is
        computed directly, so :attr:`ReleaseResult.audit` is never empty.
        """
        constraint = _compose_constraints(constraints)
        table = self._engine.anonymize(
            k,
            compacted=compact,
            constraint=constraint,
            strategy=strategy,
            use_kernels=use_kernels,
        )
        if AUDITOR.enabled and AUDITOR.latest is not None:
            audit = AUDITOR.latest
        else:
            audit = audit_release(table, k, base_k=self._engine.base_k)
        return ReleaseResult(
            table=table, audit=audit, digest=release_digest(table), k=k
        )

    # -- durability ----------------------------------------------------------

    def checkpoint(self) -> CheckpointResult:
        """Snapshot durable state and truncate the WAL; see
        :meth:`RTreeAnonymizer.checkpoint`."""
        lsn = self._engine.checkpoint()
        manager = self._engine.durability
        assert manager is not None  # checkpoint() raised otherwise
        return CheckpointResult(lsn=lsn, directory=manager.directory)

    def close(self) -> None:
        """Flush and release durable resources (safe to call when none)."""
        self._engine.close()

    def __enter__(self) -> "Anonymizer":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> RTreeAnonymizer:
        """The underlying layered engine, for advanced use."""
        return self._engine

    @property
    def schema(self) -> Schema:
        return self._engine.schema

    @property
    def base_k(self) -> int:
        return self._engine.base_k

    @property
    def durable(self) -> bool:
        return self._engine.durability is not None

    def __len__(self) -> int:
        return len(self._engine)


def open(
    source: "Schema | Table | str | Path",
    *,
    base_k: int = DEFAULT_BASE_K,
    durability: DurabilityConfig | None = None,
    pool: "BufferPool[Record] | None" = None,
    split_policy: SplitPolicy | None = None,
    leaf_capacity: int | None = None,
    serve: bool = False,
    service_config: ServiceConfig | None = None,
    shards: int = 1,
    cluster_config: ClusterConfig | None = None,
) -> "Anonymizer | AnonymizerService | ShardedCluster":
    """Create an anonymizer handle for a schema, table, or record file.

    A :class:`Schema` or :class:`Table` is used directly (a table's
    records are *not* loaded — call :meth:`Anonymizer.load`).  A path is
    scanned once, streaming, to synthesize a numeric schema from the data
    extent; pass the same path to :meth:`Anonymizer.load` to ingest it.

    ``serve=True`` returns a thread-safe
    :class:`~repro.serve.AnonymizerService` instead: concurrent readers
    get cached, epoch-validated release snapshots while mutations flow
    through a bounded, group-committed write queue.  ``service_config``
    tunes the queue bound, batch size and cache.

    ``shards`` > 1 (or an explicit ``cluster_config``) scales serving
    across processes: the handle is a
    :class:`~repro.cluster.ShardedCluster` — the same
    :class:`~repro.serve.ServiceProtocol` surface, backed by one worker
    process per contiguous Hilbert-key range.  The cluster owns its
    engines, so the single-engine knobs (``durability``, ``pool``,
    ``split_policy``, ``leaf_capacity``) are rejected — per-shard WALs
    root at ``ClusterConfig.durability_dir`` instead.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    if cluster_config is not None and shards not in (1, cluster_config.shards):
        raise ValueError(
            f"shards={shards} disagrees with cluster_config.shards="
            f"{cluster_config.shards}; pass one or make them match"
        )
    clustered = cluster_config is not None or shards > 1
    if isinstance(source, Schema):
        schema_table = Table(source, ())
    elif isinstance(source, Table):
        schema_table = source
    elif isinstance(source, (str, Path)):
        schema_table = Table(_schema_from_file(Path(source)), ())
    else:
        raise TypeError(
            f"cannot open {type(source).__name__}: expected a Schema, "
            "Table, or record-file path"
        )
    if clustered:
        if not serve:
            raise ValueError("shards/cluster_config require serve=True")
        for name, value in (
            ("durability", durability),
            ("pool", pool),
            ("split_policy", split_policy),
            ("leaf_capacity", leaf_capacity),
        ):
            if value is not None:
                raise ValueError(
                    f"{name}= does not apply to a sharded cluster; each "
                    "shard owns its engine (use ClusterConfig.durability_dir "
                    "for per-shard WALs)"
                )
        if cluster_config is None:
            cluster_config = ClusterConfig(
                shards=shards,
                service=service_config
                if service_config is not None
                else ServiceConfig(),
            )
        elif service_config is not None:
            raise ValueError(
                "pass service_config inside cluster_config.service when "
                "opening a cluster"
            )
        return ShardedCluster(schema_table, cluster_config, base_k=base_k)
    engine = RTreeAnonymizer(
        schema_table,
        base_k=base_k,
        split_policy=split_policy,
        pool=pool,
        leaf_capacity=leaf_capacity,
        durability=durability,
    )
    if serve:
        return AnonymizerService(engine, service_config)
    if service_config is not None:
        raise ValueError("service_config requires serve=True")
    return Anonymizer(engine)


def serve(
    source: "Schema | Table | str | Path",
    *,
    service_config: ServiceConfig | None = None,
    shards: int = 1,
    cluster_config: ClusterConfig | None = None,
    **kwargs: object,
) -> ServiceProtocol:
    """Shorthand for :func:`open` with ``serve=True``.

    Returns the protocol type: an
    :class:`~repro.serve.AnonymizerService` for ``shards=1``, a
    :class:`~repro.cluster.ShardedCluster` beyond — both satisfy
    :class:`~repro.serve.ServiceProtocol`.
    """
    handle = open(
        source,
        serve=True,
        service_config=service_config,
        shards=shards,
        cluster_config=cluster_config,
        **kwargs,  # type: ignore[arg-type]
    )
    assert isinstance(handle, (AnonymizerService, ShardedCluster))
    return handle


def recover(
    directory: str | Path,
    *,
    split_policy: SplitPolicy | None = None,
    pool: "BufferPool[Record] | None" = None,
    group_commit_window: float = 0.0,
    allow_torn_tail: bool = False,
) -> Anonymizer:
    """Rebuild a durable anonymizer from its directory after a crash.

    Raises :class:`~repro.durability.errors.RecoveryError` on any
    corruption.  The returned handle is live (its WAL is reattached) and
    carries the replay evidence on :attr:`Anonymizer.recovery`.
    """
    result = _recover_directory(
        directory,
        split_policy=split_policy,
        pool=pool,
        group_commit_window=group_commit_window,
        allow_torn_tail=allow_torn_tail,
    )
    return Anonymizer(result.anonymizer, recovery=result)


def _compose_constraints(
    constraints: "Constraint | Sequence[Constraint] | None",
) -> Constraint | None:
    if constraints is None:
        return None
    if callable(constraints):
        return constraints
    items = tuple(constraints)
    if not items:
        return None
    if len(items) == 1:
        return items[0]

    def conjunction(records: Sequence[Record]) -> bool:
        return all(constraint(records) for constraint in items)

    return conjunction


def _schema_from_file(path: Path) -> Schema:
    """One streaming pass over a record file to bound each attribute."""
    from repro.dataset.io import RecordFileReader

    reader = RecordFileReader(path)
    dimensions = reader.dimensions
    lows = [math.inf] * dimensions
    highs = [-math.inf] * dimensions
    for point in reader.iter_points():
        for dimension, value in enumerate(point):
            if value < lows[dimension]:
                lows[dimension] = value
            if value > highs[dimension]:
                highs[dimension] = value
    if not len(reader) or math.isinf(lows[0]):
        lows = [0.0] * dimensions
        highs = [1.0] * dimensions
    return Schema(
        tuple(
            Attribute.numeric(f"a{dimension}", lows[dimension], highs[dimension])
            for dimension in range(dimensions)
        )
    )
