"""Query workload generators (§5.4).

Both of the paper's workloads derive query bounds from *pairs of random
records* of the unanonymized table, which guarantees every query matches at
least two original records (no zero-denominator errors) and concentrates
queries where the data actually lives:

* :func:`random_range_workload` — bounds on **every** attribute: for each
  query pick records ``r1, r2`` and set ``a_i = min(r1.A_i, r2.A_i)``,
  ``b_i = max(...)`` per attribute (the 8-dimensional workload of
  Figures 12(a)/(b));
* :func:`single_attribute_workload` — bounds on **one** attribute (zipcode
  in the paper), all other attributes unconstrained (Figures 12(c)/(d)).
"""

from __future__ import annotations

import random

from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.query.ranges import RangeQuery


def random_range_workload(
    table: Table, count: int, seed: int = 0
) -> list[RangeQuery]:
    """``count`` all-attribute range queries from random record pairs."""
    if len(table) < 2:
        raise ValueError("need at least two records to derive query bounds")
    rng = random.Random(seed)
    records = table.records
    queries: list[RangeQuery] = []
    for _ in range(count):
        # Sample the pair without replacement: drawing the same record
        # twice yields a degenerate point query that can match a single
        # record, breaking the documented two-record guarantee.
        first, second = rng.sample(records, 2)
        lows = tuple(min(a, b) for a, b in zip(first.point, second.point))
        highs = tuple(max(a, b) for a, b in zip(first.point, second.point))
        queries.append(RangeQuery(Box(lows, highs)))
    return queries


def single_attribute_workload(
    table: Table, attribute: str, count: int, seed: int = 0
) -> list[RangeQuery]:
    """``count`` queries ranging over one attribute, unbounded elsewhere.

    "Unbounded" renders as the attribute's full declared domain, so the
    query box still has the schema's dimensionality and the same evaluation
    machinery applies.
    """
    if len(table) < 2:
        raise ValueError("need at least two records to derive query bounds")
    dimension = table.schema.index_of(attribute)
    domain_lows = table.schema.domain_lows()
    domain_highs = table.schema.domain_highs()
    rng = random.Random(seed)
    records = table.records
    queries: list[RangeQuery] = []
    for _ in range(count):
        pair = rng.sample(records, 2)
        first = pair[0].point[dimension]
        second = pair[1].point[dimension]
        lows = list(domain_lows)
        highs = list(domain_highs)
        lows[dimension] = min(first, second)
        highs[dimension] = max(first, second)
        queries.append(RangeQuery(Box(tuple(lows), tuple(highs))))
    return queries
