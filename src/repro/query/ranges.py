"""Range COUNT queries and the paper's match semantics.

§5.4 fixes the semantics precisely:

* on the **original** table, a record matches when its *point* lies inside
  the query region;
* on the **anonymized** table, a record matches when its generalized *box*
  has a non-null intersection with the query region on every attribute —
  the record "might" satisfy the query, so a COUNT must include it.

The alternative §2.3 estimator — assume each partition is uniform and
credit the query with ``|P| * vol(P ∩ Q) / vol(P)`` — is provided as
:func:`estimate_anonymized` and used by one ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table
from repro.geometry.box import Box


@dataclass(frozen=True)
class RangeQuery:
    """A closed multidimensional range predicate (a box)."""

    box: Box

    @property
    def dimensions(self) -> int:
        return self.box.dimensions

    def matches_point(self, point: tuple[float, ...]) -> bool:
        return self.box.contains_point(point)

    def matches_box(self, other: Box) -> bool:
        return self.box.intersects(other)


def count_original(query: RangeQuery, table: Table) -> int:
    """COUNT over the original table: points inside the query region."""
    return sum(1 for record in table if query.matches_point(record.point))


def count_original_bulk(queries: list[RangeQuery], table: Table) -> np.ndarray:
    """Vectorized original-table counts for a whole workload.

    Chunked numpy broadcasting: with 1000 queries on tens of thousands of
    records the pure-Python loop would dominate the query benches.
    """
    points = np.array(table.points(), dtype=np.float64)
    lows = np.array([q.box.lows for q in queries], dtype=np.float64)
    highs = np.array([q.box.highs for q in queries], dtype=np.float64)
    counts = np.zeros(len(queries), dtype=np.int64)
    chunk = max(1, 2_000_000 // max(1, points.shape[0]))
    for start in range(0, len(queries), chunk):
        ql = lows[start : start + chunk]
        qh = highs[start : start + chunk]
        inside = np.logical_and(
            (points[None, :, :] >= ql[:, None, :]).all(axis=2),
            (points[None, :, :] <= qh[:, None, :]).all(axis=2),
        )
        counts[start : start + chunk] = inside.sum(axis=1)
    return counts


def count_anonymized(query: RangeQuery, table: AnonymizedTable) -> int:
    """COUNT over an anonymized table: all records of intersecting partitions."""
    return sum(
        len(partition)
        for partition in table.partitions
        if query.matches_box(partition.box)
    )


def count_anonymized_bulk(
    queries: list[RangeQuery], table: AnonymizedTable
) -> np.ndarray:
    """Vectorized anonymized-table counts for a whole workload."""
    lows = np.array([p.box.lows for p in table.partitions], dtype=np.float64)
    highs = np.array([p.box.highs for p in table.partitions], dtype=np.float64)
    # Integer partition sizes must stay integer: routing the bool mask
    # through float64 loses exactness past 2**53 aggregate counts and the
    # bulk path would silently diverge from the scalar oracle.
    sizes = np.array([len(p) for p in table.partitions], dtype=np.int64)
    qlows = np.array([q.box.lows for q in queries], dtype=np.float64)
    qhighs = np.array([q.box.highs for q in queries], dtype=np.float64)
    counts = np.zeros(len(queries), dtype=np.int64)
    chunk = max(1, 2_000_000 // max(1, lows.shape[0]))
    for start in range(0, len(queries), chunk):
        ql = qlows[start : start + chunk]
        qh = qhighs[start : start + chunk]
        # Boxes intersect iff they overlap on every attribute.
        overlaps = np.logical_and(
            (lows[None, :, :] <= qh[:, None, :]).all(axis=2),
            (ql[:, None, :] <= highs[None, :, :]).all(axis=2),
        )
        counts[start : start + chunk] = (overlaps * sizes[None, :]).sum(axis=1)
    return counts


def estimate_anonymized(query: RangeQuery, table: AnonymizedTable) -> float:
    """The §2.3 uniform-density estimator.

    Each intersecting partition contributes its size scaled by the fraction
    of its (discrete) volume that overlaps the query; degenerate boxes that
    intersect contribute their full size (their whole mass is inside).
    """
    estimate = 0.0
    for partition in table.partitions:
        overlap = query.box.intersection(partition.box)
        if overlap is None:
            continue
        volume = partition.box.discrete_volume()
        share = overlap.discrete_volume() / volume if volume > 0 else 1.0
        estimate += len(partition) * share
    return estimate
