"""The serving-side query engine: §5.4 queries answered via index pushdown.

A :class:`QueryEngine` is built once per release (cheap — one bottom-up
packing pass over the partition MBRs) and then answers four query shapes
against it, all reduced to aggregate descents of the packed tree in
:mod:`repro.index.aggregate`:

* **range COUNT** — sum of partition sizes over partitions intersecting
  the query box (the §5.4 anonymized-table semantics);
* **point lookup** — a range COUNT over the degenerate box ``[p, p]``
  (``box.contains_point(p)`` iff ``box.intersects(Box(p, p))``), plus
  access to the matching partitions themselves;
* **distinct count** — the number of partitions (equivalence classes)
  intersecting the query box, via the "owned" weight column;
* **group-by aggregate** — per-bin range COUNTs along one attribute.

Every answer is bit-identical to the retained leaf-scan oracle
(:func:`repro.query.ranges.count_anonymized`): the descent partitions the
partition set exactly and sums the same integers (see the proof sketch in
``repro.index.aggregate``).  The oracle stays the differential reference
for the test suite, the same pattern the parallel and kernel fast paths
follow.

Engines built from a release table carry the table (so point lookups can
return partitions); shard workers instead build entry-only engines from
``(box, counts, owned)`` slices shipped by the cluster router.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable, Partition
from repro.geometry.box import Box
from repro.index.aggregate import (
    DEFAULT_FANOUT,
    WEIGHT_OWNED,
    WEIGHT_RECORDS,
    AggregateTree,
    PushdownStats,
)
from repro.obs import OBS
from repro.query.ranges import RangeQuery

#: Query kinds the serving layer accepts.
QUERY_KINDS = ("count", "distinct")

_KIND_WEIGHTS = {"count": WEIGHT_RECORDS, "distinct": WEIGHT_OWNED}

_KIND_COUNTERS = {"count": "query.count_queries", "distinct": "query.distinct_queries"}


@dataclass(frozen=True)
class QueryResult:
    """A batch answer stamped with the release it was computed against.

    ``epoch`` and ``digest`` identify the exact snapshot: two results with
    equal digests were answered against bit-identical releases, which is
    how readers (and the stress suite) check epoch consistency under a
    live writer.
    """

    kind: str
    values: tuple[int, ...]
    k: int
    epoch: int
    digest: str

    def __len__(self) -> int:
        return len(self.values)


def point_query(point: Sequence[float]) -> RangeQuery:
    """The degenerate range query matching exactly the partitions whose
    box contains ``point``."""
    coords = tuple(float(value) for value in point)
    return RangeQuery(Box(coords, coords))


def group_by_queries(
    base: Box, dimension: int, edges: Sequence[float]
) -> list[RangeQuery]:
    """Per-bin range queries along one attribute of ``base``.

    Bin ``i`` spans the closed interval ``[edges[i], edges[i+1]]`` on
    ``dimension`` and all of ``base`` elsewhere.  Boxes are closed (§5.4),
    so partitions sitting exactly on a shared edge count toward both
    neighbouring bins — the semantics callers already get from
    ``count_anonymized`` on the same boxes.
    """
    if len(edges) < 2:
        raise ValueError("need at least two edges to form a bin")
    ordered = [float(edge) for edge in edges]
    if any(b < a for a, b in zip(ordered, ordered[1:])):
        raise ValueError("edges must be non-decreasing")
    if not 0 <= dimension < base.dimensions:
        raise ValueError(f"dimension {dimension} out of range for {base.dimensions}")
    queries = []
    for low, high in zip(ordered, ordered[1:]):
        lows = list(base.lows)
        highs = list(base.highs)
        lows[dimension] = low
        highs[dimension] = high
        queries.append(RangeQuery(Box(tuple(lows), tuple(highs))))
    return queries


class QueryEngine:
    """Index-pushdown query evaluation over one immutable release."""

    def __init__(
        self, table: AnonymizedTable, *, fanout: int = DEFAULT_FANOUT
    ) -> None:
        boxes = [partition.box for partition in table.partitions]
        weights = [(len(partition), 1) for partition in table.partitions]
        self._table: AnonymizedTable | None = table
        self._tree = AggregateTree(boxes, weights, fanout=fanout)
        self.stats = PushdownStats()
        if OBS.enabled:
            OBS.count("query.engine_builds")

    @classmethod
    def from_entries(
        cls,
        boxes: Sequence[Box],
        counts: Sequence[int],
        owned: Sequence[int] | None = None,
        *,
        fanout: int = DEFAULT_FANOUT,
    ) -> "QueryEngine":
        """Build an engine from bare ``(box, count, owned)`` entries.

        This is the shard-worker constructor: the router ships each shard
        its slice of every partition (the shared global box, the count of
        records the shard holds, and an owned flag set on exactly one
        shard), and per-shard answers merge by elementwise sum into the
        single-engine answer.  No table is attached, so
        :meth:`point_partitions` is unavailable.
        """
        engine = cls.__new__(cls)
        if owned is None:
            owned = [1] * len(counts)
        if not (len(boxes) == len(counts) == len(owned)):
            raise ValueError("boxes, counts and owned must have equal lengths")
        engine._table = None
        engine._tree = AggregateTree(
            boxes, list(zip(counts, owned)), fanout=fanout
        )
        engine.stats = PushdownStats()
        if OBS.enabled:
            OBS.count("query.engine_builds")
        return engine

    # -- properties ----------------------------------------------------------

    @property
    def partition_count(self) -> int:
        return len(self._tree)

    @property
    def bounds(self) -> Box | None:
        return self._tree.bounds

    @property
    def table(self) -> AnonymizedTable | None:
        return self._table

    # -- evaluation ----------------------------------------------------------

    def count(self, query: RangeQuery) -> int:
        """Range COUNT: total records of partitions intersecting the query."""
        return self._aggregate(query, "count")

    def distinct_count(self, query: RangeQuery) -> int:
        """Number of distinct equivalence classes intersecting the query."""
        return self._aggregate(query, "distinct")

    def evaluate(self, queries: Sequence[RangeQuery], kind: str = "count") -> list[int]:
        """Answer a whole workload; ``kind`` is ``"count"`` or ``"distinct"``."""
        if kind not in _KIND_WEIGHTS:
            raise ValueError(f"unknown query kind {kind!r}; expected {QUERY_KINDS}")
        return [self._aggregate(query, kind) for query in queries]

    def point_lookup(self, point: Sequence[float]) -> int:
        """Records that *might* match ``point``: the sizes of every
        partition whose box contains it (§5.4 point semantics)."""
        query = point_query(point)
        if OBS.enabled:
            OBS.count("query.point_lookups")
        return self._aggregate(query, "count", counted=False)

    def point_partitions(self, point: Sequence[float]) -> tuple[Partition, ...]:
        """The equivalence classes whose box contains ``point``.

        Only table-backed engines can materialize partitions; entry-only
        shard engines raise.
        """
        if self._table is None:
            raise ValueError("engine was built from bare entries; no table attached")
        query = point_query(point)
        stats = PushdownStats()
        indices = list(self._tree.matching(query.box, stats))
        self._record(stats)
        if OBS.enabled:
            OBS.count("query.point_lookups")
        partitions = self._table.partitions
        return tuple(partitions[index] for index in indices)

    def group_by_count(
        self,
        dimension: int,
        edges: Sequence[float],
        base: Box | None = None,
    ) -> list[tuple[float, float, int]]:
        """Per-bin range COUNTs along ``dimension``.

        ``base`` defaults to the engine's own bounds (the release MBR).
        Returns ``(bin low, bin high, count)`` rows; an empty release
        yields all-zero counts over the caller-supplied base.
        """
        if base is None:
            base = self.bounds
            if base is None:
                raise ValueError("empty release has no bounds; pass base explicitly")
        queries = group_by_queries(base, dimension, edges)
        if OBS.enabled:
            OBS.count("query.groupby_queries")
        return [
            (query.box.lows[dimension], query.box.highs[dimension], self.count(query))
            for query in queries
        ]

    # -- internals -----------------------------------------------------------

    def _aggregate(self, query: RangeQuery, kind: str, counted: bool = True) -> int:
        stats = PushdownStats()
        value = self._tree.aggregate(query.box, _KIND_WEIGHTS[kind], stats)
        self._record(stats)
        if counted and OBS.enabled:
            OBS.count(_KIND_COUNTERS[kind])
        return value

    def _record(self, stats: PushdownStats) -> None:
        self.stats.merge(stats)
        if OBS.enabled:
            OBS.count("query.nodes_visited", stats.nodes_visited)
            OBS.count("query.nodes_pruned", stats.nodes_pruned)
            OBS.count("query.subtrees_aggregated", stats.subtrees_aggregated)
            OBS.count("query.leaves_scanned", stats.leaves_scanned)
            OBS.count("query.partitions_scanned", stats.entries_scanned)
