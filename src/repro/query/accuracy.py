"""Workload evaluation: Error(Q), averages, and selectivity buckets.

§5.4 defines the per-query error as

    Error(Q) = (count(anonymized) - count(original)) / count(original)

and reports the average over a 1000-query workload (Figure 12(a)(c)) and
per selectivity band (Figure 12(b)(d)).  Selectivity here is a fraction:
a query's original-side matches divided by the table size, in ``(0, 1]``.
The observation is that errors shrink as that fraction grows (wider
queries), washing out differences between anonymization algorithms at
high selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table
from repro.query.ranges import (
    RangeQuery,
    count_anonymized_bulk,
    count_original_bulk,
)


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result on both tables."""

    query: RangeQuery
    original_count: int
    anonymized_count: int
    table_size: int = 0

    @property
    def error(self) -> float:
        """The §5.4 normalized error (original count is nonzero by workload
        construction — queries derive from record pairs)."""
        return (self.anonymized_count - self.original_count) / self.original_count

    @property
    def selectivity(self) -> float:
        """Original matches as a fraction of the table size, in ``(0, 1]``.

        Requires ``table_size`` (threaded through by
        :func:`evaluate_workload`); outcomes constructed without it cannot
        express a fraction and raise.
        """
        if self.table_size <= 0:
            raise ValueError(
                "selectivity needs a positive table_size; construct the "
                "outcome via evaluate_workload or pass table_size explicitly"
            )
        return self.original_count / self.table_size


def evaluate_workload(
    queries: Sequence[RangeQuery],
    anonymized: AnonymizedTable,
    original: Table,
    original_counts: Sequence[int] | None = None,
) -> list[QueryOutcome]:
    """Run every query against both tables (vectorized).

    ``original_counts`` may be passed in when the same workload is being
    evaluated against several anonymizations of one table, to avoid
    recomputing the original-side counts each time.
    """
    query_list = list(queries)
    if original_counts is None:
        original_counts = count_original_bulk(query_list, original).tolist()
    anonymized_counts = count_anonymized_bulk(query_list, anonymized).tolist()
    table_size = len(original)
    return [
        QueryOutcome(query, int(orig), int(anon), table_size)
        for query, orig, anon in zip(query_list, original_counts, anonymized_counts)
    ]


def average_error(outcomes: Sequence[QueryOutcome]) -> float:
    """The workload's average normalized error (the Figure 12 y-axis)."""
    if not outcomes:
        raise ValueError("no query outcomes to average")
    return sum(outcome.error for outcome in outcomes) / len(outcomes)


def bucket_by_selectivity(
    outcomes: Sequence[QueryOutcome],
    table_size: int,
    edges: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.25, 1.0),
) -> list[tuple[str, int, float]]:
    """Average error per selectivity band (Figure 12(b)/(d)).

    Selectivity of a query is its original-count divided by the table size
    (exactly :attr:`QueryOutcome.selectivity` when the outcome carries its
    own ``table_size``; the explicit argument covers outcomes built by
    hand without one).  Returns ``(band label, query count, average
    error)`` rows; empty bands are reported with a NaN error so tables
    keep a fixed shape.
    """
    if table_size <= 0:
        raise ValueError("table_size must be positive")

    def fraction(outcome: QueryOutcome) -> float:
        if outcome.table_size > 0:
            return outcome.selectivity
        return outcome.original_count / table_size

    rows: list[tuple[str, int, float]] = []
    previous = 0.0
    for edge in edges:
        band = [
            outcome for outcome in outcomes if previous < fraction(outcome) <= edge
        ]
        label = f"({previous:g}, {edge:g}]"
        if band:
            rows.append((label, len(band), average_error(band)))
        else:
            rows.append((label, 0, float("nan")))
        previous = edge
    return rows
