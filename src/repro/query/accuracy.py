"""Workload evaluation: Error(Q), averages, and selectivity buckets.

§5.4 defines the per-query error as

    Error(Q) = (count(anonymized) - count(original)) / count(original)

and reports the average over a 1000-query workload (Figure 12(a)(c)) and
per selectivity band (Figure 12(b)(d)) — the observation being that errors
shrink as queries grow more selective of the data, washing out differences
between anonymization algorithms at high selectivity.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table
from repro.query.ranges import (
    RangeQuery,
    count_anonymized_bulk,
    count_original_bulk,
)


@dataclass(frozen=True)
class QueryOutcome:
    """One query's result on both tables."""

    query: RangeQuery
    original_count: int
    anonymized_count: int

    @property
    def error(self) -> float:
        """The §5.4 normalized error (original count is nonzero by workload
        construction — queries derive from record pairs)."""
        return (self.anonymized_count - self.original_count) / self.original_count

    @property
    def selectivity(self) -> float:
        """Original matches as a fraction of... the caller's record total.

        Stored as the raw count here; use :func:`bucket_by_selectivity`
        with the table size for fractions.
        """
        return float(self.original_count)


def evaluate_workload(
    queries: Sequence[RangeQuery],
    anonymized: AnonymizedTable,
    original: Table,
    original_counts: Sequence[int] | None = None,
) -> list[QueryOutcome]:
    """Run every query against both tables (vectorized).

    ``original_counts`` may be passed in when the same workload is being
    evaluated against several anonymizations of one table, to avoid
    recomputing the original-side counts each time.
    """
    query_list = list(queries)
    if original_counts is None:
        original_counts = count_original_bulk(query_list, original).tolist()
    anonymized_counts = count_anonymized_bulk(query_list, anonymized).tolist()
    return [
        QueryOutcome(query, int(orig), int(anon))
        for query, orig, anon in zip(query_list, original_counts, anonymized_counts)
    ]


def average_error(outcomes: Sequence[QueryOutcome]) -> float:
    """The workload's average normalized error (the Figure 12 y-axis)."""
    if not outcomes:
        raise ValueError("no query outcomes to average")
    return sum(outcome.error for outcome in outcomes) / len(outcomes)


def bucket_by_selectivity(
    outcomes: Sequence[QueryOutcome],
    table_size: int,
    edges: Sequence[float] = (0.001, 0.01, 0.05, 0.1, 0.25, 1.0),
) -> list[tuple[str, int, float]]:
    """Average error per selectivity band (Figure 12(b)/(d)).

    Selectivity of a query is its original-count divided by the table size.
    Returns ``(band label, query count, average error)`` rows; empty bands
    are reported with a NaN error so tables keep a fixed shape.
    """
    if table_size <= 0:
        raise ValueError("table_size must be positive")
    rows: list[tuple[str, int, float]] = []
    previous = 0.0
    for edge in edges:
        band = [
            outcome
            for outcome in outcomes
            if previous < outcome.original_count / table_size <= edge
        ]
        label = f"({previous:g}, {edge:g}]"
        if band:
            rows.append((label, len(band), average_error(band)))
        else:
            rows.append((label, 0, float("nan")))
        previous = edge
    return rows
