"""Range COUNT queries over original and anonymized tables (§2.3, §5.4).

The paper's utility yardstick: run the same multidimensional COUNT range
query against the original points and against the anonymized boxes, and
report the normalized error.  This package provides the query type, the
two workload generators the paper uses (all-attribute random ranges and
single-attribute zipcode ranges), and the evaluation/bucketing machinery
behind Figures 12(a)-(d).

:mod:`repro.query.engine` adds the serving-side path: a
:class:`QueryEngine` answers the same queries through the partition
index (MBR pruning with cached subtree totals) instead of scanning every
partition, bit-identically to the scalar oracle retained here.
"""

from repro.query.accuracy import (
    QueryOutcome,
    average_error,
    bucket_by_selectivity,
    evaluate_workload,
)
from repro.query.engine import (
    QUERY_KINDS,
    QueryEngine,
    QueryResult,
    group_by_queries,
    point_query,
)
from repro.query.ranges import RangeQuery, count_anonymized, count_original
from repro.query.workload import (
    random_range_workload,
    single_attribute_workload,
)

__all__ = [
    "QUERY_KINDS",
    "QueryEngine",
    "QueryOutcome",
    "QueryResult",
    "RangeQuery",
    "average_error",
    "bucket_by_selectivity",
    "count_anonymized",
    "count_original",
    "evaluate_workload",
    "group_by_queries",
    "point_query",
    "random_range_workload",
    "single_attribute_workload",
]
