"""Range COUNT queries over original and anonymized tables (§2.3, §5.4).

The paper's utility yardstick: run the same multidimensional COUNT range
query against the original points and against the anonymized boxes, and
report the normalized error.  This package provides the query type, the
two workload generators the paper uses (all-attribute random ranges and
single-attribute zipcode ranges), and the evaluation/bucketing machinery
behind Figures 12(a)-(d).
"""

from repro.query.accuracy import (
    QueryOutcome,
    average_error,
    bucket_by_selectivity,
    evaluate_workload,
)
from repro.query.ranges import RangeQuery, count_anonymized, count_original
from repro.query.workload import (
    random_range_workload,
    single_attribute_workload,
)

__all__ = [
    "QueryOutcome",
    "RangeQuery",
    "average_error",
    "bucket_by_selectivity",
    "count_anonymized",
    "count_original",
    "evaluate_workload",
    "random_range_workload",
    "single_attribute_workload",
]
