"""A grid-file-based anonymizer: the §4 "index without MBRs" baseline.

The compaction section argues its procedure "can be retrofitted to
previously proposed non-index-based approaches" and to indexes, "such as
the grid file, that do not maintain MBRs for their records".  This
anonymizer demonstrates exactly that: it partitions via a
:class:`~repro.index.gridfile.GridFile`, merges under-full buckets in
directory order to restore the k floor, and publishes *region* boxes —
cross products of grid intervals, with all the slack that implies.
Applying :func:`repro.core.compaction.compact_table` to its output then
shows the retrofit paying off on a second index family (see
``benchmarks/bench_ablation_gridfile.py``).

High-dimensional caution: the grid directory multiplies with every new
scale boundary, so this anonymizer is practical only over a handful of
quasi-identifier attributes — itself a faithful reproduction of why
R-tree-family structures won this niche.
"""

from __future__ import annotations

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.index.gridfile import DEFAULT_MAX_DIRECTORY_CELLS, GridFile


class GridFileAnonymizer:
    """k-anonymization through a grid file's bucket partitioning."""

    def __init__(
        self,
        table: Table,
        capacity_factor: int = 2,
        max_directory_cells: int = DEFAULT_MAX_DIRECTORY_CELLS,
    ) -> None:
        if len(table) == 0:
            raise ValueError("cannot anonymize an empty table")
        if capacity_factor < 2:
            raise ValueError("capacity_factor must be at least 2")
        self._table = table
        self._capacity_factor = capacity_factor
        self._max_directory_cells = max_directory_cells

    def anonymize(self, k: int) -> AnonymizedTable:
        """The k-anonymous release; boxes are grid regions (uncompacted)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        if len(self._table) < k:
            raise ValueError(
                f"cannot emit a {k}-anonymous release from {len(self._table)} records"
            )
        schema = self._table.schema
        grid = GridFile(
            schema.domain_lows(),
            schema.domain_highs(),
            bucket_capacity=self._capacity_factor * k,
            max_directory_cells=self._max_directory_cells,
        )
        grid.insert_all(self._table.records)
        # Merge under-full buckets with their successors in directory
        # order — the grid-file analogue of the leaf scan: whole buckets,
        # sequential order, so groups stay region-describable unions.
        partitions: list[Partition] = []
        pending_records: list = []
        pending_box: Box | None = None
        for bucket in grid.buckets():
            if not bucket.records and pending_box is None:
                continue
            region = grid.bucket_region(bucket)
            pending_records.extend(bucket.records)
            pending_box = region if pending_box is None else pending_box.union(region)
            if len(pending_records) >= k:
                partitions.append(
                    Partition.trusted(tuple(pending_records), pending_box)
                )
                pending_records = []
                pending_box = None
        if pending_records:
            if partitions:
                last = partitions.pop()
                merged_box = (
                    last.box if pending_box is None else last.box.union(pending_box)
                )
                partitions.append(
                    Partition.trusted(
                        last.records + tuple(pending_records), merged_box
                    )
                )
            else:
                assert pending_box is not None
                partitions.append(
                    Partition.trusted(tuple(pending_records), pending_box)
                )
        return AnonymizedTable(schema, partitions)


def gridfile_anonymize(table: Table, k: int, **kwargs: object) -> AnonymizedTable:
    """Convenience: one-shot grid-file anonymization (uncompacted)."""
    return GridFileAnonymizer(table, **kwargs).anonymize(k)  # type: ignore[arg-type]
