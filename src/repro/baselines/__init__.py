"""Baseline anonymization algorithms the paper compares against.

* :mod:`repro.baselines.mondrian` — the top-down multidimensional
  partitioner the paper benchmarks against throughout §5;
* :mod:`repro.baselines.grid` — a grid-file-based anonymizer, the §4
  example of an index "that does not maintain MBRs", used to demonstrate
  the compaction retrofit on a second index family.
"""

from repro.baselines.grid import GridFileAnonymizer, gridfile_anonymize
from repro.baselines.mondrian import MondrianAnonymizer, mondrian_anonymize

__all__ = [
    "GridFileAnonymizer",
    "MondrianAnonymizer",
    "gridfile_anonymize",
    "mondrian_anonymize",
]
