"""The Mondrian top-down multidimensional partitioner (LeFevre et al., ICDE 2006).

The paper's comparison baseline: a greedy, top-down recursion that starts
from the whole domain and repeatedly bisects the partition with the widest
(normalized) quasi-identifier range at the median, stopping when no cut can
leave at least ``k`` records on both sides ("strict" multidimensional
Mondrian).  The paper characterizes it as the top-down counterpart of the
bottom-up index build, an order of magnitude slower in their experiments
and weaker on quality because it publishes *region* boxes — the recursive
halves — rather than minimum bounding boxes (compaction closes most of that
quality gap; Figures 10(b), 10(c)).

The published box of each partition is its region (the result of the
recursive cuts), exactly as the original algorithm generalizes; apply
:func:`repro.core.compaction.compact_table` for the compacted variant.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.index.split import best_threshold


class MondrianAnonymizer:
    """Strict multidimensional Mondrian over integer-coded tables."""

    def __init__(self, table: Table) -> None:
        if len(table) == 0:
            raise ValueError("cannot anonymize an empty table")
        self._table = table
        self._schema = table.schema
        self._domain_extents = [
            attribute.domain_extent for attribute in self._schema.quasi_identifiers
        ]

    def anonymize(self, k: int) -> AnonymizedTable:
        """The k-anonymous release (uncompacted: partitions publish regions)."""
        if k < 1:
            raise ValueError("k must be at least 1")
        if len(self._table) < k:
            raise ValueError(
                f"cannot emit a {k}-anonymous release from {len(self._table)} records"
            )
        domain = self._table.domain_box()
        partitions: list[Partition] = []
        stack: list[tuple[list[Record], Box]] = [(list(self._table.records), domain)]
        while stack:
            records, region = stack.pop()
            cut = self._choose_cut(records, k)
            if cut is None:
                partitions.append(Partition.trusted(tuple(records), region))
                continue
            dimension, value = cut
            left_records: list[Record] = []
            right_records: list[Record] = []
            for record in records:
                if record.point[dimension] <= value:
                    left_records.append(record)
                else:
                    right_records.append(record)
            left_highs = list(region.highs)
            left_highs[dimension] = min(value, region.highs[dimension])
            right_lows = list(region.lows)
            right_lows[dimension] = max(value, region.lows[dimension])
            stack.append((left_records, Box(region.lows, tuple(left_highs))))
            stack.append((right_records, Box(tuple(right_lows), region.highs)))
        return AnonymizedTable(self._schema, partitions)

    def _choose_cut(
        self, records: Sequence[Record], k: int
    ) -> tuple[int, float] | None:
        """The Mondrian heuristic: cut the widest normalized range at the median.

        Dimensions are tried in decreasing width order; a dimension is
        "allowable" when a median-ish boundary leaves ``k`` records on both
        sides.  Returns ``None`` when no dimension is allowable — the
        partition becomes a leaf.
        """
        if len(records) < 2 * k:
            return None
        widths: list[tuple[float, int]] = []
        for dimension, domain_extent in enumerate(self._domain_extents):
            values = [record.point[dimension] for record in records]
            extent = max(values) - min(values)
            normalized = extent / domain_extent if domain_extent > 0 else 0.0
            widths.append((normalized, dimension))
        widths.sort(reverse=True)
        for normalized, dimension in widths:
            if normalized <= 0:
                break
            found = best_threshold(
                [record.point[dimension] for record in records], k
            )
            if found is not None:
                return dimension, found[0]
        return None


def mondrian_anonymize(table: Table, k: int) -> AnonymizedTable:
    """Convenience: one-shot strict Mondrian anonymization (uncompacted)."""
    return MondrianAnonymizer(table).anonymize(k)
