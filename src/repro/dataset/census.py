"""A census-microdata generator with true generalization hierarchies.

The k-anonymity literature's canonical workload is census microdata (the
UCI *Adult* extract of the 1994 U.S. census: Sweeney's original linkage
attack used voter rolls against exactly such data).  That extract is not
bundled here, so this module generates a synthetic table with the same
shape: nine quasi-identifier attributes with realistic marginals, several
of them categorical with multi-level generalization hierarchies
(``Private -> private-sector -> employed -> *``), and an income bracket as
the sensitive attribute.

Unlike the Lands End/Agrawal generators (which follow the paper's §5 setup
of recoding everything to plain integers), this generator keeps the
hierarchies attached to the schema, so the hierarchy-aware branches of the
machinery — LCA compaction, the categorical certainty penalty,
:func:`repro.core.compaction.describe_partition` rendering — run end to
end on it.  Codes are assigned by each hierarchy's left-to-right leaf
ordering, which is what makes interval generalizations of the codes
meaningful (§5's "intuitive ordering", here derived rather than imposed).
"""

from __future__ import annotations

import numpy as np

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.hierarchy.tree import GeneralizationHierarchy

#: Attribute order of the generated table.
CENSUS_ATTRIBUTES = (
    "age",
    "workclass",
    "education",
    "marital_status",
    "occupation",
    "race",
    "sex",
    "hours_per_week",
    "region",
)

#: Sensitive attribute: income bracket.
INCOME_BRACKETS = ("<=50K", ">50K")


def workclass_hierarchy() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "*",
        {
            "employed": {
                "private-sector": ["Private"],
                "self-employed": ["Self-emp-not-inc", "Self-emp-inc"],
                "government": ["Federal-gov", "State-gov", "Local-gov"],
            },
            "not-employed": ["Without-pay", "Never-worked"],
        },
    )


def education_hierarchy() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "*",
        {
            "no-degree": {
                "primary": ["Preschool", "1st-4th", "5th-6th", "7th-8th"],
                "secondary": ["9th", "10th", "11th", "12th"],
            },
            "degree": {
                "school-grad": ["HS-grad", "Some-college"],
                "associate": ["Assoc-voc", "Assoc-acdm"],
                "higher": ["Bachelors", "Masters", "Prof-school", "Doctorate"],
            },
        },
    )


def marital_hierarchy() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "*",
        {
            "married": ["Married-civ-spouse", "Married-AF-spouse"],
            "was-married": ["Divorced", "Separated", "Widowed"],
            "never-married": ["Never-married", "Married-spouse-absent"],
        },
    )


def occupation_hierarchy() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "*",
        {
            "white-collar": {
                "professional": ["Prof-specialty", "Exec-managerial"],
                "office": ["Adm-clerical", "Sales", "Tech-support"],
            },
            "blue-collar": {
                "craft": ["Craft-repair", "Machine-op-inspct"],
                "labor": ["Handlers-cleaners", "Farming-fishing", "Transport-moving"],
            },
            "service": ["Other-service", "Protective-serv", "Priv-house-serv"],
        },
    )


def region_hierarchy() -> GeneralizationHierarchy:
    return GeneralizationHierarchy.from_spec(
        "World",
        {
            "Americas": {
                "North-America": ["United-States", "Canada"],
                "Latin-America": ["Mexico", "Cuba", "Jamaica", "Columbia"],
            },
            "Europe": ["Germany", "England", "Italy", "Poland"],
            "Asia": ["Philippines", "India", "China", "Vietnam"],
        },
    )


def census_schema() -> Schema:
    """The nine-attribute census schema, hierarchies attached."""
    return Schema(
        (
            Attribute.numeric("age", 17, 90),
            Attribute.categorical("workclass", hierarchy=workclass_hierarchy()),
            Attribute.categorical("education", hierarchy=education_hierarchy()),
            Attribute.categorical("marital_status", hierarchy=marital_hierarchy()),
            Attribute.categorical("occupation", hierarchy=occupation_hierarchy()),
            Attribute.categorical(
                "race",
                ["White", "Black", "Asian-Pac-Islander", "Amer-Indian-Eskimo", "Other"],
            ),
            Attribute.categorical("sex", ["Female", "Male"]),
            Attribute.numeric("hours_per_week", 1, 99),
            Attribute.categorical("region", hierarchy=region_hierarchy()),
        ),
        sensitive=("income",),
    )


class CensusGenerator:
    """Reproducible generator of Adult-census-like records.

    Marginals approximate the UCI extract: working-age-skewed ages, a
    dominant private workclass, HS-grad/some-college education mass, a
    40-hour mode with tails, a mostly-US population, and an income bracket
    correlated with age, education and hours (so sensitive-attribute
    experiments like l-diversity have real structure to find).
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed
        self._schema = census_schema()
        # Per-categorical value codes from the hierarchies' leaf orderings.
        self._codes: dict[str, dict[object, int]] = {}
        for attribute in self._schema.quasi_identifiers:
            if attribute.hierarchy is not None:
                self._codes[attribute.name] = attribute.hierarchy.ordering()

    @property
    def schema(self) -> Schema:
        return self._schema

    def code(self, attribute: str, value: object) -> int:
        """The integer code of a ground categorical value."""
        return self._codes[attribute][value]

    def _choice_codes(
        self,
        rng: np.random.Generator,
        attribute: str,
        values: list[str],
        probabilities: list[float],
        count: int,
    ) -> np.ndarray:
        codes = np.array([self.code(attribute, v) for v in values])
        weights = np.array(probabilities) / sum(probabilities)
        return rng.choice(codes, count, p=weights)

    def generate(self, count: int, seed_offset: int = 0, first_rid: int = 0) -> Table:
        """Generate ``count`` records with income as the sensitive value."""
        rng = np.random.default_rng((self._seed, seed_offset))
        age = np.clip(rng.gamma(6.0, 4.0, count) + 17, 17, 90).astype(np.int64)
        workclass = self._choice_codes(
            rng,
            "workclass",
            ["Private", "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
             "State-gov", "Local-gov", "Without-pay", "Never-worked"],
            [0.70, 0.08, 0.03, 0.03, 0.04, 0.06, 0.03, 0.03],
            count,
        )
        education = self._choice_codes(
            rng,
            "education",
            ["Preschool", "1st-4th", "5th-6th", "7th-8th", "9th", "10th",
             "11th", "12th", "HS-grad", "Some-college", "Assoc-voc",
             "Assoc-acdm", "Bachelors", "Masters", "Prof-school", "Doctorate"],
            [0.01, 0.01, 0.01, 0.02, 0.02, 0.03, 0.04, 0.02, 0.32, 0.22,
             0.04, 0.03, 0.16, 0.05, 0.01, 0.01],
            count,
        )
        marital = self._choice_codes(
            rng,
            "marital_status",
            ["Married-civ-spouse", "Married-AF-spouse", "Divorced", "Separated",
             "Widowed", "Never-married", "Married-spouse-absent"],
            [0.46, 0.01, 0.14, 0.03, 0.03, 0.32, 0.01],
            count,
        )
        occupation = self._choice_codes(
            rng,
            "occupation",
            ["Prof-specialty", "Exec-managerial", "Adm-clerical", "Sales",
             "Tech-support", "Craft-repair", "Machine-op-inspct",
             "Handlers-cleaners", "Farming-fishing", "Transport-moving",
             "Other-service", "Protective-serv", "Priv-house-serv"],
            [0.13, 0.13, 0.12, 0.11, 0.03, 0.13, 0.06, 0.04, 0.03, 0.05,
             0.10, 0.02, 0.05],
            count,
        )
        race = rng.choice(5, count, p=[0.85, 0.10, 0.03, 0.01, 0.01])
        sex = rng.choice(2, count, p=[0.33, 0.67])
        hours = np.clip(
            np.round(rng.normal(40, 12, count)), 1, 99
        ).astype(np.int64)
        region = self._choice_codes(
            rng,
            "region",
            ["United-States", "Canada", "Mexico", "Cuba", "Jamaica", "Columbia",
             "Germany", "England", "Italy", "Poland", "Philippines", "India",
             "China", "Vietnam"],
            [0.89, 0.005, 0.02, 0.005, 0.005, 0.005, 0.01, 0.005, 0.005,
             0.005, 0.01, 0.01, 0.01, 0.02],
            count,
        )
        # Income depends on age, education tier and hours — a logistic-ish
        # score thresholded with noise, approximating the Adult base rate
        # of ~24% earning >50K.
        higher_education = education >= self.code("education", "Bachelors")
        score = (
            0.035 * (age - 38)
            + 1.6 * higher_education
            + 0.03 * (hours - 40)
            + rng.normal(0, 1.0, count)
        )
        income = np.where(score > 1.4, INCOME_BRACKETS[1], INCOME_BRACKETS[0])

        columns = np.column_stack(
            [age, workclass, education, marital, occupation, race, sex, hours, region]
        )
        table = Table(self._schema)
        for offset, row in enumerate(columns):
            table.append(
                Record(
                    first_rid + offset,
                    tuple(float(v) for v in row),
                    (str(income[offset]),),
                )
            )
        return table


def make_census_table(count: int, seed: int = 0) -> Table:
    """Convenience: a fresh census-like table of ``count`` records."""
    return CensusGenerator(seed).generate(count)
