"""Datasets: schemas, tables, record I/O and the two paper workload generators.

The paper evaluates on (a) the proprietary Lands End sales table (4,591,581
records, eight attributes, 32-byte records) and (b) a synthetic table from
the Agrawal et al. generator (100 million records, nine attributes, 36-byte
records).  Neither is distributable, so this package provides faithful
synthetic substitutes — see DESIGN.md for the substitution rationale — plus
the schema/table/record plumbing everything else builds on.
"""

from repro.dataset.agrawal import AgrawalGenerator, make_agrawal_table
from repro.dataset.io import RecordFileReader, RecordFileWriter, read_table, write_table
from repro.dataset.landsend import LandsEndGenerator, make_landsend_table
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import Table

__all__ = [
    "AgrawalGenerator",
    "Attribute",
    "AttributeKind",
    "LandsEndGenerator",
    "Record",
    "RecordFileReader",
    "RecordFileWriter",
    "Schema",
    "Table",
    "make_agrawal_table",
    "make_landsend_table",
    "read_table",
    "write_table",
]
