"""Fixed-width binary record files.

The paper's out-of-core experiments stream 32-byte (Lands End) and 36-byte
(synthetic) records from disk.  This module provides the matching storage
format: each record is ``dimensions`` little-endian ``int32`` quasi-identifier
values (sensitive payloads are not persisted — they play no role in the
index-construction experiments), preceded by a small self-describing header.

Readers iterate in configurable batches so the buffer-tree loader can consume
a file much larger than the memory budget while the storage layer meters its
own page traffic separately.
"""

from __future__ import annotations

import io
import struct
from pathlib import Path
from typing import BinaryIO, Iterable, Iterator, Sequence

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table

_MAGIC = b"RPR1"
_HEADER = struct.Struct("<4sII")  # magic, dimensions, record count


class RecordFileWriter:
    """Stream integer-coded records into a fixed-width binary file."""

    def __init__(self, path: str | Path, dimensions: int) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self._path = Path(path)
        self._dimensions = dimensions
        self._count = 0
        self._record_struct = struct.Struct(f"<{dimensions}i")
        self._handle: BinaryIO = open(self._path, "wb")
        self._handle.write(_HEADER.pack(_MAGIC, dimensions, 0))

    @property
    def record_bytes(self) -> int:
        """Bytes per record — 32 for 8 attributes, 36 for 9, as in the paper."""
        return self._record_struct.size

    def write_point(self, point: Sequence[float]) -> None:
        """Append one record's quasi-identifier point."""
        self._handle.write(
            self._record_struct.pack(*(int(round(value)) for value in point))
        )
        self._count += 1

    def write_all(self, points: Iterable[Sequence[float]]) -> int:
        """Append many records; returns how many were written."""
        written = 0
        for point in points:
            self.write_point(point)
            written += 1
        return written

    def write_batch(self, points) -> int:  # noqa: ANN001 - ndarray or rows
        """Append an ``(N, dims)`` page in one buffer write.

        The vectorized twin of a :meth:`write_point` loop — byte-identical
        output (``np.rint`` rounds half-to-even exactly like ``round``),
        one ``tobytes`` per page instead of one ``struct.pack`` per record.
        Returns how many records were written.
        """
        import numpy as np

        from repro.kernels.codec import encode_points

        rows = np.ascontiguousarray(points, dtype=np.float64)
        if rows.ndim != 2 or rows.shape[1] != self._dimensions:
            raise ValueError(
                f"batch of shape {rows.shape} does not match the file's "
                f"{self._dimensions}-dimensional records"
            )
        encoded = encode_points(rows)
        if encoded:
            self._handle.write(encoded)
        self._count += rows.shape[0]
        return rows.shape[0]

    def close(self) -> None:
        """Backpatch the record count and close the file."""
        if self._handle.closed:
            return
        self._handle.seek(0)
        self._handle.write(_HEADER.pack(_MAGIC, self._dimensions, self._count))
        self._handle.close()

    def __enter__(self) -> "RecordFileWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class RecordFileReader:
    """Iterate records out of a fixed-width binary file in batches."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        with open(self._path, "rb") as handle:
            header = handle.read(_HEADER.size)
        if len(header) != _HEADER.size:
            raise ValueError(f"{self._path}: truncated header")
        magic, dimensions, count = _HEADER.unpack(header)
        if magic != _MAGIC:
            raise ValueError(f"{self._path}: not a repro record file")
        self._dimensions = dimensions
        self._count = count
        self._record_struct = struct.Struct(f"<{dimensions}i")
        # The header's record count is a claim, not a fact: a crashed writer
        # (count backpatched only on close) or an externally truncated file
        # can disagree with the bytes actually present.  Validate up front so
        # slice readers never silently short-read past physical EOF.
        file_bytes = self._path.stat().st_size
        available = (file_bytes - _HEADER.size) // self._record_struct.size
        if available < count:
            raise ValueError(
                f"{self._path}: header claims {count} records but the file's "
                f"{file_bytes} bytes hold only {available} whole records "
                f"(truncated at byte offset "
                f"{_HEADER.size + available * self._record_struct.size})"
            )

    @property
    def dimensions(self) -> int:
        return self._dimensions

    def __len__(self) -> int:
        return self._count

    @property
    def record_bytes(self) -> int:
        return self._record_struct.size

    def iter_points(
        self,
        batch_size: int = 8192,
        start: int = 0,
        count: int | None = None,
    ) -> Iterator[tuple[float, ...]]:
        """Yield quasi-identifier points one at a time, reading in batches.

        ``start``/``count`` select a contiguous slice of the file's records
        (record indices, not bytes) — the sharded bulk-anonymization workers
        use these offsets to stream disjoint slices of one file without any
        coordination beyond the slice bounds.
        """
        if start < 0 or start > self._count:
            raise ValueError(
                f"start {start} outside the file's {self._count} records"
            )
        remaining = self._count - start if count is None else count
        if remaining < 0 or start + remaining > self._count:
            raise ValueError(
                f"slice [{start}, {start + remaining}) outside the file's "
                f"{self._count} records"
            )
        record_bytes = self._record_struct.size
        position = start
        with open(self._path, "rb") as handle:
            handle.seek(_HEADER.size + start * record_bytes)
            reader = io.BufferedReader(handle, buffer_size=batch_size * record_bytes)
            while remaining > 0:
                want = min(remaining, batch_size)
                chunk = reader.read(want * record_bytes)
                whole = len(chunk) // record_bytes
                if len(chunk) % record_bytes or whole < want:
                    # The file shrank underneath us (or the init-time check
                    # was bypassed by concurrent truncation): fail with the
                    # exact offset rather than yielding a silently short or
                    # garbled stream.
                    raise ValueError(
                        f"{self._path}: short read at byte offset "
                        f"{_HEADER.size + (position + whole) * record_bytes} "
                        f"(record {position + whole}): wanted {want} records, "
                        f"file ended after {whole}"
                    )
                for values in self._record_struct.iter_unpack(chunk):
                    yield tuple(float(v) for v in values)
                remaining -= want
                position += want

    def iter_point_batches(
        self,
        batch_size: int = 8192,
        start: int = 0,
        count: int | None = None,
    ) -> "Iterator[tuple[int, object]]":
        """Yield ``(position, (n, dims) float64 array)`` pages.

        The columnar twin of :meth:`iter_points`: each page is decoded with
        one ``frombuffer`` instead of per-record ``struct`` calls, and the
        decoded rows equal the scalar tuples exactly (int32 → float64 is
        exact).  ``position`` is the file-record index of the page's first
        row, so callers can assign the same file-position rids either way.
        Short reads fail with the scalar path's exact message.
        """
        from repro.kernels.codec import decode_points

        if start < 0 or start > self._count:
            raise ValueError(
                f"start {start} outside the file's {self._count} records"
            )
        remaining = self._count - start if count is None else count
        if remaining < 0 or start + remaining > self._count:
            raise ValueError(
                f"slice [{start}, {start + remaining}) outside the file's "
                f"{self._count} records"
            )
        record_bytes = self._record_struct.size
        position = start
        with open(self._path, "rb") as handle:
            handle.seek(_HEADER.size + start * record_bytes)
            reader = io.BufferedReader(handle, buffer_size=batch_size * record_bytes)
            while remaining > 0:
                want = min(remaining, batch_size)
                chunk = reader.read(want * record_bytes)
                whole = len(chunk) // record_bytes
                if len(chunk) % record_bytes or whole < want:
                    raise ValueError(
                        f"{self._path}: short read at byte offset "
                        f"{_HEADER.size + (position + whole) * record_bytes} "
                        f"(record {position + whole}): wanted {want} records, "
                        f"file ended after {whole}"
                    )
                yield position, decode_points(chunk, self._dimensions)
                remaining -= want
                position += want

    def iter_records(
        self,
        batch_size: int = 8192,
        first_rid: int = 0,
        start: int = 0,
        count: int | None = None,
    ) -> Iterator[Record]:
        """Yield :class:`Record` objects with sequential rids.

        Rids are assigned by *file position* (``first_rid + index``), so a
        record carries the same rid whether the file is read whole or in
        slices — what makes slice-parallel loads reproduce serial output.
        """
        for offset, point in enumerate(
            self.iter_points(batch_size, start=start, count=count)
        ):
            yield Record(first_rid + start + offset, point)


def write_table(table: Table, path: str | Path) -> int:
    """Persist a table's quasi-identifier points; returns record count."""
    with RecordFileWriter(path, table.schema.dimensions) as writer:
        return writer.write_all(record.point for record in table)


def read_table(path: str | Path, schema: Schema | None = None) -> Table:
    """Load a record file fully into memory.

    Without a schema, a generic one is synthesized from the data extent.
    """
    reader = RecordFileReader(path)
    records = list(reader.iter_records())
    if schema is None:
        if records:
            lows = [min(r.point[d] for r in records) for d in range(reader.dimensions)]
            highs = [max(r.point[d] for r in records) for d in range(reader.dimensions)]
        else:
            lows = [0.0] * reader.dimensions
            highs = [1.0] * reader.dimensions
        schema = Schema(
            tuple(
                Attribute.numeric(f"a{d}", lows[d], highs[d])
                for d in range(reader.dimensions)
            )
        )
    return Table(schema, records)
