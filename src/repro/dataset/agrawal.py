"""The Agrawal et al. synthetic data generator.

The paper's scaling experiments (§5.2) use "the generator introduced in
[1]" — R. Agrawal, S. Ghosh, T. Imielinski and A. Swami, *Database mining:
a performance perspective* (TKDE 1993) — to produce 100 million nine-
attribute records (*salary, commission, age, education level, car, zipcode,
house value, house years, loan*), 36 bytes each.

This module reimplements that generator from the published description,
including its characteristic functional dependencies:

* ``commission`` is zero when ``salary >= 75,000``, otherwise uniform in
  ``[10,000, 75,000]``;
* ``hvalue`` (house value) depends on ``zipcode``: houses in zipcode ``z``
  are worth ``uniform(0.5, 1.5) * 100,000 * k_z`` where ``k_z`` depends on
  the zipcode (we use ``k_z = z + 1`` for the nine zipcodes ``0..8``, as in
  the original);
* everything else is independent uniform.

These dependencies matter for reproduction fidelity: they give the data the
low-dimensional structure (salary/commission anticorrelation, zip/hvalue
correlation) that spatial partitioning exploits.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table

#: Attribute order matches the paper's listing.
AGRAWAL_ATTRIBUTES = (
    "salary",
    "commission",
    "age",
    "elevel",
    "car",
    "zipcode",
    "hvalue",
    "hyears",
    "loan",
)

_SALARY_LOW, _SALARY_HIGH = 20_000, 150_000
_COMMISSION_LOW, _COMMISSION_HIGH = 10_000, 75_000
_COMMISSION_CUTOFF = 75_000
_AGE_LOW, _AGE_HIGH = 20, 80
_ELEVELS = 5
_CARS = 20
_ZIPCODES = 9
_HVALUE_HIGH = int(1.5 * 100_000 * _ZIPCODES)
_HYEARS_LOW, _HYEARS_HIGH = 1, 30
_LOAN_HIGH = 500_000


def agrawal_schema() -> Schema:
    """The nine-attribute Agrawal schema, integer-coded."""
    return Schema(
        (
            Attribute.numeric("salary", _SALARY_LOW, _SALARY_HIGH),
            Attribute.numeric("commission", 0, _COMMISSION_HIGH),
            Attribute.numeric("age", _AGE_LOW, _AGE_HIGH),
            Attribute.numeric("elevel", 0, _ELEVELS - 1),
            Attribute.numeric("car", 1, _CARS),
            Attribute.numeric("zipcode", 0, _ZIPCODES - 1),
            Attribute.numeric("hvalue", 0, _HVALUE_HIGH),
            Attribute.numeric("hyears", _HYEARS_LOW, _HYEARS_HIGH),
            Attribute.numeric("loan", 0, _LOAN_HIGH),
        )
    )


class AgrawalGenerator:
    """Reproducible generator of Agrawal et al. records."""

    def __init__(self, seed: int = 0) -> None:
        self._seed = seed

    @property
    def schema(self) -> Schema:
        return agrawal_schema()

    def generate_points(self, count: int, stream_offset: int = 0) -> np.ndarray:
        """Generate ``count`` records as a ``(count, 9)`` int64 array."""
        rng = np.random.default_rng((self._seed, stream_offset))
        salary = rng.integers(_SALARY_LOW, _SALARY_HIGH + 1, count)
        commission = np.where(
            salary >= _COMMISSION_CUTOFF,
            0,
            rng.integers(_COMMISSION_LOW, _COMMISSION_HIGH + 1, count),
        )
        age = rng.integers(_AGE_LOW, _AGE_HIGH + 1, count)
        elevel = rng.integers(0, _ELEVELS, count)
        car = rng.integers(1, _CARS + 1, count)
        zipcode = rng.integers(0, _ZIPCODES, count)
        hvalue = (
            rng.uniform(0.5, 1.5, count) * 100_000 * (zipcode + 1)
        ).astype(np.int64)
        hyears = rng.integers(_HYEARS_LOW, _HYEARS_HIGH + 1, count)
        loan = rng.integers(0, _LOAN_HIGH + 1, count)
        return np.column_stack(
            [salary, commission, age, elevel, car, zipcode, hvalue, hyears, loan]
        )

    def generate(self, count: int, stream_offset: int = 0, first_rid: int = 0) -> Table:
        """Generate ``count`` records as a :class:`Table`."""
        points = self.generate_points(count, stream_offset)
        table = Table(self.schema)
        for offset, row in enumerate(points):
            table.append(Record(first_rid + offset, tuple(float(v) for v in row)))
        return table

    def write_file(self, path: str, count: int, batch_size: int = 65_536) -> int:
        """Stream ``count`` records straight to a record file.

        Memory use stays bounded by ``batch_size`` regardless of ``count`` —
        this is how arbitrarily large inputs are staged for the out-of-core
        experiments without materializing them.
        """
        from repro.dataset.io import RecordFileWriter

        with RecordFileWriter(path, len(AGRAWAL_ATTRIBUTES)) as writer:
            written = 0
            offset = 0
            while written < count:
                size = min(batch_size, count - written)
                for row in self.generate_points(size, stream_offset=offset):
                    writer.write_point(row)
                written += size
                offset += 1
            return written


def make_agrawal_table(count: int, seed: int = 0) -> Table:
    """Convenience: a fresh Agrawal table of ``count`` records."""
    return AgrawalGenerator(seed).generate(count)
