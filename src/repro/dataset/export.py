"""Publishing anonymized tables: CSV export with hierarchy-aware rendering.

A release only matters once it leaves the process.  This module writes an
:class:`~repro.core.partition.AnonymizedTable` in the format of the paper's
Figure 1(b): one row per record, quasi-identifier columns carrying
generalized values (numeric intervals like ``[20 - 30]``, or hierarchy
labels like ``Midwest`` when the schema attaches a hierarchy), sensitive
columns passed through verbatim, plus a partition id so recipients can
reconstruct equivalence classes.

The loader reads such a file back into interval form for auditing —
round-tripping the *published* information, which by design is less than
the original (hierarchy labels decode to their code intervals; exact
member points are gone, as they should be).
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Iterator

from repro.core.compaction import describe_partition
from repro.core.partition import AnonymizedTable
from repro.dataset.schema import AttributeKind, Schema
from repro.geometry.box import Box

#: Column name for the equivalence-class identifier.
PARTITION_COLUMN = "partition"


def release_rows(table: AnonymizedTable) -> Iterator[list[str]]:
    """Yield the published rows (header first) as lists of strings."""
    schema = table.schema
    yield [PARTITION_COLUMN, *schema.names(), *schema.sensitive]
    for index, partition in enumerate(table.partitions):
        generalized = describe_partition(partition, schema)
        for record in partition.records:
            yield [
                str(index),
                *generalized,
                *(str(value) for value in record.sensitive),
            ]


def write_release_csv(table: AnonymizedTable, path: str | Path) -> int:
    """Write the release to CSV; returns the number of data rows written."""
    count = -1  # discount the header
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        for row in release_rows(table):
            writer.writerow(row)
            count += 1
    return count


class PublishedRelease:
    """A release read back from CSV: intervals, partition sizes, sensitive values.

    The reader recovers what a *data recipient* can see — enough to run
    COUNT queries, recompute partition sizes, or audit the k floor, but
    (by construction) not the original points.
    """

    def __init__(
        self,
        schema: Schema,
        boxes: list[Box],
        sizes: list[int],
        sensitive_rows: list[tuple[str, ...]],
    ) -> None:
        self.schema = schema
        self.boxes = boxes
        self.sizes = sizes
        self.sensitive_rows = sensitive_rows

    @property
    def record_count(self) -> int:
        return sum(self.sizes)

    @property
    def k_effective(self) -> int:
        return min(self.sizes)

    def count_query(self, box: Box) -> int:
        """The §5.4 COUNT semantics on the published boxes."""
        return sum(
            size
            for published, size in zip(self.boxes, self.sizes)
            if published.intersects(box)
        )


def read_release_csv(path: str | Path, schema: Schema) -> PublishedRelease:
    """Parse a published CSV back into per-partition boxes and sizes."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        expected = [PARTITION_COLUMN, *schema.names(), *schema.sensitive]
        if header != expected:
            raise ValueError(
                f"{path}: header {header} does not match schema {expected}"
            )
        partition_boxes: dict[int, Box] = {}
        sizes: dict[int, int] = {}
        sensitive_rows: list[tuple[str, ...]] = []
        qi_count = schema.dimensions
        for row in reader:
            partition_id = int(row[0])
            if partition_id not in partition_boxes:
                partition_boxes[partition_id] = _parse_box(
                    row[1 : 1 + qi_count], schema
                )
            sizes[partition_id] = sizes.get(partition_id, 0) + 1
            sensitive_rows.append(tuple(row[1 + qi_count :]))
    ordered = sorted(partition_boxes)
    return PublishedRelease(
        schema,
        [partition_boxes[i] for i in ordered],
        [sizes[i] for i in ordered],
        sensitive_rows,
    )


def _parse_box(cells: list[str], schema: Schema) -> Box:
    lows: list[float] = []
    highs: list[float] = []
    for cell, attribute in zip(cells, schema.quasi_identifiers):
        if (
            attribute.kind is AttributeKind.CATEGORICAL
            and attribute.hierarchy is not None
        ):
            # A hierarchy label decodes to the code interval of its leaves.
            node = attribute.hierarchy.node(cell)
            ordering = attribute.hierarchy.ordering()
            codes = [ordering[leaf.label] for leaf in node.iter_leaves()]
            lows.append(float(min(codes)))
            highs.append(float(max(codes)))
        elif cell.startswith("["):
            low_text, high_text = cell.strip("[]").split(" - ")
            lows.append(float(low_text))
            highs.append(float(high_text))
        else:
            value = float(cell)
            lows.append(value)
            highs.append(value)
    return Box(tuple(lows), tuple(highs))
