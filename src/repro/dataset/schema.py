"""Attribute and schema definitions.

Following §5 of the paper, every quasi-identifier attribute is carried as an
integer-coded value: numeric attributes natively, categorical attributes via
"an intuitive ordering on the values" (see
:meth:`repro.hierarchy.GeneralizationHierarchy.ordering`).  The schema keeps
enough metadata to recover categorical semantics — the hierarchy, when one
exists — for compaction and for the certainty-penalty metric's categorical
branch.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Hashable, Sequence

from repro.hierarchy.tree import GeneralizationHierarchy


class AttributeKind(enum.Enum):
    """How an attribute's values behave under generalization."""

    NUMERIC = "numeric"
    CATEGORICAL = "categorical"


@dataclass(frozen=True)
class Attribute:
    """One quasi-identifier attribute.

    ``domain_low``/``domain_high`` bound the attribute's possible values and
    are used for normalization in quality metrics and for top-level regions
    in the spatial index.  For categorical attributes the domain covers the
    integer codes, and ``hierarchy`` (optional) lets compaction publish a
    named generalization instead of a code interval.
    """

    name: str
    kind: AttributeKind = AttributeKind.NUMERIC
    domain_low: float = 0.0
    domain_high: float = 1.0
    hierarchy: GeneralizationHierarchy | None = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.domain_low > self.domain_high:
            raise ValueError(
                f"attribute {self.name!r}: domain low {self.domain_low} exceeds "
                f"high {self.domain_high}"
            )

    @property
    def domain_extent(self) -> float:
        """Width of the attribute's declared domain."""
        return self.domain_high - self.domain_low

    @classmethod
    def numeric(cls, name: str, low: float, high: float) -> "Attribute":
        """A numeric attribute with the given domain."""
        return cls(name, AttributeKind.NUMERIC, float(low), float(high))

    @classmethod
    def categorical(
        cls,
        name: str,
        values: Sequence[Hashable] | None = None,
        hierarchy: GeneralizationHierarchy | None = None,
    ) -> "Attribute":
        """A categorical attribute.

        Provide either the flat value list (coded ``0..len-1`` in order) or a
        hierarchy (coded by its left-to-right leaf ordering).
        """
        if hierarchy is not None:
            count = len(hierarchy)
        elif values is not None:
            count = len(values)
            hierarchy = GeneralizationHierarchy.flat(list(values))
        else:
            raise ValueError(f"categorical attribute {name!r} needs values or a hierarchy")
        return cls(name, AttributeKind.CATEGORICAL, 0.0, float(count - 1), hierarchy)


@dataclass(frozen=True)
class Schema:
    """The quasi-identifier attributes plus named sensitive attributes.

    The quasi-identifier ordering defines the dimensions of the spatial
    domain: attribute ``i`` is dimension ``i`` of every point, box and query.
    """

    quasi_identifiers: tuple[Attribute, ...]
    sensitive: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        if not self.quasi_identifiers:
            raise ValueError("schema needs at least one quasi-identifier attribute")
        names = [attribute.name for attribute in self.quasi_identifiers]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate quasi-identifier names in {names}")
        if len(set(self.sensitive)) != len(self.sensitive):
            raise ValueError(f"duplicate sensitive names in {self.sensitive}")

    @property
    def dimensions(self) -> int:
        """Number of quasi-identifier attributes (spatial dimensions)."""
        return len(self.quasi_identifiers)

    def attribute(self, name: str) -> Attribute:
        """Look up a quasi-identifier attribute by name."""
        for candidate in self.quasi_identifiers:
            if candidate.name == name:
                return candidate
        raise KeyError(name)

    def index_of(self, name: str) -> int:
        """Dimension index of a quasi-identifier attribute."""
        for position, candidate in enumerate(self.quasi_identifiers):
            if candidate.name == name:
                return position
        raise KeyError(name)

    def names(self) -> tuple[str, ...]:
        """Quasi-identifier attribute names in dimension order."""
        return tuple(attribute.name for attribute in self.quasi_identifiers)

    def domain_lows(self) -> tuple[float, ...]:
        return tuple(attribute.domain_low for attribute in self.quasi_identifiers)

    def domain_highs(self) -> tuple[float, ...]:
        return tuple(attribute.domain_high for attribute in self.quasi_identifiers)
