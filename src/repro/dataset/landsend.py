"""Synthetic stand-in for the Lands End sales data set.

The paper's first workload is a proprietary catalogue-sales table with
4,591,581 records over eight attributes — *zipcode, order date, gender,
style, price, quantity, cost, shipment* — with every categorical recoded to
an integer by an intuitive ordering, giving 32-byte (8 x int32) records.

That data cannot be redistributed, so this generator produces a table with
the same schema and the joint-distribution features the experiments are
sensitive to:

* **zipcode** is spatially clustered: customers concentrate around a few
  dozen metropolitan centers, so zipcode carries most of the "spatial"
  structure the biased-split experiment (Figure 12(c)) exploits;
* **style** follows a Zipf-like popularity curve over the catalogue;
* **price** is log-normal-ish and correlated with style (each style has a
  base price);
* **cost** is derived from price x quantity with margin noise, so price and
  cost are strongly correlated — correlated attribute pairs are what make
  multidimensional partitioning beat single-attribute recoding;
* **gender**, **shipment** are low-cardinality categoricals with skewed
  marginals;
* **order date** spans ten years with mild seasonality.

Every attribute is emitted as a non-negative integer, matching the paper's
numerical recoding.
"""

from __future__ import annotations

import numpy as np

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import Table

#: Attribute order matches the paper's listing.
LANDSEND_ATTRIBUTES = (
    "zipcode",
    "order_date",
    "gender",
    "style",
    "price",
    "quantity",
    "cost",
    "shipment",
)

_ZIP_LOW, _ZIP_HIGH = 501, 99_950
_DATE_DAYS = 3_650  # ten years of order dates
_GENDERS = 3  # female / male / unspecified
_STYLES = 1_000
_PRICE_HIGH = 500
_QUANTITY_HIGH = 12
_COST_HIGH = 6_000
_SHIPMENTS = 5


def landsend_schema() -> Schema:
    """The eight-attribute Lands End schema, integer-coded."""
    return Schema(
        (
            Attribute.numeric("zipcode", _ZIP_LOW, _ZIP_HIGH),
            Attribute.numeric("order_date", 0, _DATE_DAYS),
            Attribute(
                "gender", AttributeKind.CATEGORICAL, 0, _GENDERS - 1, hierarchy=None
            ),
            Attribute.numeric("style", 0, _STYLES - 1),
            Attribute.numeric("price", 1, _PRICE_HIGH),
            Attribute.numeric("quantity", 1, _QUANTITY_HIGH),
            Attribute.numeric("cost", 1, _COST_HIGH),
            Attribute(
                "shipment", AttributeKind.CATEGORICAL, 0, _SHIPMENTS - 1, hierarchy=None
            ),
        )
    )


class LandsEndGenerator:
    """Reproducible generator of Lands End-like sales records.

    Parameters
    ----------
    seed:
        RNG seed; identical seeds produce identical record streams.
    clusters:
        Number of metropolitan zipcode clusters.
    """

    def __init__(self, seed: int = 0, clusters: int = 40) -> None:
        self._seed = seed
        rng = np.random.default_rng(seed)
        # Fixed per-generator "geography": cluster centers, weights, spreads.
        self._centers = rng.integers(_ZIP_LOW + 2_000, _ZIP_HIGH - 2_000, clusters)
        weights = rng.pareto(1.5, clusters) + 0.1
        self._weights = weights / weights.sum()
        self._spreads = rng.integers(50, 900, clusters)
        # Each catalogue style has a base price; popular styles are cheaper.
        ranks = np.arange(1, _STYLES + 1)
        self._style_popularity = (1.0 / ranks**0.9) / np.sum(1.0 / ranks**0.9)
        self._style_base_price = np.clip(
            rng.lognormal(3.4, 0.7, _STYLES), 1, _PRICE_HIGH
        )

    @property
    def schema(self) -> Schema:
        return landsend_schema()

    def generate_points(self, count: int, stream_offset: int = 0) -> np.ndarray:
        """Generate ``count`` records as an ``(count, 8)`` int64 array.

        ``stream_offset`` makes successive calls produce disjoint,
        reproducible slices of one infinite stream (used by the incremental
        benches to draw batch after batch).
        """
        rng = np.random.default_rng((self._seed, stream_offset))
        cluster = rng.choice(len(self._centers), count, p=self._weights)
        zipcode = np.clip(
            rng.normal(self._centers[cluster], self._spreads[cluster]).astype(np.int64),
            _ZIP_LOW,
            _ZIP_HIGH,
        )
        day = rng.integers(0, _DATE_DAYS, count)
        seasonal_boost = rng.random(count) < 0.25
        # A quarter of orders land in the holiday window of their year.
        day = np.where(seasonal_boost, (day // 365) * 365 + rng.integers(300, 365, count), day)
        gender = rng.choice(_GENDERS, count, p=[0.55, 0.40, 0.05])
        style = rng.choice(_STYLES, count, p=self._style_popularity)
        price = np.clip(
            (self._style_base_price[style] * rng.lognormal(0.0, 0.25, count)).astype(
                np.int64
            ),
            1,
            _PRICE_HIGH,
        )
        quantity = np.clip(rng.geometric(0.55, count), 1, _QUANTITY_HIGH)
        cost = np.clip(
            (price * quantity * rng.uniform(0.55, 0.8, count)).astype(np.int64),
            1,
            _COST_HIGH,
        )
        shipment = rng.choice(_SHIPMENTS, count, p=[0.5, 0.25, 0.13, 0.08, 0.04])
        return np.column_stack(
            [zipcode, day, gender, style, price, quantity, cost, shipment]
        )

    def generate(self, count: int, stream_offset: int = 0, first_rid: int = 0) -> Table:
        """Generate ``count`` records as a :class:`Table`."""
        points = self.generate_points(count, stream_offset)
        table = Table(self.schema)
        for offset, row in enumerate(points):
            table.append(Record(first_rid + offset, tuple(float(v) for v in row)))
        return table


def make_landsend_table(count: int, seed: int = 0) -> Table:
    """Convenience: a fresh Lands End-like table of ``count`` records."""
    return LandsEndGenerator(seed).generate(count)
