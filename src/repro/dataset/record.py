"""The record type threaded through indexing and anonymization.

A :class:`Record` pairs a point in quasi-identifier space with a stable
record id and the (untouched) sensitive values.  The id is what lets the
anonymizer publish a generalized table in which each output row carries the
original row's sensitive values, and what the deletion path of the index
uses to identify the record to remove.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable


@dataclass(frozen=True, slots=True)
class Record:
    """One table row: ``rid`` identity, ``point`` quasi-identifiers, payload."""

    rid: int
    point: tuple[float, ...]
    sensitive: tuple[Hashable, ...] = ()

    def value(self, dimension: int) -> float:
        """The quasi-identifier value along one dimension."""
        return self.point[dimension]

    @property
    def dimensions(self) -> int:
        return len(self.point)
