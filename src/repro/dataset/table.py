"""In-memory tables of records.

A :class:`Table` is the unanonymized input: a schema plus a list of
:class:`~repro.dataset.record.Record`.  It offers the handful of operations
the experiments need — batching for incremental anonymization, sampling for
the compaction-cost sweep, domain boxes for the index root, and attribute
ranges for metric normalization.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, Sequence

from repro.dataset.record import Record
from repro.dataset.schema import Schema
from repro.geometry.box import Box


class Table:
    """A schema plus an ordered collection of records."""

    def __init__(self, schema: Schema, records: Iterable[Record] = ()) -> None:
        self._schema = schema
        self._records: list[Record] = []
        for record in records:
            self.append(record)

    # -- construction ------------------------------------------------------

    @classmethod
    def from_points(
        cls,
        schema: Schema,
        points: Iterable[Sequence[float]],
        sensitive: Iterable[Sequence[object]] | None = None,
    ) -> "Table":
        """Build a table from bare points, assigning sequential rids."""
        table = cls(schema)
        if sensitive is None:
            for rid, point in enumerate(points):
                table.append(Record(rid, tuple(float(v) for v in point)))
        else:
            for rid, (point, payload) in enumerate(zip(points, sensitive)):
                table.append(
                    Record(rid, tuple(float(v) for v in point), tuple(payload))
                )
        return table

    def append(self, record: Record) -> None:
        """Add one record, validating its dimensionality."""
        if len(record.point) != self._schema.dimensions:
            raise ValueError(
                f"record {record.rid} has {len(record.point)} quasi-identifier "
                f"values, schema expects {self._schema.dimensions}"
            )
        self._records.append(record)

    # -- basic access --------------------------------------------------------

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def records(self) -> list[Record]:
        """The record list (treat as read-only)."""
        return self._records

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[Record]:
        return iter(self._records)

    def __getitem__(self, index: int) -> Record:
        return self._records[index]

    # -- derived views -------------------------------------------------------

    def points(self) -> list[tuple[float, ...]]:
        """All quasi-identifier points, in record order."""
        return [record.point for record in self._records]

    def extent(self) -> Box:
        """Minimum bounding box of the actual data (not the declared domain)."""
        if not self._records:
            raise ValueError("cannot compute the extent of an empty table")
        return Box.from_points(record.point for record in self._records)

    def domain_box(self) -> Box:
        """The declared attribute domains as a box (the index root region)."""
        return Box(self._schema.domain_lows(), self._schema.domain_highs())

    def attribute_ranges(self) -> tuple[float, ...]:
        """``|T.A_i|`` per attribute: the data range used by NCP normalization.

        Zero-width attributes (every record identical) are reported as 0; the
        certainty metric treats any generalization of such an attribute as
        costless, since no precision can be lost.
        """
        extent = self.extent()
        return extent.extents()

    # -- slicing for experiments ---------------------------------------------

    def sample(self, count: int, seed: int = 0) -> "Table":
        """A reproducible uniform sample of ``count`` records (without replacement)."""
        if count > len(self._records):
            raise ValueError(f"cannot sample {count} of {len(self._records)} records")
        rng = random.Random(seed)
        chosen = rng.sample(self._records, count)
        return Table(self._schema, chosen)

    def head(self, count: int) -> "Table":
        """The first ``count`` records, preserving order."""
        return Table(self._schema, self._records[:count])

    def batches(self, batch_size: int) -> Iterator["Table"]:
        """Split into consecutive batches (the incremental-update workload).

        The final batch may be smaller.  Mirrors the paper's 0.5M-record
        batch protocol for Figure 7(b) and Figure 11.
        """
        if batch_size <= 0:
            raise ValueError("batch size must be positive")
        for start in range(0, len(self._records), batch_size):
            yield Table(self._schema, self._records[start : start + batch_size])
