"""Fault injection for the durability stack, plus the CI crash grid.

The injectors mutate a *clone* of a durability directory the way real
failures would:

* :func:`kill_at_lsn` — truncate the WAL at a frame boundary, simulating a
  crash after that operation's fsync (everything later never hit disk);
* :func:`tear_final_frame` — leave a partial final frame, the signature of
  a crash mid-append;
* :func:`truncate_tail` — chop arbitrary bytes off the WAL tail;
* :func:`flip_bit` — flip one payload bit in the WAL or the snapshot.

:func:`run_fault_grid` is the acceptance harness (run by CI as
``python -m repro.durability.faults``): it drives a scripted workload
through a durable anonymizer, then for **every kill point** clones the
state, injects the kill, recovers, re-applies the not-yet-durable suffix
of the workload (exactly what a client that never got its acks would do),
and asserts — with the strict audit gate enabled — that the released
digest equals the uninterrupted run's.  Every corruption fault must raise
:class:`~repro.durability.errors.RecoveryError` instead of releasing.
"""

from __future__ import annotations

import shutil
import sys
from dataclasses import dataclass, field
from pathlib import Path
from typing import Sequence

from repro.dataset.record import Record
from repro.durability.checkpoint import SNAPSHOT_NAME
from repro.durability.errors import RecoveryError
from repro.durability.wal import WAL_NAME, _FRAME, _HEADER, read_wal

# -- state surgery -----------------------------------------------------------


def clone_state(source: str | Path, destination: str | Path) -> Path:
    """Copy a durability directory's WAL + snapshot to a fresh directory."""
    source, destination = Path(source), Path(destination)
    destination.mkdir(parents=True, exist_ok=True)
    for name in (WAL_NAME, SNAPSHOT_NAME):
        if (source / name).exists():
            shutil.copyfile(source / name, destination / name)
    return destination


def frame_boundaries(directory: str | Path) -> list[tuple[int, int]]:
    """Every ``(lsn, end_offset)`` frame boundary in the directory's WAL."""
    scan = read_wal(Path(directory) / WAL_NAME)
    return [(op.lsn, op.end_offset) for op in scan.ops]


def kill_at_lsn(directory: str | Path, lsn: int) -> None:
    """Truncate the WAL so ``lsn`` is the last durable operation.

    ``lsn`` may also be the WAL's start LSN (kill before any append).
    """
    wal_path = Path(directory) / WAL_NAME
    scan = read_wal(wal_path)
    if lsn == scan.start_lsn:
        offset = _HEADER.size
    else:
        by_lsn = {op.lsn: op.end_offset for op in scan.ops}
        if lsn not in by_lsn:
            raise ValueError(
                f"LSN {lsn} is not a kill point of {wal_path} "
                f"(valid: {scan.start_lsn}..{scan.last_lsn})"
            )
        offset = by_lsn[lsn]
    with open(wal_path, "r+b") as handle:
        handle.truncate(offset)


def tear_final_frame(directory: str | Path) -> None:
    """Cut the last WAL frame roughly in half (a torn write)."""
    wal_path = Path(directory) / WAL_NAME
    scan = read_wal(wal_path)
    if not scan.ops:
        raise ValueError(f"{wal_path} holds no frames to tear")
    last = scan.ops[-1]
    previous_end = scan.ops[-2].end_offset if len(scan.ops) > 1 else _HEADER.size
    torn_at = previous_end + max(_FRAME.size + 1, (last.end_offset - previous_end) // 2)
    with open(wal_path, "r+b") as handle:
        handle.truncate(min(torn_at, last.end_offset - 1))


def truncate_tail(directory: str | Path, nbytes: int) -> None:
    """Chop ``nbytes`` off the end of the WAL file."""
    wal_path = Path(directory) / WAL_NAME
    size = wal_path.stat().st_size
    with open(wal_path, "r+b") as handle:
        handle.truncate(max(0, size - nbytes))


def flip_bit(
    directory: str | Path, *, target: str = "wal", offset: int | None = None
) -> None:
    """XOR one bit inside the WAL (default) or the snapshot payload.

    Without an explicit offset the flip lands mid-way through the last
    frame's payload (WAL) or mid-payload (snapshot) — inside protected
    bytes, never in slack space.
    """
    if target == "wal":
        path = Path(directory) / WAL_NAME
        if offset is None:
            scan = read_wal(path)
            if not scan.ops:
                raise ValueError(f"{path} holds no frames to corrupt")
            last = scan.ops[-1]
            previous_end = (
                scan.ops[-2].end_offset if len(scan.ops) > 1 else _HEADER.size
            )
            offset = previous_end + _FRAME.size + max(
                0, (last.end_offset - previous_end - _FRAME.size) // 2
            )
    elif target == "snapshot":
        path = Path(directory) / SNAPSHOT_NAME
        if offset is None:
            offset = max(16, path.stat().st_size // 2)
    else:
        raise ValueError(f"unknown flip target {target!r}")
    with open(path, "r+b") as handle:
        handle.seek(offset)
        byte = handle.read(1)
        if not byte:
            raise ValueError(f"{path}: offset {offset} is past EOF")
        handle.seek(offset)
        handle.write(bytes((byte[0] ^ 0x40,)))


# -- the crash/corruption grid ------------------------------------------------

#: The corruption faults of the grid; each must make recovery raise.
CORRUPTION_FAULTS: tuple[str, ...] = (
    "torn-write",
    "truncated-tail",
    "bit-flip-wal",
    "bit-flip-snapshot",
)


@dataclass
class GridCell:
    """One grid outcome."""

    scenario: str
    fault: str
    ok: bool
    detail: str = ""


@dataclass
class GridReport:
    """The full fault-grid result."""

    reference_digest: str
    cells: list[GridCell] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(cell.ok for cell in self.cells)

    @property
    def kill_points(self) -> int:
        return sum(1 for cell in self.cells if cell.fault.startswith("kill@"))

    def render(self) -> str:
        lines = [
            f"fault grid: {len(self.cells)} cells "
            f"({self.kill_points} kill points), reference digest "
            f"{self.reference_digest[:16]}…"
        ]
        failures = [cell for cell in self.cells if not cell.ok]
        for cell in failures:
            lines.append(f"  FAIL {cell.scenario}/{cell.fault}: {cell.detail}")
        lines.append("grid ok" if not failures else f"{len(failures)} cells failed")
        return "\n".join(lines)


def _grid_workload(records: int, seed: int) -> tuple[list, "object"]:
    """A scripted mixed workload: one batch load, then singles, then a batch.

    Returns ``(ops, schema_table)`` where each op is a tuple the applier
    understands: ``("batch", records)``, ``("insert", record)``,
    ``("delete", rid, point)``, ``("update", rid, old_point, record)``.
    """
    import random

    from repro.dataset.schema import Attribute, Schema
    from repro.dataset.table import Table

    rng = random.Random(seed)
    schema = Schema(
        (
            Attribute.numeric("a", 0, 100),
            Attribute.numeric("b", 0, 100),
        ),
        sensitive=("payload",),
    )

    def fresh(rid: int) -> Record:
        return Record(
            rid,
            (float(rng.randint(0, 100)), float(rng.randint(0, 100))),
            (f"s{rid}",),
        )

    base = [fresh(rid) for rid in range(records)]
    ops: list = [("batch", tuple(base))]
    live = {record.rid: record for record in base}
    next_rid = records
    for _ in range(6):
        record = fresh(next_rid)
        ops.append(("insert", record))
        live[record.rid] = record
        next_rid += 1
    for _ in range(3):
        rid = rng.choice(sorted(live))
        victim = live.pop(rid)
        ops.append(("delete", rid, victim.point))
    for _ in range(3):
        rid = rng.choice(sorted(live))
        old = live[rid]
        moved = Record(rid, fresh(0).point, old.sensitive)
        ops.append(("update", rid, old.point, moved))
        live[rid] = moved
    tail = [fresh(next_rid + i) for i in range(8)]
    ops.append(("batch", tuple(tail)))
    return ops, Table(schema, [])


def _apply_ops(anonymizer, ops: Sequence[tuple]) -> list[int]:
    """Apply workload ops, returning the durable LSN after each op."""
    lsns: list[int] = []
    for op in ops:
        if op[0] == "batch":
            anonymizer.insert_batch(list(op[1]))
        elif op[0] == "insert":
            anonymizer.insert(op[1])
        elif op[0] == "delete":
            anonymizer.delete(op[1], op[2])
        elif op[0] == "update":
            anonymizer.update(op[1], op[2], op[3])
        else:
            raise ValueError(f"unknown workload op {op[0]!r}")
        lsns.append(anonymizer.durability.lsn)
    return lsns


def run_fault_grid(
    workdir: str | Path,
    *,
    records: int = 48,
    k: int = 5,
    seed: int = 7,
    checkpoint_after_op: int | None = None,
    verbose: bool = False,
) -> GridReport:
    """Run the crash-at-any-LSN property plus every corruption fault.

    ``checkpoint_after_op`` writes a checkpoint after that workload op, so
    the grid also covers recovery from snapshot + WAL tail (kill points
    before the checkpoint LSN are then unreachable from the final state
    and are skipped — their crashes belong to the no-checkpoint scenario).
    """
    from repro.core.anonymizer import DEFAULT_BASE_K, RTreeAnonymizer
    from repro.core.partition import release_digest
    from repro.durability.manager import DurabilityConfig
    from repro.durability.recovery import recover
    from repro.obs import AUDITOR

    workdir = Path(workdir)
    scenario = "checkpointed" if checkpoint_after_op is not None else "plain"
    ops, schema_table = _grid_workload(records, seed)
    base_k = min(DEFAULT_BASE_K, k)

    # The uninterrupted reference run.
    reference_dir = workdir / f"{scenario}-reference"
    anonymizer = RTreeAnonymizer(
        schema_table, base_k=base_k, durability=DurabilityConfig(reference_dir)
    )
    lsns: list[int] = []
    for index, op in enumerate(ops):
        lsns.extend(_apply_ops(anonymizer, [op]))
        if checkpoint_after_op is not None and index == checkpoint_after_op:
            anonymizer.checkpoint()
    AUDITOR.enable(strict=True, reset=True)
    try:
        reference_digest = release_digest(anonymizer.anonymize(k))
    finally:
        AUDITOR.disable()
    anonymizer.durability.close()

    report = GridReport(reference_digest=reference_digest)
    boundaries = frame_boundaries(reference_dir)
    start_lsn = read_wal(reference_dir / WAL_NAME).start_lsn
    kill_lsns = [start_lsn] + [lsn for lsn, _offset in boundaries]

    for kill in kill_lsns:
        cell_dir = workdir / f"{scenario}-kill-{kill}"
        clone_state(reference_dir, cell_dir)
        kill_at_lsn(cell_dir, kill)
        detail, ok = "", True
        try:
            result = recover(cell_dir)
            # Re-apply the suffix the crash never acknowledged, the way a
            # client without acks would, then compare releases.
            suffix = [op for op, lsn in zip(ops, lsns) if lsn > kill]
            _apply_ops(result.anonymizer, suffix)
            AUDITOR.enable(strict=True, reset=True)
            try:
                digest = release_digest(result.anonymizer.anonymize(k))
            finally:
                AUDITOR.disable()
            result.anonymizer.durability.close()
            if digest != reference_digest:
                ok, detail = False, f"digest diverged: {digest[:16]}…"
        except Exception as error:  # noqa: BLE001 - report, don't crash the grid
            ok, detail = False, f"unexpected {type(error).__name__}: {error}"
        report.cells.append(GridCell(scenario, f"kill@{kill}", ok, detail))
        if verbose:
            print(f"  kill@{kill}: {'ok' if ok else detail}")

    for fault in CORRUPTION_FAULTS:
        cell_dir = workdir / f"{scenario}-{fault}"
        clone_state(reference_dir, cell_dir)
        if fault == "torn-write":
            tear_final_frame(cell_dir)
        elif fault == "truncated-tail":
            truncate_tail(cell_dir, 5)
        elif fault == "bit-flip-wal":
            flip_bit(cell_dir, target="wal")
        else:
            flip_bit(cell_dir, target="snapshot")
        detail, ok = "", True
        try:
            recover(cell_dir)
            ok, detail = False, "recovery returned instead of raising"
        except RecoveryError:
            pass
        except Exception as error:  # noqa: BLE001
            ok, detail = False, f"wrong exception {type(error).__name__}: {error}"
        report.cells.append(GridCell(scenario, fault, ok, detail))
        if verbose:
            print(f"  {fault}: {'ok' if ok else detail}")
    return report


def main(argv: Sequence[str] | None = None) -> int:
    """``python -m repro.durability.faults`` — the CI acceptance grid."""
    import argparse
    import tempfile

    parser = argparse.ArgumentParser(
        description="crash/corruption fault grid over the durability stack"
    )
    parser.add_argument("--records", type=int, default=48)
    parser.add_argument("--k", type=int, default=5)
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument(
        "--checkpoint",
        choices=("none", "mid", "all"),
        default="all",
        help=(
            "checkpoint placement: 'none' replays everything from the "
            "LSN-0 snapshot, 'mid' checkpoints mid-workload (bounded "
            "replay), 'all' runs both scenarios"
        ),
    )
    parser.add_argument("--verbose", action="store_true")
    arguments = parser.parse_args(argv)
    scenarios = {"none": (None,), "mid": (0,), "all": (None, 0)}[
        arguments.checkpoint
    ]
    exit_code = 0
    with tempfile.TemporaryDirectory() as workdir:
        for checkpoint_after_op in scenarios:
            report = run_fault_grid(
                Path(workdir) / ("ckpt" if checkpoint_after_op is not None else "plain"),
                records=arguments.records,
                k=arguments.k,
                seed=arguments.seed,
                checkpoint_after_op=checkpoint_after_op,
                verbose=arguments.verbose,
            )
            print(report.render())
            if not report.ok:
                exit_code = 1
    return exit_code


if __name__ == "__main__":
    sys.exit(main())
