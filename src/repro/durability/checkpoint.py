"""Checkpoint snapshots: the R+-tree topology frozen at one WAL LSN.

A snapshot captures everything recovery needs to reconstruct a tree whose
releases are bit-identical to the pre-crash tree: the tree's configuration
(k, capacities, fanout, domain extents), the full cut-tree topology with
every leaf's records, the schema the anonymizer publishes under, and the
obs/audit watermarks (audit sequence, release count) so post-recovery
evidence trails continue numbering instead of restarting.

The on-disk format is a small binary envelope — magic, version, payload
length, CRC32 — around a JSON payload.  JSON keeps the topology diffable
and debuggable; the CRC (plus an atomic ``os.replace`` publish) makes a
half-written or bit-flipped snapshot loudly detectable rather than
quietly wrong.  MBRs are *not* serialized: they are recomputed from the
records on restore, which both shrinks the snapshot and guarantees they
can never disagree with the data.

Limitation (documented in docs/API.md): categorical attributes are
restored with their kind and coded domain but without their
:class:`~repro.hierarchy.tree.GeneralizationHierarchy` object, which only
affects *named* generalizations in exports — boxes, digests and k
guarantees are unaffected.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.durability.errors import SnapshotCorruption
from repro.index.node import Cut, InternalNode, LeafNode, Node, Slot
from repro.index.rtree import RPlusTree
from repro.obs import OBS, TRACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.index.split import SplitPolicy

SNAPSHOT_MAGIC = b"RSNP"
SNAPSHOT_VERSION = 1

#: Default snapshot file name inside a durability directory.
SNAPSHOT_NAME = "checkpoint.snap"

_HEADER = struct.Struct("<4sHQI")  # magic, version, payload length, crc32


@dataclass(frozen=True)
class Snapshot:
    """One decoded checkpoint: the restored tree plus its metadata."""

    path: Path
    lsn: int
    tree: RPlusTree
    schema: Schema
    base_k: int
    watermarks: dict[str, object]


# -- serialization -----------------------------------------------------------


def _slot_to_doc(slot: Slot) -> dict[str, object]:
    item = slot.inner
    if isinstance(item, Cut):
        return {
            "t": "C",
            "d": item.dimension,
            "v": item.value,
            "a": _slot_to_doc(item.left),
            "b": _slot_to_doc(item.right),
        }
    return _node_to_doc(item)


def _node_to_doc(node: Node) -> dict[str, object]:
    if node.is_leaf:
        leaf: LeafNode = node  # type: ignore[assignment]
        return {
            "t": "L",
            "r": [
                [record.rid, list(record.point), list(record.sensitive)]
                for record in leaf.records
            ],
        }
    internal: InternalNode = node  # type: ignore[assignment]
    return {"t": "N", "l": internal.level, "c": _slot_to_doc(internal.cuts)}


def serialize_tree(tree: RPlusTree) -> dict[str, object]:
    """The tree's configuration plus full topology as a JSON-ready dict."""
    return {
        "dimensions": tree.dimensions,
        "k": tree.k,
        "leaf_capacity": tree.leaf_capacity,
        "max_fanout": tree.max_fanout,
        "domain_extents": list(tree.domain_extents),
        "count": len(tree),
        "root": _node_to_doc(tree.root) if tree.root is not None else None,
    }


def _doc_to_slot(doc: dict[str, object]) -> "Node | Cut":
    if doc["t"] == "C":
        return Cut(
            int(doc["d"]),  # type: ignore[arg-type]
            float(doc["v"]),  # type: ignore[arg-type]
            Slot(_doc_to_slot(doc["a"])),  # type: ignore[arg-type]
            Slot(_doc_to_slot(doc["b"])),  # type: ignore[arg-type]
        )
    return _doc_to_node(doc)


def _doc_to_node(doc: dict[str, object]) -> Node:
    if doc["t"] == "L":
        leaf = LeafNode()
        leaf.records = [
            Record(int(rid), tuple(float(v) for v in point), tuple(sensitive))
            for rid, point, sensitive in doc["r"]  # type: ignore[union-attr]
        ]
        leaf.recompute_mbr()
        return leaf
    node = InternalNode(int(doc["l"]), Slot(_doc_to_slot(doc["c"])))  # type: ignore[arg-type]
    for child in node.children():
        child.parent = node
    node.recompute_mbr()
    return node


def restore_tree(
    doc: dict[str, object], split_policy: "SplitPolicy | None" = None
) -> RPlusTree:
    """Rebuild an :class:`RPlusTree` from :func:`serialize_tree` output.

    The split policy is not serialized (policies are code, not data);
    callers that built the original tree with a non-default policy must
    pass the same one here for replay determinism.
    """
    tree = RPlusTree(
        dimensions=int(doc["dimensions"]),  # type: ignore[arg-type]
        k=int(doc["k"]),  # type: ignore[arg-type]
        leaf_capacity=int(doc["leaf_capacity"]),  # type: ignore[arg-type]
        max_fanout=int(doc["max_fanout"]),  # type: ignore[arg-type]
        domain_extents=[float(v) for v in doc["domain_extents"]],  # type: ignore[union-attr]
        split_policy=split_policy,
    )
    root_doc = doc.get("root")
    if root_doc is not None:
        root = _doc_to_node(root_doc)  # type: ignore[arg-type]
        tree._root = root
        tree._count = root.record_count()
    if len(tree) != int(doc["count"]):  # type: ignore[arg-type]
        raise ValueError(
            f"snapshot claims {doc['count']} records, topology holds {len(tree)}"
        )
    return tree


def serialize_schema(schema: Schema) -> dict[str, object]:
    return {
        "quasi_identifiers": [
            {
                "name": attribute.name,
                "kind": attribute.kind.value,
                "low": attribute.domain_low,
                "high": attribute.domain_high,
            }
            for attribute in schema.quasi_identifiers
        ],
        "sensitive": list(schema.sensitive),
    }


def restore_schema(doc: dict[str, object]) -> Schema:
    return Schema(
        tuple(
            Attribute(
                str(entry["name"]),
                AttributeKind(entry["kind"]),
                float(entry["low"]),
                float(entry["high"]),
            )
            for entry in doc["quasi_identifiers"]  # type: ignore[union-attr]
        ),
        sensitive=tuple(doc["sensitive"]),  # type: ignore[arg-type]
    )


# -- file I/O ----------------------------------------------------------------


def write_snapshot(
    path: str | Path,
    *,
    tree: RPlusTree,
    schema: Schema,
    lsn: int,
    watermarks: dict[str, object] | None = None,
) -> Path:
    """Serialize and atomically publish one checkpoint snapshot.

    The payload is written to a sibling temp file, fsynced, and
    ``os.replace``d into place so a crash mid-checkpoint leaves the
    previous snapshot intact rather than a torn one.
    """
    path = Path(path)
    document = {
        "version": SNAPSHOT_VERSION,
        "lsn": lsn,
        "base_k": tree.k,
        "tree": serialize_tree(tree),
        "schema": serialize_schema(schema),
        "watermarks": dict(watermarks or {}),
    }
    with TRACE.span("checkpoint.write", "durability", lsn=lsn):
        payload = json.dumps(document, separators=(",", ":")).encode("utf-8")
        envelope = (
            _HEADER.pack(
                SNAPSHOT_MAGIC, SNAPSHOT_VERSION, len(payload), zlib.crc32(payload)
            )
            + payload
        )
        temp = path.with_suffix(path.suffix + ".tmp")
        with open(temp, "wb") as handle:
            handle.write(envelope)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(temp, path)
    if OBS.enabled:
        OBS.count("checkpoint.snapshots")
        OBS.count("checkpoint.bytes", len(envelope))
    return path


def read_snapshot(
    path: str | Path, *, split_policy: "SplitPolicy | None" = None
) -> Snapshot:
    """Validate and decode a snapshot; raises :class:`SnapshotCorruption`."""
    path = Path(path)
    try:
        data = path.read_bytes()
    except OSError as error:
        raise SnapshotCorruption(path, f"unreadable: {error}")
    if len(data) < _HEADER.size:
        raise SnapshotCorruption(path, "file shorter than the snapshot header")
    magic, version, length, crc = _HEADER.unpack_from(data, 0)
    if magic != SNAPSHOT_MAGIC:
        raise SnapshotCorruption(path, f"bad magic {magic!r}")
    if version != SNAPSHOT_VERSION:
        raise SnapshotCorruption(path, f"unsupported snapshot version {version}")
    payload = data[_HEADER.size : _HEADER.size + length]
    if len(payload) != length:
        raise SnapshotCorruption(
            path, f"payload truncated ({len(payload)} of {length} bytes)"
        )
    if zlib.crc32(payload) != crc:
        raise SnapshotCorruption(path, "payload CRC mismatch")
    try:
        document = json.loads(payload.decode("utf-8"))
        tree = restore_tree(document["tree"], split_policy)
        schema = restore_schema(document["schema"])
        snapshot = Snapshot(
            path=path,
            lsn=int(document["lsn"]),
            tree=tree,
            schema=schema,
            base_k=int(document["base_k"]),
            watermarks=dict(document.get("watermarks", {})),
        )
    except SnapshotCorruption:
        raise
    except Exception as error:  # noqa: BLE001 - any decode defect is corruption
        raise SnapshotCorruption(path, f"undecodable payload: {error}")
    return snapshot
