"""Crash recovery: snapshot restore plus WAL tail replay.

:func:`recover` rebuilds an anonymizer from a durability directory so that
its next release is bit-identical (same partitions, same boxes, same
digest) to what the pre-crash anonymizer would have published after its
last *acknowledged* operation:

1. read and validate the checkpoint snapshot (always present — the
   manager writes an LSN-0 snapshot on creation);
2. read and validate the WAL; every defect raises
   :class:`~repro.durability.errors.RecoveryError` rather than guessing;
3. replay the frames past the snapshot LSN through the *same code paths*
   the original mutations took — single ops through the tree, sealed
   batches through a buffer-tree loader — so the split sequence, and
   therefore the leaf partitioning, reproduces exactly;
4. discard any trailing unsealed batch members (they were never
   acknowledged) and truncate them out of the WAL file;
5. reattach a :class:`~repro.durability.manager.DurabilityManager` so the
   recovered anonymizer keeps logging where the old one stopped.

Determinism caveat: a tree built with a non-default split policy must be
recovered with the same policy (policies are code and are not serialized).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING

from repro.durability.checkpoint import SNAPSHOT_NAME, read_snapshot
from repro.durability.errors import RecoveryError
from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.durability.wal import WAL_NAME, WalOp, read_wal
from repro.obs import AUDITOR, OBS, TRACE

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.anonymizer import RTreeAnonymizer
    from repro.index.split import SplitPolicy
    from repro.storage.buffer_pool import BufferPool


@dataclass(frozen=True)
class RecoveryResult:
    """What :func:`recover` reconstructed, with its evidence trail."""

    anonymizer: "RTreeAnonymizer"
    directory: Path
    snapshot_lsn: int
    last_lsn: int
    replayed_ops: int
    skipped_ops: int
    discarded_ops: int


def recover(
    directory: str | Path,
    *,
    split_policy: "SplitPolicy | None" = None,
    pool: "BufferPool | None" = None,
    group_commit_window: float = 0.0,
    allow_torn_tail: bool = False,
    reattach: bool = True,
) -> RecoveryResult:
    """Restore a durable anonymizer from ``directory``.

    Raises :class:`RecoveryError` (or a subclass) on any corruption: a
    recovered tree is exact or it is not served at all.  With
    ``allow_torn_tail=True`` a partial final WAL frame — the signature of
    a crash mid-append — is discarded instead of raised, matching
    classical WAL recovery; the strict default satisfies deployments that
    prefer loud operator intervention over silent truncation.
    ``reattach=False`` recovers read-only (no WAL is reopened), which the
    fault-injection grid uses to probe cloned state without mutating it.
    """
    directory = Path(directory)
    wal_path = directory / WAL_NAME
    snapshot_path = directory / SNAPSHOT_NAME
    if not directory.is_dir():
        raise RecoveryError(f"{directory} is not a directory")
    if not snapshot_path.exists():
        raise RecoveryError(
            f"{directory} holds no checkpoint snapshot ({SNAPSHOT_NAME}); "
            "not a durability directory or its initial snapshot was lost"
        )
    with OBS.span("recovery.recover"), TRACE.span(
        "recovery.recover", "durability", directory=str(directory)
    ):
        snapshot = read_snapshot(snapshot_path, split_policy=split_policy)
        if wal_path.exists():
            scan = read_wal(wal_path, allow_torn_tail=allow_torn_tail)
        else:
            scan = None
        anonymizer = _restore_anonymizer(snapshot, pool)
        replayed, skipped, discarded, keep_until = _replay(
            anonymizer, snapshot.lsn, scan
        )
        if scan is not None and keep_until < scan.path.stat().st_size:
            # Drop discarded (unsealed/torn) tail bytes so the next scan —
            # and the reattached appender — see only committed frames.
            with open(scan.path, "r+b") as handle:
                handle.truncate(keep_until)
        _restore_watermarks(snapshot.watermarks)
        if OBS.enabled:
            OBS.count("recovery.replayed_ops", replayed)
            OBS.count("recovery.discarded_ops", discarded)
        if reattach:
            config = DurabilityConfig(
                directory, group_commit_window=group_commit_window
            )
            manager = DurabilityManager.attach(
                config, io_stats=anonymizer.io_stats()
            )
            anonymizer._attach_durability(manager)
    last_lsn = scan.last_lsn if scan is not None else snapshot.lsn
    return RecoveryResult(
        anonymizer=anonymizer,
        directory=directory,
        snapshot_lsn=snapshot.lsn,
        last_lsn=last_lsn,
        replayed_ops=replayed,
        skipped_ops=skipped,
        discarded_ops=discarded,
    )


def _restore_anonymizer(snapshot, pool) -> "RTreeAnonymizer":
    from repro.core.anonymizer import RTreeAnonymizer

    return RTreeAnonymizer._from_restored(snapshot.schema, snapshot.tree, pool=pool)


def _replay(
    anonymizer: "RTreeAnonymizer",
    snapshot_lsn: int,
    scan,
) -> tuple[int, int, int, int]:
    """Apply the WAL tail; returns (replayed, skipped, discarded, keep_until).

    ``keep_until`` is the byte offset of the end of the last *kept* frame —
    everything after it (an unsealed trailing batch) is discarded.
    """
    if scan is None:
        return 0, 0, 0, 0
    tree = anonymizer.tree
    loader = anonymizer.loader
    pending: list[WalOp] = []
    replayed = 0
    skipped = 0
    keep_until = scan.end_offset
    with TRACE.span("recovery.replay", "durability", frames=len(scan.ops)):
        for op in scan.ops:
            if op.lsn <= snapshot_lsn:
                # Pre-rotation frames the snapshot already covers (a crash
                # between snapshot publish and WAL rotation leaves them).
                skipped += 1
                continue
            try:
                if op.kind == "insert" and op.batched:
                    pending.append(op)
                    continue
                if pending and op.kind != "batch_commit":
                    raise RecoveryError(
                        f"{scan.path}: LSN {op.lsn} interleaves a "
                        f"{op.kind} into an unsealed batch"
                    )
                if op.kind == "insert":
                    tree.insert(op.record)
                elif op.kind == "delete":
                    tree.delete(op.rid, op.point)
                elif op.kind == "update":
                    tree.update(op.rid, op.point, op.record)
                elif op.kind == "batch_commit":
                    if op.count != len(pending):
                        raise RecoveryError(
                            f"{scan.path}: batch-commit at LSN {op.lsn} seals "
                            f"{op.count} records but {len(pending)} are pending"
                        )
                    loader.insert_batch(item.record for item in pending)
                    loader.drain()
                    replayed += len(pending)
                    pending = []
                else:  # pragma: no cover - read_wal rejects unknown ops
                    raise RecoveryError(f"unknown WAL op {op.kind!r}")
            except RecoveryError:
                raise
            except (KeyError, ValueError) as error:
                raise RecoveryError(
                    f"{scan.path}: replay of {op.kind} at LSN {op.lsn} failed: "
                    f"{error!r} — the log does not match the snapshot"
                )
            if op.kind != "batch_commit":
                replayed += 1
        discarded = len(pending)
        if discarded:
            # The unsealed tail was never acknowledged; keep the WAL at the
            # last frame before the batch opened.
            first_pending = pending[0]
            keep_until = _offset_before(scan, first_pending.lsn)
    return replayed, skipped, discarded, keep_until


def _offset_before(scan, lsn: int) -> int:
    """Byte offset of the end of the last frame preceding ``lsn``."""
    from repro.durability.wal import _HEADER

    previous_end = _HEADER.size
    for op in scan.ops:
        if op.lsn >= lsn:
            break
        previous_end = op.end_offset
    return previous_end


def _restore_watermarks(watermarks: dict[str, object]) -> None:
    """Resume the audit sequence so post-recovery records keep numbering."""
    sequence = watermarks.get("audit_sequence")
    if isinstance(sequence, int) and AUDITOR.enabled:
        AUDITOR.resume_from(sequence)
