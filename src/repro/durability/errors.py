"""Durability error taxonomy.

Every failure the recovery path can hit maps onto one exception family so
callers (the CLI, the fault-injection grid, CI) can assert the contract the
paper's incremental story needs: recovery either reconstructs the exact
pre-crash k-grouping or it raises — it never serves a silently corrupt
release.
"""

from __future__ import annotations


class RecoveryError(RuntimeError):
    """Durable state could not be restored exactly.

    Raised for any defect recovery cannot prove harmless: a corrupt or
    unreadable snapshot, a torn or bit-flipped WAL frame, an LSN gap, or a
    replayed operation that no longer applies to the restored tree.
    """


class WalCorruption(RecoveryError):
    """A write-ahead-log frame failed validation (CRC, framing, LSN order)."""

    def __init__(self, path: object, offset: int, reason: str) -> None:
        super().__init__(f"{path}: WAL corrupt at byte {offset}: {reason}")
        self.path = str(path)
        self.offset = offset
        self.reason = reason


class SnapshotCorruption(RecoveryError):
    """A checkpoint snapshot failed validation (magic, CRC, structure)."""

    def __init__(self, path: object, reason: str) -> None:
        super().__init__(f"{path}: snapshot corrupt: {reason}")
        self.path = str(path)
        self.reason = reason
