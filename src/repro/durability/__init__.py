"""Durability subsystem: WAL, checkpoint snapshots, crash recovery.

See :mod:`repro.durability.manager` for the protocol invariants, and
``docs/API.md`` for the user-facing tour.  The public surface:

* :class:`DurabilityConfig` — the opt-in knob for
  :class:`~repro.core.anonymizer.RTreeAnonymizer` / :func:`repro.api.open`;
* :func:`recover` — rebuild an anonymizer from a durability directory;
* :class:`RecoveryError` and its subclasses — every corruption is loud;
* :mod:`repro.durability.faults` — the fault-injection harness CI runs.
"""

from repro.durability.checkpoint import (
    SNAPSHOT_NAME,
    Snapshot,
    read_snapshot,
    write_snapshot,
)
from repro.durability.errors import (
    RecoveryError,
    SnapshotCorruption,
    WalCorruption,
)
from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.durability.recovery import RecoveryResult, recover
from repro.durability.wal import WAL_NAME, WriteAheadLog, read_wal

__all__ = [
    "DurabilityConfig",
    "DurabilityManager",
    "RecoveryError",
    "RecoveryResult",
    "SNAPSHOT_NAME",
    "Snapshot",
    "SnapshotCorruption",
    "WAL_NAME",
    "WalCorruption",
    "WriteAheadLog",
    "read_snapshot",
    "read_wal",
    "recover",
    "write_snapshot",
]
