"""Durable-state orchestration: one directory = one WAL + one snapshot.

:class:`DurabilityConfig` is the opt-in knob callers hand to
:class:`~repro.core.anonymizer.RTreeAnonymizer` (or
:func:`repro.api.open`); :class:`DurabilityManager` owns the directory's
write-ahead log and checkpoint file and exposes the logging hooks the
anonymizer calls *after* each successfully applied mutation.

Protocol invariants the recovery path relies on:

* creating a manager on a fresh directory writes an **initial snapshot**
  of the empty tree at LSN 0, so recovery always has a schema and tree
  configuration to start from — a WAL is never the only durable artifact;
* single operations are logged (and group-commit-synced) one frame each;
  batch and bulk ingestion logs members with the *batched* flag and seals
  them with one ``batch-commit`` frame — an unsealed batch is, by
  definition, unacknowledged and is discarded by recovery;
* a checkpoint first publishes the snapshot atomically, then rotates the
  WAL to start at the snapshot LSN; a crash between the two leaves a
  snapshot plus a WAL whose early frames it already covers, which
  recovery skips by LSN.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Iterable

from repro.dataset.record import Record
from repro.durability.checkpoint import SNAPSHOT_NAME, write_snapshot
from repro.durability.wal import WAL_NAME, WriteAheadLog
from repro.obs import AUDITOR, OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.schema import Schema
    from repro.index.rtree import RPlusTree
    from repro.storage.pagefile import IOStats


@dataclass(frozen=True)
class DurabilityConfig:
    """Opt-in durability settings for an anonymizer.

    ``dir`` is the durability directory (created if absent; must not
    already hold another store's state — recover that instead).
    ``group_commit_window`` is the fsync batching window in seconds: 0
    syncs every acknowledged operation, a positive value lets consecutive
    single-op appends share one fsync until the window elapses (batch
    ingestion always groups its members under the batch-commit's fsync).
    """

    dir: str | Path
    group_commit_window: float = 0.0

    @property
    def directory(self) -> Path:
        return Path(self.dir)

    @property
    def wal_path(self) -> Path:
        return self.directory / WAL_NAME

    @property
    def snapshot_path(self) -> Path:
        return self.directory / SNAPSHOT_NAME


class DurabilityManager:
    """Owns one durability directory's WAL and checkpoint lifecycle."""

    def __init__(
        self,
        config: DurabilityConfig,
        wal: WriteAheadLog,
        *,
        io_stats: "IOStats | None" = None,
    ) -> None:
        self._config = config
        self._wal = wal
        self._io_stats = io_stats
        self._open_batch: int | None = None

    @classmethod
    def create(
        cls,
        config: DurabilityConfig,
        tree: "RPlusTree",
        schema: "Schema",
        *,
        io_stats: "IOStats | None" = None,
    ) -> "DurabilityManager":
        """Initialize a fresh durability directory for a new anonymizer.

        Writes the LSN-0 snapshot of the (empty) tree and an empty WAL.
        Refuses a directory that already holds durable state — silently
        truncating another store's WAL is exactly the data loss this
        subsystem exists to prevent; use :func:`repro.api.recover`.
        """
        directory = config.directory
        directory.mkdir(parents=True, exist_ok=True)
        if config.wal_path.exists() or config.snapshot_path.exists():
            raise ValueError(
                f"{directory} already holds durable state; recover it with "
                "repro.api.recover(dir) instead of opening it fresh"
            )
        write_snapshot(
            config.snapshot_path, tree=tree, schema=schema, lsn=0, watermarks={}
        )
        wal = WriteAheadLog(
            config.wal_path,
            start_lsn=0,
            group_commit_window=config.group_commit_window,
            io_stats=io_stats,
        )
        return cls(config, wal, io_stats=io_stats)

    @classmethod
    def attach(
        cls,
        config: DurabilityConfig,
        *,
        io_stats: "IOStats | None" = None,
    ) -> "DurabilityManager":
        """Reattach to an already-recovered directory for further appends."""
        wal = WriteAheadLog.open_existing(
            config.wal_path,
            group_commit_window=config.group_commit_window,
            io_stats=io_stats,
        )
        return cls(config, wal, io_stats=io_stats)

    # -- accessors -----------------------------------------------------------

    @property
    def config(self) -> DurabilityConfig:
        return self._config

    @property
    def directory(self) -> Path:
        return self._config.directory

    @property
    def lsn(self) -> int:
        """The LSN of the most recently logged operation."""
        return self._wal.lsn

    @property
    def in_batch(self) -> bool:
        return self._open_batch is not None

    # -- mutation logging (called after the in-memory apply succeeds) --------

    def log_insert(self, record: Record) -> int:
        self._assert_no_open_batch("insert")
        return self._wal.append_insert(record)

    def log_delete(self, rid: int, point: Iterable[float]) -> int:
        self._assert_no_open_batch("delete")
        return self._wal.append_delete(rid, tuple(point))

    def log_update(
        self, rid: int, old_point: Iterable[float], record: Record
    ) -> int:
        self._assert_no_open_batch("update")
        return self._wal.append_update(rid, tuple(old_point), record)

    def begin_batch(self) -> None:
        """Start logging batch members (unsealed until :meth:`commit_batch`)."""
        self._assert_no_open_batch("begin a batch")
        self._open_batch = 0

    def log_batched_insert(self, record: Record) -> int:
        if self._open_batch is None:
            raise RuntimeError("no open batch; call begin_batch() first")
        self._open_batch += 1
        return self._wal.append_insert(record, batched=True)

    def commit_batch(self) -> int:
        """Seal the open batch with one fsynced batch-commit frame."""
        if self._open_batch is None:
            raise RuntimeError("no open batch to commit")
        count, self._open_batch = self._open_batch, None
        return self._wal.append_batch_commit(count)

    def abort_batch(self) -> None:
        """Drop an open batch: its members stay unsealed and unrecoverable."""
        self._open_batch = None

    def _assert_no_open_batch(self, action: str) -> None:
        if self._open_batch is not None:
            raise RuntimeError(
                f"cannot {action} while a batch is open; commit or abort it first"
            )

    # -- checkpoints ---------------------------------------------------------

    def checkpoint(self, tree: "RPlusTree", schema: "Schema") -> int:
        """Snapshot the tree at the current LSN and truncate the WAL there.

        Returns the checkpoint LSN.  Must be called at a quiescent point:
        no open batch, loader drained (the anonymizer's ``checkpoint()``
        guarantees both).
        """
        self._assert_no_open_batch("checkpoint")
        started = time.perf_counter()
        self._wal.sync()
        lsn = self._wal.lsn
        watermarks: dict[str, object] = {
            "audit_sequence": AUDITOR.sequence,
            "releases": len(AUDITOR.records),
        }
        write_snapshot(
            self._config.snapshot_path,
            tree=tree,
            schema=schema,
            lsn=lsn,
            watermarks=watermarks,
        )
        # Rotate: the snapshot now covers everything up to ``lsn``, so the
        # WAL restarts there.  A crash before this line leaves frames the
        # snapshot already covers; recovery skips them by LSN.
        self._wal.close()
        self._wal = WriteAheadLog(
            self._config.wal_path,
            start_lsn=lsn,
            group_commit_window=self._config.group_commit_window,
            io_stats=self._io_stats,
        )
        if OBS.enabled:
            OBS.observe("checkpoint.seconds", time.perf_counter() - started)
        return lsn

    def sync(self) -> None:
        self._wal.sync()

    def close(self) -> None:
        self._wal.close()
