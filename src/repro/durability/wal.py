"""The write-ahead log: length+CRC32-framed binary mutation records.

Every incremental mutation the anonymizer acknowledges is first made
durable here, so a crash loses at most the operations that were never
acknowledged.  The format is deliberately simple and self-validating:

* **file header** — magic ``RWAL``, a format version, and the *start LSN*:
  the LSN of the last operation already captured by the checkpoint this
  log continues from (0 for a fresh store).  The first frame in the file
  carries ``start_lsn + 1``.
* **frame** — ``<u32 payload length><u32 crc32(payload)><payload>``.  The
  CRC makes torn writes and bit flips detectable; the length makes frames
  skippable without decoding.
* **payload** — ``<u8 op><u8 flags><u64 lsn>`` followed by an op-specific
  body.  Ops: insert, delete, update, batch-commit.  Flag bit 0 marks an
  insert as a *batch member*: batch members are not durable (and are
  discarded by recovery) until the batch-commit frame that seals them —
  the group-commit unit of the bulk/batched ingestion paths.

Fsync policy is group commit: a ``group_commit_window`` of 0 (the default)
syncs on every committed append, a positive window lets consecutive
appends share one fsync until the window elapses, and batch members never
sync individually — their batch-commit frame does.  Appends, bytes and
fsyncs are metered through :data:`repro.obs.OBS` (``wal.appends``,
``wal.bytes``, ``wal.fsyncs``) and, when the caller shares one, an
:class:`repro.storage.pagefile.IOStats` so WAL traffic lands in the same
I/O ledger as the simulated page store.
"""

from __future__ import annotations

import json
import os
import struct
import time
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, BinaryIO, Hashable, Sequence

from repro.dataset.record import Record
from repro.durability.errors import WalCorruption
from repro.obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.storage.pagefile import IOStats

WAL_MAGIC = b"RWAL"
WAL_VERSION = 1

#: Default WAL file name inside a durability directory.
WAL_NAME = "wal.log"

_HEADER = struct.Struct("<4sHQ")  # magic, version, start lsn
_FRAME = struct.Struct("<II")  # payload length, crc32(payload)
_PREFIX = struct.Struct("<BBQ")  # op, flags, lsn

#: Upper bound on one frame's payload; anything larger is corruption.
MAX_PAYLOAD_BYTES = 64 * 1024 * 1024

OP_INSERT = 1
OP_DELETE = 2
OP_UPDATE = 3
OP_BATCH_COMMIT = 4

_OP_NAMES = {
    OP_INSERT: "insert",
    OP_DELETE: "delete",
    OP_UPDATE: "update",
    OP_BATCH_COMMIT: "batch_commit",
}

FLAG_BATCHED = 1


def _pack_record(record: Record) -> bytes:
    point = tuple(float(value) for value in record.point)
    sensitive = json.dumps(list(record.sensitive)).encode("utf-8")
    return b"".join(
        (
            struct.pack("<qH", record.rid, len(point)),
            struct.pack(f"<{len(point)}d", *point),
            struct.pack("<I", len(sensitive)),
            sensitive,
        )
    )


def _unpack_record(payload: bytes, offset: int) -> tuple[Record, int]:
    rid, dimensions = struct.unpack_from("<qH", payload, offset)
    offset += struct.calcsize("<qH")
    point = struct.unpack_from(f"<{dimensions}d", payload, offset)
    offset += 8 * dimensions
    (sensitive_length,) = struct.unpack_from("<I", payload, offset)
    offset += 4
    raw = payload[offset : offset + sensitive_length]
    if len(raw) != sensitive_length:
        raise ValueError("sensitive payload shorter than declared")
    offset += sensitive_length
    sensitive = tuple(json.loads(raw.decode("utf-8"))) if raw else ()
    return Record(rid, point, sensitive), offset


def _pack_point(rid: int, point: Sequence[float]) -> bytes:
    values = tuple(float(value) for value in point)
    return struct.pack("<qH", rid, len(values)) + struct.pack(
        f"<{len(values)}d", *values
    )


def _unpack_point(payload: bytes, offset: int) -> tuple[int, tuple[float, ...], int]:
    rid, dimensions = struct.unpack_from("<qH", payload, offset)
    offset += struct.calcsize("<qH")
    point = struct.unpack_from(f"<{dimensions}d", payload, offset)
    return rid, point, offset + 8 * dimensions


@dataclass(frozen=True)
class WalOp:
    """One decoded WAL operation."""

    lsn: int
    kind: str
    batched: bool = False
    record: Record | None = None
    rid: int | None = None
    point: tuple[float, ...] | None = None
    count: int | None = None
    #: Byte offset of the end of this op's frame (for truncation/kill points).
    end_offset: int = 0


@dataclass(frozen=True)
class WalScan:
    """The result of reading a WAL file front to back."""

    path: Path
    start_lsn: int
    ops: tuple[WalOp, ...]
    #: Byte offset one past the last valid frame (header end when empty).
    end_offset: int = 0

    @property
    def last_lsn(self) -> int:
        return self.ops[-1].lsn if self.ops else self.start_lsn


class WriteAheadLog:
    """Appender over one WAL file with group-commit fsync batching."""

    def __init__(
        self,
        path: str | Path,
        *,
        start_lsn: int = 0,
        group_commit_window: float = 0.0,
        io_stats: "IOStats | None" = None,
        _existing_scan: WalScan | None = None,
    ) -> None:
        self._path = Path(path)
        self._window = group_commit_window
        self._io_stats = io_stats
        self._dirty = False
        self._last_sync = time.monotonic()
        if _existing_scan is None:
            self._start_lsn = start_lsn
            self._lsn = start_lsn
            self._handle: BinaryIO = open(self._path, "wb")
            self._handle.write(_HEADER.pack(WAL_MAGIC, WAL_VERSION, start_lsn))
            self._dirty = True
            self.sync()
        else:
            self._start_lsn = _existing_scan.start_lsn
            self._lsn = _existing_scan.last_lsn
            self._handle = open(self._path, "r+b")
            self._handle.seek(_existing_scan.end_offset)
            self._handle.truncate()

    @classmethod
    def open_existing(
        cls,
        path: str | Path,
        *,
        group_commit_window: float = 0.0,
        io_stats: "IOStats | None" = None,
    ) -> "WriteAheadLog":
        """Reopen a validated WAL for appending (the post-recovery path).

        The file is scanned and validated first; any torn tail recovery
        chose to discard must already be truncated away by the caller — a
        corrupt file raises :class:`WalCorruption` here rather than being
        silently appended to.
        """
        scan = read_wal(path)
        return cls(
            path,
            group_commit_window=group_commit_window,
            io_stats=io_stats,
            _existing_scan=scan,
        )

    # -- accessors -----------------------------------------------------------

    @property
    def path(self) -> Path:
        return self._path

    @property
    def lsn(self) -> int:
        """The LSN of the last appended operation."""
        return self._lsn

    @property
    def start_lsn(self) -> int:
        return self._start_lsn

    @property
    def closed(self) -> bool:
        return self._handle.closed

    # -- appends -------------------------------------------------------------

    def append_insert(self, record: Record, *, batched: bool = False) -> int:
        """Log one insert; batch members defer durability to the commit."""
        flags = FLAG_BATCHED if batched else 0
        return self._append(OP_INSERT, flags, _pack_record(record), sync=not batched)

    def append_delete(self, rid: int, point: Sequence[float]) -> int:
        return self._append(OP_DELETE, 0, _pack_point(rid, point), sync=True)

    def append_update(
        self, rid: int, old_point: Sequence[float], record: Record
    ) -> int:
        body = _pack_point(rid, old_point) + _pack_record(record)
        return self._append(OP_UPDATE, 0, body, sync=True)

    def append_batch_commit(self, count: int) -> int:
        """Seal the preceding ``count`` batch-member inserts; always syncs."""
        lsn = self._append(OP_BATCH_COMMIT, 0, struct.pack("<Q", count), sync=True)
        self.sync()
        return lsn

    def _append(self, op: int, flags: int, body: bytes, *, sync: bool) -> int:
        self._lsn += 1
        payload = _PREFIX.pack(op, flags, self._lsn) + body
        frame = _FRAME.pack(len(payload), zlib.crc32(payload)) + payload
        self._handle.write(frame)
        self._dirty = True
        if OBS.enabled:
            OBS.count("wal.appends")
            OBS.count("wal.bytes", len(frame))
        if sync:
            if self._window <= 0.0:
                self.sync()
            elif time.monotonic() - self._last_sync >= self._window:
                self.sync()
        return self._lsn

    def sync(self) -> None:
        """Flush buffered frames and fsync them to stable storage.

        Fsync latency feeds the ``wal.fsync_seconds`` histogram — the
        p99 of this distribution is the floor under every acknowledged
        write's latency, which is why the serving telemetry surfaces it.
        """
        if not self._dirty:
            return
        started = time.perf_counter()
        self._handle.flush()
        os.fsync(self._handle.fileno())
        self._dirty = False
        self._last_sync = time.monotonic()
        if OBS.enabled:
            OBS.count("wal.fsyncs")
            OBS.observe("wal.fsync_seconds", time.perf_counter() - started)
        if self._io_stats is not None:
            self._io_stats.fsyncs += 1

    def close(self) -> None:
        if self._handle.closed:
            return
        self.sync()
        self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_wal(path: str | Path, *, allow_torn_tail: bool = False) -> WalScan:
    """Read and validate a WAL file front to back.

    Any malformed frame — short header, short payload, CRC mismatch,
    unknown op, out-of-order LSN — raises :class:`WalCorruption` naming
    the byte offset.  With ``allow_torn_tail=True`` a defect in the *final*
    frame is instead treated as a torn write and the scan stops before it
    (mid-file corruption still raises: valid frames after a bad one prove
    the damage was not a crash-interrupted append).
    """
    path = Path(path)
    data = path.read_bytes()
    if len(data) < _HEADER.size:
        raise WalCorruption(path, 0, "file shorter than the WAL header")
    magic, version, start_lsn = _HEADER.unpack_from(data, 0)
    if magic != WAL_MAGIC:
        raise WalCorruption(path, 0, f"bad magic {magic!r}")
    if version != WAL_VERSION:
        raise WalCorruption(path, 0, f"unsupported WAL version {version}")
    ops: list[WalOp] = []
    offset = _HEADER.size
    expected_lsn = start_lsn + 1

    def torn(at: int, reason: str) -> WalScan:
        if allow_torn_tail and _frames_after(data, at) == 0:
            return WalScan(path, start_lsn, tuple(ops), at)
        raise WalCorruption(path, at, reason)

    def _frames_after(buffer: bytes, damaged_at: int) -> int:
        # Step past the damaged frame by its declared length (when the
        # frame header survived) before counting: a CRC-failed frame with
        # *valid* frames behind it is mid-file damage, not a torn tail.
        offset = damaged_at
        if len(buffer) - offset >= _FRAME.size:
            (length, _) = _FRAME.unpack_from(buffer, offset)
            if length <= MAX_PAYLOAD_BYTES:
                offset += _FRAME.size + length
        return _whole_frames_from(buffer, offset)

    while offset < len(data):
        frame_start = offset
        if len(data) - offset < _FRAME.size:
            return torn(frame_start, "truncated frame header")
        length, crc = _FRAME.unpack_from(data, offset)
        offset += _FRAME.size
        if length > MAX_PAYLOAD_BYTES:
            return torn(frame_start, f"implausible payload length {length}")
        payload = data[offset : offset + length]
        if len(payload) != length:
            return torn(frame_start, "truncated frame payload")
        offset += length
        if zlib.crc32(payload) != crc:
            return torn(frame_start, "payload CRC mismatch")
        try:
            op = _decode_payload(payload, offset)
        except (struct.error, ValueError, UnicodeDecodeError) as error:
            raise WalCorruption(path, frame_start, f"undecodable payload: {error}")
        if op.lsn != expected_lsn:
            raise WalCorruption(
                path,
                frame_start,
                f"LSN {op.lsn} out of order (expected {expected_lsn})",
            )
        expected_lsn += 1
        ops.append(op)
    return WalScan(path, start_lsn, tuple(ops), offset)


def _whole_frames_from(data: bytes, offset: int) -> int:
    """Count syntactically whole frames starting at ``offset``.

    Used to distinguish a torn tail (nothing decodable follows the damage)
    from mid-file corruption (valid frames continue after it).
    """
    count = 0
    while offset < len(data):
        if len(data) - offset < _FRAME.size:
            break
        length, crc = _FRAME.unpack_from(data, offset)
        if length > MAX_PAYLOAD_BYTES:
            break
        payload = data[offset + _FRAME.size : offset + _FRAME.size + length]
        if len(payload) != length or zlib.crc32(payload) != crc:
            break
        count += 1
        offset += _FRAME.size + length
    return count


def _decode_payload(payload: bytes, end_offset: int) -> WalOp:
    op, flags, lsn = _PREFIX.unpack_from(payload, 0)
    body_offset = _PREFIX.size
    kind = _OP_NAMES.get(op)
    if kind is None:
        raise ValueError(f"unknown op code {op}")
    batched = bool(flags & FLAG_BATCHED)
    if op == OP_INSERT:
        record, _ = _unpack_record(payload, body_offset)
        return WalOp(lsn, kind, batched, record=record, end_offset=end_offset)
    if op == OP_DELETE:
        rid, point, _ = _unpack_point(payload, body_offset)
        return WalOp(lsn, kind, rid=rid, point=point, end_offset=end_offset)
    if op == OP_UPDATE:
        rid, point, next_offset = _unpack_point(payload, body_offset)
        record, _ = _unpack_record(payload, next_offset)
        return WalOp(
            lsn, kind, rid=rid, point=point, record=record, end_offset=end_offset
        )
    (count,) = struct.unpack_from("<Q", payload, body_offset)
    return WalOp(lsn, kind, count=count, end_offset=end_offset)
