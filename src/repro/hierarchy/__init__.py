"""Generalization hierarchies for categorical quasi-identifier attributes.

The paper's experiments recode categorical attributes to integers, but the
compaction procedure (§4) and the certainty-penalty metric (Definition 4)
are both defined for hierarchy-backed categorical attributes as well: the
compaction of a categorical column is the lowest common ancestor of the
occurring values, and the NCP of a generalized value is the fraction of
hierarchy leaves under it.  This subpackage provides that machinery.
"""

from repro.hierarchy.tree import GeneralizationHierarchy, HierarchyNode

__all__ = ["GeneralizationHierarchy", "HierarchyNode"]
