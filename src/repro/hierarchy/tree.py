"""Generalization hierarchy trees.

A :class:`GeneralizationHierarchy` is a rooted tree whose leaves are the
ground values of a categorical attribute and whose internal nodes are
progressively coarser generalizations (``Madison -> Dane County ->
Wisconsin -> Midwest -> USA``).  Two operations matter for anonymization:

* *lowest common ancestor* of a set of ground values — this is exactly what
  the compaction procedure (§4) publishes for a categorical column of a
  partition ("the procedure chooses the lowest common ancestor in the
  hierarchy for all the values in P");
* *leaf counting* — the certainty penalty (Definition 4) charges a
  generalized categorical value ``|t.A_i| / |T.A_i|`` where ``|t.A_i|`` is
  the number of hierarchy leaves under the generalized node.

The hierarchy also supplies the "intuitive ordering" the paper imposes to
recode categoricals numerically: a left-to-right depth-first traversal
enumerates the leaves so that values that share low ancestors receive
adjacent codes, making interval generalizations of the codes meaningful.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Hashable, Iterator, Mapping, Sequence

Value = Hashable


@dataclass
class HierarchyNode:
    """One node in a generalization hierarchy.

    ``label`` is the published generalized value; leaves carry ground
    attribute values as their labels.
    """

    label: Value
    children: list["HierarchyNode"] = field(default_factory=list)
    parent: "HierarchyNode | None" = field(default=None, repr=False, compare=False)
    depth: int = 0
    _leaf_count: int = field(default=0, repr=False, compare=False)

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def leaf_count(self) -> int:
        """Number of ground values generalized by this node."""
        return self._leaf_count

    def iter_leaves(self) -> Iterator["HierarchyNode"]:
        """Yield leaf nodes under this node in left-to-right order."""
        if self.is_leaf:
            yield self
            return
        for child in self.children:
            yield from child.iter_leaves()

    def ancestors(self) -> Iterator["HierarchyNode"]:
        """Yield this node, then its parent chain up to the root."""
        node: HierarchyNode | None = self
        while node is not None:
            yield node
            node = node.parent


class GeneralizationHierarchy:
    """A rooted generalization tree over the ground values of one attribute.

    Construct either from a nested-mapping specification::

        hierarchy = GeneralizationHierarchy.from_spec(
            "Any", {"Midwest": {"WI": ["53706", "53715"], "IL": ["60601"]},
                    "South": {"TX": ["73301"]}}
        )

    or from explicit parent links via :meth:`from_parents`.
    """

    def __init__(self, root: HierarchyNode) -> None:
        self._root = root
        self._leaves: dict[Value, HierarchyNode] = {}
        self._finalize(root, None, 0)
        if not self._leaves:
            raise ValueError("hierarchy has no leaves")

    def _finalize(
        self, node: HierarchyNode, parent: HierarchyNode | None, depth: int
    ) -> int:
        node.parent = parent
        node.depth = depth
        if node.is_leaf:
            if node.label in self._leaves:
                raise ValueError(f"duplicate ground value {node.label!r}")
            self._leaves[node.label] = node
            node._leaf_count = 1
            return 1
        total = 0
        for child in node.children:
            total += self._finalize(child, node, depth + 1)
        node._leaf_count = total
        return total

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_spec(cls, root_label: Value, spec: object) -> "GeneralizationHierarchy":
        """Build from nested mappings/sequences.

        Mappings become internal nodes (keys are labels, values recurse);
        sequences become lists of leaves; scalars become single leaves.
        """
        return cls(cls._node_from_spec(root_label, spec))

    @staticmethod
    def _node_from_spec(label: Value, spec: object) -> HierarchyNode:
        node = HierarchyNode(label)
        if isinstance(spec, Mapping):
            for child_label, child_spec in spec.items():
                node.children.append(
                    GeneralizationHierarchy._node_from_spec(child_label, child_spec)
                )
        elif isinstance(spec, Sequence) and not isinstance(spec, (str, bytes)):
            for leaf_label in spec:
                node.children.append(HierarchyNode(leaf_label))
        else:
            node.children.append(HierarchyNode(spec))
        return node

    @classmethod
    def from_parents(
        cls, parents: Mapping[Value, Value], root_label: Value
    ) -> "GeneralizationHierarchy":
        """Build from a child-to-parent mapping (root excluded from keys)."""
        nodes: dict[Value, HierarchyNode] = {root_label: HierarchyNode(root_label)}
        for child in parents:
            nodes.setdefault(child, HierarchyNode(child))
        for child, parent in parents.items():
            if parent not in nodes:
                nodes[parent] = HierarchyNode(parent)
            nodes[parent].children.append(nodes[child])
        return cls(nodes[root_label])

    @classmethod
    def flat(cls, values: Sequence[Value], root_label: Value = "*") -> "GeneralizationHierarchy":
        """A two-level hierarchy: a root over a flat list of ground values.

        This models the paper's ``Sex`` attribute, where the only possible
        generalization of ``{M, F}`` is ``*``.
        """
        return cls.from_spec(root_label, list(values))

    # -- queries -----------------------------------------------------------

    @property
    def root(self) -> HierarchyNode:
        return self._root

    @property
    def height(self) -> int:
        """Maximum leaf depth."""
        return max(leaf.depth for leaf in self._leaves.values())

    def __len__(self) -> int:
        """Number of ground values."""
        return len(self._leaves)

    def __contains__(self, value: Value) -> bool:
        return value in self._leaves

    def leaf(self, value: Value) -> HierarchyNode:
        """The leaf node for a ground value (KeyError if unknown)."""
        return self._leaves[value]

    def node(self, label: Value) -> HierarchyNode:
        """Find any node (leaf or internal) by label, depth-first."""
        stack = [self._root]
        while stack:
            candidate = stack.pop()
            if candidate.label == label:
                return candidate
            stack.extend(candidate.children)
        raise KeyError(label)

    def lowest_common_ancestor(self, values: Sequence[Value]) -> HierarchyNode:
        """The LCA node of a non-empty set of ground values.

        This is the compaction procedure's categorical rule: the most
        precise single generalization covering every occurring value.
        """
        if not values:
            raise ValueError("cannot generalize an empty set of values")
        distinct = set(values)
        iterator = iter(distinct)
        current = self._leaves[next(iterator)]
        ancestor_chain = list(current.ancestors())
        ancestor_set = {id(node): position for position, node in enumerate(ancestor_chain)}
        best = 0
        for value in iterator:
            node = self._leaves[value]
            while id(node) not in ancestor_set:
                if node.parent is None:
                    raise ValueError(f"value {value!r} is not under the hierarchy root")
                node = node.parent
            best = max(best, ancestor_set[id(node)])
        return ancestor_chain[best]

    def generalization_fraction(self, values: Sequence[Value]) -> float:
        """``leaf_count(LCA(values)) / total leaves`` — the NCP charge.

        Equals 0 for a single-leaf generalization under the paper's
        convention that an exact value costs nothing?  No: Definition 4
        charges ``|t.A_i| / |T.A_i|`` with ``|t.A_i|`` the number of leaves
        under the generalized node, so a single exact value costs
        ``1/|T.A_i|``.  We follow the definition literally.
        """
        return self.lowest_common_ancestor(values).leaf_count / len(self)

    def ordering(self) -> dict[Value, int]:
        """Integer codes from the left-to-right leaf traversal.

        This is the "intuitive ordering" recoding from §5: ground values
        that share low ancestors receive adjacent codes, so intervals of
        codes correspond to meaningful categorical generalizations.
        """
        return {
            leaf.label: position
            for position, leaf in enumerate(self._root.iter_leaves())
        }

    def decode_interval(self, low: int, high: int) -> HierarchyNode:
        """Map a code interval back to the LCA of the covered ground values."""
        ordering = self.ordering()
        inverse = {code: value for value, code in ordering.items()}
        covered = [inverse[code] for code in range(low, high + 1) if code in inverse]
        return self.lowest_common_ancestor(covered)
