"""The one human-readable table renderer for metrics snapshots.

Both :meth:`~repro.obs.registry.MetricsRegistry.render_table` and
:class:`~repro.obs.sinks.TableSink` delegate here, so the ``--profile``
output and a rendered snapshot file are always formatted identically.
The input is the JSON-serializable dict produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.

:func:`render_live` is the second renderer in this module: the refreshing
dashboard ``repro top`` draws from a ``/healthz`` document plus parsed
``/metrics`` samples (see :mod:`repro.obs.live`).

Column alignment is *display-width* aware: East Asian wide characters
occupy two terminal cells, so padding by ``len()`` alone would shear any
table containing them (labels, dataset names, sensitive values leaking
into metric labels).  :func:`display_width` does the right thing.
"""

from __future__ import annotations

import unicodedata
from typing import Mapping

#: Health states ordered by severity; used for dashboard annotation.
_HEALTH_BADGES = {"healthy": "ok", "degraded": "DEGRADED", "stalled": "STALLED"}


def display_width(text: str) -> int:
    """The number of terminal cells ``text`` occupies.

    East Asian Wide and Fullwidth characters count as two cells;
    zero-width combining marks count as zero.  Good enough for aligning
    tables without a terminfo dependency.
    """
    width = 0
    for character in text:
        if unicodedata.combining(character):
            continue
        width += 2 if unicodedata.east_asian_width(character) in ("W", "F") else 1
    return width


def _pad(text: str, width: int) -> str:
    """Left-justify ``text`` to ``width`` terminal cells."""
    return text + " " * max(0, width - display_width(text))


def _section(lines: list[str], title: str, rows: Mapping[str, str]) -> None:
    if not rows:
        return
    lines.append(f"== {title} ==")
    width = max(display_width(name) for name in rows)
    for name, value in rows.items():
        lines.append(f"  {_pad(name, width)}  {value}")


def _histogram_row(h: Mapping[str, object]) -> str:
    row = (
        f"count={h['count']} mean={h['mean']:.4g} "
        f"min={h['min']:g} max={h['max']:g}"
    )
    # Older snapshots (pre-quantile-sketch) lack percentile keys; render
    # them without rather than crash on a stored trail.
    if "p50" in h:
        row += f" p50={h['p50']:.4g} p90={h['p90']:.4g} p99={h['p99']:.4g}"
    return row


def render_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a metrics snapshot as aligned multi-section text."""
    lines: list[str] = []
    label = snapshot.get("label")
    if label:
        lines.append(f"-- metrics: {label} --")
    counters = snapshot.get("counters") or {}
    _section(
        lines, "counters", {name: str(value) for name, value in counters.items()}  # type: ignore[union-attr]
    )
    gauges = snapshot.get("gauges") or {}
    _section(
        lines, "gauges", {name: f"{value:g}" for name, value in gauges.items()}  # type: ignore[union-attr]
    )
    histograms = snapshot.get("histograms") or {}
    _section(
        lines,
        "histograms",
        {name: _histogram_row(h) for name, h in histograms.items()},  # type: ignore[union-attr]
    )
    spans = snapshot.get("spans") or {}
    _section(
        lines,
        "spans",
        {
            path: f"count={aggregate['count']} total={aggregate['total_s']:.4f}s"
            for path, aggregate in spans.items()  # type: ignore[union-attr]
        },
    )
    trace = snapshot.get("trace") or {}
    _section(
        lines,
        "trace",
        {name: str(value) for name, value in trace.items()},  # type: ignore[union-attr]
    )
    if not lines or (len(lines) == 1 and label):
        return "(no metrics collected)"
    environment = snapshot.get("environment") or {}
    _section(
        lines,
        "environment",
        {name: str(value) for name, value in environment.items()},  # type: ignore[union-attr]
    )
    return "\n".join(lines)


def _format_sample(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return f"{int(value):,}"
    return f"{value:.6g}"


def render_live(
    health: Mapping[str, object],
    samples: Mapping[tuple[str, tuple[tuple[str, str], ...]], float]
    | None = None,
) -> str:
    """Render one ``repro top`` frame from live telemetry.

    ``health`` is the ``/healthz`` JSON document; ``samples`` the parsed
    ``/metrics`` exposition (see
    :func:`repro.obs.live.parse_prometheus_text`).  Quantile samples are
    folded into one latency row per metric; everything else renders as a
    counter/gauge row.  ``shard``-labeled samples (a sharded cluster's
    rollup) render in their own per-shard section, one
    ``name [shard i]`` row each, so ``repro top`` works unchanged
    against both backends.
    """
    lines: list[str] = []
    status = str(health.get("status", "unknown"))
    badge = _HEALTH_BADGES.get(status, status)
    lines.append(f"== service health: {status} [{badge}] ==")
    health_rows = {
        name: _format_sample(value) if isinstance(value, (int, float)) else str(value)
        for name, value in health.items()
        if name != "status" and not isinstance(value, (dict, list))
    }
    cache = health.get("cache")
    if isinstance(cache, Mapping):
        for name, value in cache.items():
            health_rows[f"cache.{name}"] = (
                _format_sample(value) if isinstance(value, (int, float)) else str(value)
            )
    width = max((display_width(name) for name in health_rows), default=0)
    for name, value in health_rows.items():
        lines.append(f"  {_pad(name, width)}  {value}")
    if not samples:
        return "\n".join(lines)
    quantiles: dict[str, dict[str, float]] = {}
    plain: dict[str, float] = {}
    sharded: dict[str, dict[str, float]] = {}
    for (name, labels), value in samples.items():
        label_map = dict(labels)
        shard = label_map.get("shard")
        if "quantile" in label_map:
            row = name if shard is None else f"{name} [shard {shard}]"
            quantiles.setdefault(row, {})[label_map["quantile"]] = value
        elif shard is not None:
            sharded.setdefault(shard, {})[name] = value
        elif not labels:
            plain[name] = value
    if quantiles:
        lines.append("== latency quantiles ==")
        width = max(display_width(name) for name in quantiles)
        for name in sorted(quantiles):
            cells = "  ".join(
                f"p{float(q) * 100:g}={quantiles[name][q]:.6g}"
                for q in sorted(quantiles[name], key=float)
            )
            lines.append(f"  {_pad(name, width)}  {cells}")
    if plain:
        lines.append("== metrics ==")
        width = max(display_width(name) for name in plain)
        for name in sorted(plain):
            lines.append(f"  {_pad(name, width)}  {_format_sample(plain[name])}")
    for shard in sorted(sharded, key=lambda s: (len(s), s)):
        rows = sharded[shard]
        lines.append(f"== shard {shard} ==")
        width = max(display_width(name) for name in rows)
        for name in sorted(rows):
            lines.append(f"  {_pad(name, width)}  {_format_sample(rows[name])}")
    return "\n".join(lines)
