"""The one human-readable table renderer for metrics snapshots.

Both :meth:`~repro.obs.registry.MetricsRegistry.render_table` and
:class:`~repro.obs.sinks.TableSink` delegate here, so the ``--profile``
output and a rendered snapshot file are always formatted identically.
The input is the JSON-serializable dict produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.
"""

from __future__ import annotations

from typing import Mapping


def _section(lines: list[str], title: str, rows: Mapping[str, str]) -> None:
    if not rows:
        return
    lines.append(f"== {title} ==")
    width = max(len(name) for name in rows)
    for name, value in rows.items():
        lines.append(f"  {name.ljust(width)}  {value}")


def render_snapshot(snapshot: Mapping[str, object]) -> str:
    """Render a metrics snapshot as aligned multi-section text."""
    lines: list[str] = []
    label = snapshot.get("label")
    if label:
        lines.append(f"-- metrics: {label} --")
    counters = snapshot.get("counters") or {}
    _section(
        lines, "counters", {name: str(value) for name, value in counters.items()}  # type: ignore[union-attr]
    )
    gauges = snapshot.get("gauges") or {}
    _section(
        lines, "gauges", {name: f"{value:g}" for name, value in gauges.items()}  # type: ignore[union-attr]
    )
    histograms = snapshot.get("histograms") or {}
    _section(
        lines,
        "histograms",
        {
            name: (
                f"count={h['count']} mean={h['mean']:.2f} "
                f"min={h['min']:g} max={h['max']:g}"
            )
            for name, h in histograms.items()  # type: ignore[union-attr]
        },
    )
    spans = snapshot.get("spans") or {}
    _section(
        lines,
        "spans",
        {
            path: f"count={aggregate['count']} total={aggregate['total_s']:.4f}s"
            for path, aggregate in spans.items()  # type: ignore[union-attr]
        },
    )
    if not lines or (len(lines) == 1 and label):
        return "(no metrics collected)"
    environment = snapshot.get("environment") or {}
    _section(
        lines,
        "environment",
        {name: str(value) for name, value in environment.items()},  # type: ignore[union-attr]
    )
    return "\n".join(lines)
