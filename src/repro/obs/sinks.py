"""Pluggable destinations for metrics snapshots.

A sink receives the JSON-serializable dict produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.  Three are built in:

* :class:`InMemorySink` — accumulate snapshots in a list (tests, deltas);
* :class:`JsonLinesSink` — append one JSON object per line to a file, the
  machine-readable trail the benchmark suite emits for run-to-run
  comparison;
* :class:`TableSink` — print the registry's human-readable table rendering
  to a stream (what ``repro <experiment> --profile`` shows).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol


class Sink(Protocol):
    """Anything that can receive a metrics snapshot."""

    def emit(self, snapshot: dict[str, object]) -> None:
        """Consume one snapshot."""
        ...  # pragma: no cover - protocol


class InMemorySink:
    """Collect snapshots in memory — the test and before/after-delta sink."""

    def __init__(self) -> None:
        self.snapshots: list[dict[str, object]] = []

    def emit(self, snapshot: dict[str, object]) -> None:
        self.snapshots.append(snapshot)

    @property
    def latest(self) -> dict[str, object] | None:
        return self.snapshots[-1] if self.snapshots else None


class JsonLinesSink:
    """Append snapshots to a JSON-lines file (one object per line)."""

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)

    @property
    def path(self) -> Path:
        return self._path

    def emit(self, snapshot: dict[str, object]) -> None:
        with open(self._path, "a", encoding="utf-8") as handle:
            json.dump(snapshot, handle, sort_keys=True)
            handle.write("\n")


class TableSink:
    """Render snapshots as aligned human-readable tables on a stream."""

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def emit(self, snapshot: dict[str, object]) -> None:
        label = snapshot.get("label")
        if label:
            print(f"-- metrics: {label} --", file=self._stream)
        for section in ("counters", "gauges"):
            rows = snapshot.get(section) or {}
            if not rows:
                continue
            print(f"== {section} ==", file=self._stream)
            width = max(len(name) for name in rows)  # type: ignore[arg-type]
            for name, value in rows.items():  # type: ignore[union-attr]
                print(f"  {name.ljust(width)}  {value}", file=self._stream)
        histograms = snapshot.get("histograms") or {}
        if histograms:
            print("== histograms ==", file=self._stream)
            width = max(len(name) for name in histograms)  # type: ignore[arg-type]
            for name, h in histograms.items():  # type: ignore[union-attr]
                print(
                    f"  {name.ljust(width)}  count={h['count']} "  # type: ignore[index]
                    f"mean={h['mean']:.2f} min={h['min']:g} max={h['max']:g}",
                    file=self._stream,
                )
        spans = snapshot.get("spans") or {}
        if spans:
            print("== spans ==", file=self._stream)
            width = max(len(path) for path in spans)  # type: ignore[arg-type]
            for path, aggregate in spans.items():  # type: ignore[union-attr]
                print(
                    f"  {path.ljust(width)}  count={aggregate['count']} "  # type: ignore[index]
                    f"total={aggregate['total_s']:.4f}s",
                    file=self._stream,
                )
