"""Pluggable destinations for metrics snapshots.

A sink receives the JSON-serializable dict produced by
:meth:`~repro.obs.registry.MetricsRegistry.snapshot`.  Three are built in:

* :class:`InMemorySink` — accumulate snapshots in a list (tests, deltas);
* :class:`JsonLinesSink` — append one JSON object per line to a file, the
  machine-readable trail the benchmark suite emits for run-to-run
  comparison;
* :class:`TableSink` — print the registry's human-readable table rendering
  to a stream (what ``repro <experiment> --profile`` shows).
"""

from __future__ import annotations

import json
import sys
from pathlib import Path
from typing import IO, Protocol

from repro.obs.render import render_snapshot


class Sink(Protocol):
    """Anything that can receive a metrics snapshot."""

    def emit(self, snapshot: dict[str, object]) -> None:
        """Consume one snapshot."""
        ...  # pragma: no cover - protocol


class InMemorySink:
    """Collect snapshots in memory — the test and before/after-delta sink."""

    def __init__(self) -> None:
        self.snapshots: list[dict[str, object]] = []

    def emit(self, snapshot: dict[str, object]) -> None:
        self.snapshots.append(snapshot)

    @property
    def latest(self) -> dict[str, object] | None:
        return self.snapshots[-1] if self.snapshots else None


class JsonLinesSink:
    """Append snapshots to a JSON-lines file (one object per line).

    The file handle is opened once and held for the sink's lifetime —
    emitting N snapshots costs one open, not N — and each emit is flushed
    so the trail is durable even if the process dies mid-run.  Close the
    sink when done (or use it as a context manager); emitting after close
    raises ``ValueError``.
    """

    def __init__(self, path: str | Path) -> None:
        self._path = Path(path)
        self._path.parent.mkdir(parents=True, exist_ok=True)
        self._handle: IO[str] | None = open(
            self._path, "a", encoding="utf-8"
        )

    @property
    def path(self) -> Path:
        return self._path

    @property
    def closed(self) -> bool:
        return self._handle is None

    def emit(self, snapshot: dict[str, object]) -> None:
        if self._handle is None:
            raise ValueError(f"sink for {self._path} is closed")
        json.dump(snapshot, self._handle, sort_keys=True)
        self._handle.write("\n")
        self._handle.flush()

    def close(self) -> None:
        """Release the file handle; idempotent."""
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonLinesSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


class TableSink:
    """Render snapshots as aligned human-readable tables on a stream.

    Delegates to :func:`repro.obs.render.render_snapshot` — the same
    renderer behind :meth:`MetricsRegistry.render_table` — so the sink's
    output and the registry's are formatted identically.
    """

    def __init__(self, stream: IO[str] | None = None) -> None:
        self._stream = stream if stream is not None else sys.stdout

    def emit(self, snapshot: dict[str, object]) -> None:
        print(render_snapshot(snapshot), file=self._stream)
