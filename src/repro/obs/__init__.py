"""repro.obs — observability for the index/loader/storage stack.

One process-wide :class:`~repro.obs.registry.MetricsRegistry` singleton,
:data:`OBS`, that the hot paths hook into behind ``if OBS.enabled:``
guards.  Collection is off by default and costs one attribute check per
hook while off; switch it on around the work you want to measure::

    from repro import obs

    obs.enable()
    anonymizer.bulk_load(table)          # hooks fire into obs.OBS
    print(obs.render_table())            # human-readable
    snapshot = obs.snapshot("bulk")      # JSON-serializable dict
    obs.disable()

Snapshots can also be pushed through pluggable sinks
(:class:`~repro.obs.sinks.JsonLinesSink` for machine-readable trails,
:class:`~repro.obs.sinks.TableSink` for humans,
:class:`~repro.obs.sinks.InMemorySink` for tests and deltas).  The
benchmark suite writes one snapshot per figure when ``REPRO_PROFILE`` is
set, and the CLI exposes the same machinery as ``--profile`` /
``--profile-json`` and the ``repro stats`` smoke command.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_COUNTERS,
    DEFAULT_HISTOGRAMS,
    DEFAULT_METRICS,
    Histogram,
    MetricsRegistry,
)
from repro.obs.sinks import InMemorySink, JsonLinesSink, Sink, TableSink

#: The process-wide registry every built-in hook reports to.
OBS = MetricsRegistry()


def enable(reset: bool = True) -> None:
    """Turn on collection on the process-wide registry."""
    OBS.enable(reset=reset)


def disable() -> None:
    """Turn off collection on the process-wide registry."""
    OBS.disable()


def reset() -> None:
    """Clear everything the process-wide registry has collected."""
    OBS.reset()


def snapshot(label: str | None = None) -> dict[str, object]:
    """A JSON-serializable copy of the process-wide registry's state."""
    return OBS.snapshot(label)


def render_table() -> str:
    """The process-wide registry's state as a human-readable table."""
    return OBS.render_table()


__all__ = [
    "DEFAULT_COUNTERS",
    "DEFAULT_HISTOGRAMS",
    "DEFAULT_METRICS",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "OBS",
    "Sink",
    "TableSink",
    "disable",
    "enable",
    "render_table",
    "reset",
    "snapshot",
]
