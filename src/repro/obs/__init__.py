"""repro.obs — observability for the index/loader/storage stack.

Three process-wide singletons, each off by default and guarded by one
boolean check per hook while off:

* :data:`OBS` — the :class:`~repro.obs.registry.MetricsRegistry` of
  aggregate counters, gauges, histograms and span rollups;
* :data:`TRACE` — the :class:`~repro.obs.trace.Tracer`, a bounded
  ring buffer of *individual* timed events exportable to Chrome/Perfetto
  ``traceEvents`` JSON (``repro <experiment> --trace out.json``);
* :data:`AUDITOR` — the :class:`~repro.obs.audit.ReleaseAuditor`, which
  builds one structured privacy-audit record per published release (k
  verdict, occupancy/volume distributions, quality metrics) and can gate
  publishes in strict mode.

Metrics usage::

    from repro import obs

    obs.enable()
    anonymizer.bulk_load(table)          # hooks fire into obs.OBS
    print(obs.render_table())            # human-readable
    snapshot = obs.snapshot("bulk")      # JSON-serializable dict
    obs.disable()

Snapshots can also be pushed through pluggable sinks
(:class:`~repro.obs.sinks.JsonLinesSink` for machine-readable trails,
:class:`~repro.obs.sinks.TableSink` for humans,
:class:`~repro.obs.sinks.InMemorySink` for tests and deltas).  The
benchmark suite writes one snapshot per figure when ``REPRO_PROFILE`` is
set (and one trace per figure when ``REPRO_TRACE`` is set), and the CLI
exposes the same machinery as ``--profile`` / ``--profile-json`` /
``--trace`` and the ``repro stats`` / ``repro bench`` commands.
"""

from __future__ import annotations

from repro.obs.audit import (
    AUDIT_RECORD_KEYS,
    AUDIT_SCHEMA_VERSION,
    AuditFailure,
    ReleaseAuditor,
    audit_release,
)
from repro.obs.registry import (
    DEFAULT_COUNTERS,
    DEFAULT_GAUGES,
    DEFAULT_HISTOGRAMS,
    DEFAULT_METRICS,
    Histogram,
    MetricsRegistry,
    environment_block,
)
from repro.obs.render import render_live, render_snapshot
from repro.obs.sinks import InMemorySink, JsonLinesSink, Sink, TableSink
from repro.obs.trace import TraceEvent, Tracer, validate_chrome_trace

#: The process-wide registry every built-in hook reports to.
OBS = MetricsRegistry()

#: The process-wide event tracer the built-in hooks record spans into.
TRACE = Tracer()

# Snapshots surface the tracer's drop counts so truncated traces are
# visible in ``repro stats`` / ``--profile`` output.
OBS.attach_tracer(TRACE)

#: The process-wide release auditor the anonymizer publishes through.
AUDITOR = ReleaseAuditor()


def enable(reset: bool = True) -> None:
    """Turn on collection on the process-wide registry."""
    OBS.enable(reset=reset)


def disable() -> None:
    """Turn off collection on the process-wide registry."""
    OBS.disable()


def reset() -> None:
    """Clear everything the process-wide registry has collected."""
    OBS.reset()


def snapshot(label: str | None = None) -> dict[str, object]:
    """A JSON-serializable copy of the process-wide registry's state."""
    return OBS.snapshot(label)


def render_table() -> str:
    """The process-wide registry's state as a human-readable table."""
    return OBS.render_table()


__all__ = [
    "AUDIT_RECORD_KEYS",
    "AUDIT_SCHEMA_VERSION",
    "AUDITOR",
    "AuditFailure",
    "DEFAULT_COUNTERS",
    "DEFAULT_GAUGES",
    "DEFAULT_HISTOGRAMS",
    "DEFAULT_METRICS",
    "Histogram",
    "InMemorySink",
    "JsonLinesSink",
    "MetricsRegistry",
    "OBS",
    "ReleaseAuditor",
    "Sink",
    "TRACE",
    "TableSink",
    "TraceEvent",
    "Tracer",
    "audit_release",
    "disable",
    "enable",
    "environment_block",
    "render_live",
    "render_snapshot",
    "render_table",
    "reset",
    "snapshot",
    "validate_chrome_trace",
]
