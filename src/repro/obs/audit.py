"""Per-release privacy audits: structured evidence that every release is safe.

Aggregate counters show that releases *happened*; this module checks that
each one actually satisfied its privacy contract and records what it looked
like.  On every release publish the :class:`ReleaseAuditor` (when enabled)
builds one structured **audit record**: the k-anonymity verdict (via
:mod:`repro.privacy.kanonymity`), partition-occupancy and normalized
MBR-volume distributions, and the discernibility / certainty quality
metrics — the per-release trail that makes incremental quality drift
(paper Figure 11) visible in production instead of only in offline
benchmarks.

``strict`` mode turns the auditor into a gate: any failed audit raises
:class:`AuditFailure` at the publish site, so a release that would violate
k-anonymity never leaves the process.

The process-wide instance is :data:`repro.obs.AUDITOR`;
:meth:`repro.core.anonymizer.RTreeAnonymizer.anonymize` feeds it behind an
``if AUDITOR.enabled:`` guard (one boolean test while off).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.partition import AnonymizedTable
    from repro.dataset.table import Table

#: Version stamp carried by every audit record; bump on any key change.
AUDIT_SCHEMA_VERSION = 1

#: The exact key set of an audit record — tests pin this so downstream
#: consumers (dashboards, the bench trail) can rely on the schema.
AUDIT_RECORD_KEYS = frozenset(
    {
        "schema_version",
        "sequence",
        "k_requested",
        "k_effective",
        "k_satisfied",
        "base_k",
        "record_count",
        "partition_count",
        "occupancy",
        "mbr_volume",
        "discernibility",
        "discernibility_per_record",
        "certainty",
        "certainty_per_record",
        "problems",
    }
)


class AuditFailure(RuntimeError):
    """A release failed its privacy audit (raised only in strict mode)."""

    def __init__(self, message: str, record: dict[str, object]) -> None:
        super().__init__(message)
        #: The full audit record of the failing release.
        self.record = record


def _distribution(values: Sequence[float]) -> dict[str, object]:
    """min/max/mean plus power-of-two buckets, like a registry histogram."""
    if not values:
        return {"count": 0, "min": 0, "max": 0, "mean": 0.0, "buckets": {}}
    buckets: dict[str, int] = {}
    for value in values:
        exponent = int(value).bit_length() if value >= 1 else 0
        key = f"<=2^{exponent}"
        buckets[key] = buckets.get(key, 0) + 1
    return {
        "count": len(values),
        "min": min(values),
        "max": max(values),
        "mean": sum(values) / len(values),
        "buckets": dict(sorted(buckets.items(), key=lambda item: len(item[0]))),
    }


def _normalized_volumes(release: "AnonymizedTable") -> list[float]:
    """Per-partition box volume as a fraction of the domain volume.

    Zero-extent domain attributes contribute no factor (no precision exists
    to lose along them), matching the certainty metric's convention.
    """
    schema = release.schema
    extents = [
        attribute.domain_extent for attribute in schema.quasi_identifiers
    ]
    volumes: list[float] = []
    for partition in release.partitions:
        fraction = 1.0
        for dimension, full in enumerate(extents):
            if full <= 0:
                continue
            fraction *= partition.box.extent(dimension) / full
        volumes.append(fraction)
    return volumes


def audit_release(
    release: "AnonymizedTable",
    k: int,
    base_k: int | None = None,
    original: "Table | None" = None,
    sequence: int = 0,
) -> dict[str, object]:
    """Build one audit record for a published release.

    Always computed: the k verdict, occupancy and MBR-volume distributions,
    and discernibility.  When the ``original`` table is supplied the record
    additionally carries the certainty penalty and the full
    :func:`repro.privacy.kanonymity.verify_release` problem list (record
    conservation, identity, box containment); without it, ``problems``
    reports only k-floor violations.
    """
    from repro.metrics.certainty import certainty_penalty
    from repro.metrics.discernibility import discernibility_penalty
    from repro.privacy.kanonymity import is_k_anonymous, verify_release

    sizes = [float(len(partition)) for partition in release.partitions]
    k_satisfied = is_k_anonymous(release, k)
    if original is not None:
        problems = verify_release(release, original, k)
        certainty: float | None = certainty_penalty(release, original)
    else:
        problems = (
            []
            if k_satisfied
            else [
                f"smallest partition holds {release.k_effective} "
                f"< k={k} records"
            ]
        )
        certainty = None
    discernibility = discernibility_penalty(release)
    record_count = release.record_count
    return {
        "schema_version": AUDIT_SCHEMA_VERSION,
        "sequence": sequence,
        "k_requested": k,
        "k_effective": release.k_effective,
        "k_satisfied": k_satisfied and not problems,
        "base_k": base_k,
        "record_count": record_count,
        "partition_count": len(release.partitions),
        "occupancy": _distribution(sizes),
        "mbr_volume": _distribution(_normalized_volumes(release)),
        "discernibility": discernibility,
        "discernibility_per_record": discernibility / record_count,
        "certainty": certainty,
        "certainty_per_record": (
            certainty / record_count if certainty is not None else None
        ),
        "problems": problems,
    }


class ReleaseAuditor:
    """Collects one audit record per release behind one enable switch.

    Publish sites guard with ``if auditor.enabled:`` and call
    :meth:`on_release`; the auditor appends the record (and raises
    :class:`AuditFailure` in strict mode when the release fails).  A
    ``reference`` table, when configured, upgrades every audit to the full
    release-vs-original verification.
    """

    __slots__ = ("enabled", "strict", "records", "_reference", "_sequence")

    def __init__(self) -> None:
        self.enabled = False
        self.strict = False
        #: Audit records in publish order.
        self.records: list[dict[str, object]] = []
        self._reference: "Table | None" = None
        self._sequence = 0

    # -- lifecycle -----------------------------------------------------------

    def enable(
        self,
        strict: bool = False,
        reference: "Table | None" = None,
        reset: bool = True,
    ) -> None:
        """Switch auditing on; ``strict`` makes any failed audit raise."""
        if reset:
            self.reset()
        self.strict = strict
        self._reference = reference
        self.enabled = True

    def disable(self) -> None:
        """Switch auditing off; collected records remain readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected record (the enable switch is untouched)."""
        self.records.clear()
        self._sequence = 0

    def set_reference(self, table: "Table | None") -> None:
        """Attach (or detach) the original table for full verification."""
        self._reference = table

    # -- auditing ------------------------------------------------------------

    def on_release(
        self,
        release: "AnonymizedTable",
        k: int,
        base_k: int | None = None,
        original: "Table | None" = None,
    ) -> dict[str, object]:
        """Audit one published release; appends and returns the record.

        ``original`` overrides the configured reference table for this one
        release.  In strict mode a failing record raises
        :class:`AuditFailure` *after* being appended, so the trail still
        shows what was rejected.
        """
        record = audit_release(
            release,
            k,
            base_k=base_k,
            original=original if original is not None else self._reference,
            sequence=self._sequence,
        )
        self._sequence += 1
        self.records.append(record)
        if self.strict and not record["k_satisfied"]:
            problems = record["problems"]
            raise AuditFailure(
                f"release {record['sequence']} failed its privacy audit: "
                + "; ".join(problems),  # type: ignore[arg-type]
                record,
            )
        return record

    # -- recovery ------------------------------------------------------------

    @property
    def sequence(self) -> int:
        """The sequence number the *next* audited release will carry."""
        return self._sequence

    def resume_from(self, sequence: int) -> None:
        """Continue numbering from a checkpoint watermark after recovery.

        Records audited before the crash are gone (they live in memory),
        but post-recovery releases keep their pre-crash sequence positions
        so the evidence trail never reuses a number.
        """
        if sequence > self._sequence:
            self._sequence = int(sequence)

    # -- reads ---------------------------------------------------------------

    @property
    def latest(self) -> dict[str, object] | None:
        return self.records[-1] if self.records else None

    def failed_records(self) -> list[dict[str, object]]:
        """Every audit record whose release did not satisfy its contract."""
        return [
            record for record in self.records if not record["k_satisfied"]
        ]
