"""repro.obs.live — live serving telemetry: endpoint, watchdog, slow-op log.

Everything :mod:`repro.obs` built so far is post-hoc: ``--profile``
snapshots and trace exports you read after a run ends.  This module is
the *live* half, built for the serving layer (:mod:`repro.serve`):

* :class:`TelemetryConfig` — the opt-in knobs a
  :class:`~repro.serve.ServiceConfig` carries;
* :class:`TelemetryServer` — a stdlib ``http.server`` thread exposing
  ``/metrics`` (Prometheus text exposition format, quantiles included)
  and ``/healthz`` (JSON) for a running service;
* :class:`WriterWatchdog` — a heartbeat the service's writer thread
  beats; health degrades ``healthy → degraded → stalled`` when work is
  pending but the heartbeat ages (an idle writer is healthy, a frozen
  one with queued writes is not);
* :class:`SlowOpLog` — a sampled structured-JSONL log of operations that
  exceeded a latency threshold, with their most recent trace spans
  attached (reuses :class:`~repro.obs.sinks.JsonLinesSink`);
* :func:`prometheus_text` / :func:`parse_prometheus_text` — the
  exposition renderer and the parser ``repro top`` and the CI smoke use.

Standard library only, like the rest of :mod:`repro.obs`.
"""

from __future__ import annotations

import json
import re
import threading
import time
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Callable, Mapping, Sequence

from repro.obs import OBS, TRACE
from repro.obs.sinks import JsonLinesSink

#: Health states, least to most severe.
HEALTHY = "healthy"
DEGRADED = "degraded"
STALLED = "stalled"

#: Numeric severity for the ``repro_serve_health`` gauge.
HEALTH_CODES = {HEALTHY: 0, DEGRADED: 1, STALLED: 2}

#: Quantiles exported for every histogram (Prometheus summary style).
EXPORT_QUANTILES = (0.5, 0.9, 0.99)

_INVALID_METRIC_CHARS = re.compile(r"[^a-zA-Z0-9_:]")

#: One exposition sample line: name, optional {labels}, value.
_SAMPLE_LINE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>[^\s]+)$"
)
_LABEL_PAIR = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')


@dataclass(frozen=True, kw_only=True)
class TelemetryConfig:
    """Opt-in live-telemetry knobs (keyword-only) for the serving layer.

    ``endpoint`` starts the HTTP thread (``port=0`` picks an ephemeral
    port; read it back from the service's ``telemetry_address``).  The
    slow-op log activates when ``slow_op_log`` names a path: any
    operation slower than ``slow_op_threshold`` seconds is recorded
    (every ``slow_op_sample``-th one, with up to ``slow_op_spans`` recent
    trace spans attached when tracing is on).  The watchdog flips health
    to ``degraded`` / ``stalled`` when writes are pending but the writer
    heartbeat is older than the respective threshold.
    """

    endpoint: bool = False
    host: str = "127.0.0.1"
    port: int = 0
    slow_op_log: str | Path | None = None
    slow_op_threshold: float = 0.25
    slow_op_sample: int = 1
    slow_op_spans: int = 16
    degraded_after: float = 1.0
    stalled_after: float = 5.0

    def __post_init__(self) -> None:
        if self.slow_op_sample < 1:
            raise ValueError("slow_op_sample must be at least 1")
        if self.degraded_after <= 0 or self.stalled_after < self.degraded_after:
            raise ValueError(
                "thresholds must satisfy 0 < degraded_after <= stalled_after"
            )


class WriterWatchdog:
    """Heartbeat-based health for a single-writer loop.

    The writer calls :meth:`beat` every time it makes progress (wakes,
    applies a group).  :meth:`assess` takes the number of pending
    operations: with nothing pending the writer is allowed to sleep
    forever (``healthy``); with work pending, health is judged by how
    long the work has been waiting *since the later of* the last beat
    and the moment the backlog was first observed — so a long-idle
    writer is not declared stalled in the instant between a submit and
    its wake-up.
    """

    def __init__(
        self, degraded_after: float = 1.0, stalled_after: float = 5.0
    ) -> None:
        if degraded_after <= 0 or stalled_after < degraded_after:
            raise ValueError(
                "thresholds must satisfy 0 < degraded_after <= stalled_after"
            )
        self._degraded_after = degraded_after
        self._stalled_after = stalled_after
        self._lock = threading.Lock()
        self._last_beat = time.monotonic()
        self._pending_since: float | None = None

    def beat(self) -> None:
        """Record writer progress (called from the writer thread)."""
        with self._lock:
            self._last_beat = time.monotonic()

    def age(self) -> float:
        """Seconds since the last beat."""
        with self._lock:
            return time.monotonic() - self._last_beat

    def assess(self, pending: int) -> str:
        """Current health given ``pending`` not-yet-applied operations."""
        now = time.monotonic()
        with self._lock:
            if pending <= 0:
                self._pending_since = None
                return HEALTHY
            if self._pending_since is None:
                self._pending_since = now
            waited = now - max(self._last_beat, self._pending_since)
        if waited >= self._stalled_after:
            return STALLED
        if waited >= self._degraded_after:
            return DEGRADED
        return HEALTHY


class SlowOpLog:
    """A sampled structured-JSONL log of over-threshold operations.

    Each entry carries the operation kind, its latency, caller-supplied
    context, and — when the process-wide tracer is enabled — the most
    recent trace spans, so a slow commit arrives with the flush sweeps
    and page I/O that made it slow.  ``sample_every=n`` keeps every n-th
    over-threshold op (the first always records), bounding log volume
    under a latency storm.
    """

    def __init__(
        self,
        path: str | Path,
        threshold: float = 0.25,
        *,
        sample_every: int = 1,
        max_spans: int = 16,
    ) -> None:
        if sample_every < 1:
            raise ValueError("sample_every must be at least 1")
        self.threshold = threshold
        self._sample_every = sample_every
        self._max_spans = max_spans
        self._sink = JsonLinesSink(path)
        self._lock = threading.Lock()
        self._seen = 0
        self.recorded = 0

    @property
    def path(self) -> Path:
        return self._sink.path

    def record(self, op: str, seconds: float, **context: object) -> bool:
        """Record one operation if it crossed the threshold and the sample.

        ``op`` names the operation class ("commit", "release"); everything
        else about it travels in ``**context`` (which may therefore carry
        a ``kind=`` key of its own, e.g. the write kind of a commit).
        Returns True when an entry was written.
        """
        if seconds < self.threshold:
            return False
        with self._lock:
            self._seen += 1
            if (self._seen - 1) % self._sample_every:
                return False
            entry: dict[str, object] = {
                "ts": time.time(),
                "op": op,
                "seconds": seconds,
                "threshold": self.threshold,
            }
            if context:
                entry["context"] = context
            if TRACE.enabled:
                entry["spans"] = [
                    {
                        "name": event.name,
                        "category": event.category,
                        "start_us": event.start_us,
                        "duration_us": event.duration_us,
                        "parent": event.parent,
                        "args": event.args,
                    }
                    for event in TRACE.events()[-self._max_spans :]
                ]
            self._sink.emit(entry)
            self.recorded += 1
        if OBS.enabled:
            OBS.count("serve.slow_ops")
        return True

    def close(self) -> None:
        self._sink.close()

    def __enter__(self) -> "SlowOpLog":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def metric_name(name: str) -> str:
    """A repro metric name in Prometheus form (``serve.commit_seconds`` →
    ``repro_serve_commit_seconds``)."""
    return "repro_" + _INVALID_METRIC_CHARS.sub("_", name)


def _format_value(value: float) -> str:
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, int):
        return str(value)
    return f"{value:.10g}"


def prometheus_text(
    snapshot: Mapping[str, object],
    extra_gauges: Mapping[str, float] | None = None,
) -> str:
    """A metrics snapshot in the Prometheus text exposition format (0.0.4).

    Counters export as ``counter``, gauges as ``gauge``, histograms as
    ``summary`` (p50/p90/p99 ``quantile`` samples plus ``_sum`` and
    ``_count``).  ``extra_gauges`` lets a caller splice in live values
    that are not in the registry — the serving layer adds its epoch,
    queue depth, backpressure and health code this way.
    """
    lines: list[str] = []
    counters: Mapping[str, int] = snapshot.get("counters") or {}  # type: ignore[assignment]
    for name, value in sorted(counters.items()):
        exported = metric_name(name)
        lines.append(f"# TYPE {exported} counter")
        lines.append(f"{exported} {_format_value(value)}")
    gauges: dict[str, float] = dict(snapshot.get("gauges") or {})  # type: ignore[arg-type]
    if extra_gauges:
        gauges.update(extra_gauges)
    for name, value in sorted(gauges.items()):
        exported = metric_name(name)
        lines.append(f"# TYPE {exported} gauge")
        lines.append(f"{exported} {_format_value(value)}")
    histograms: Mapping[str, Mapping[str, object]] = (
        snapshot.get("histograms") or {}  # type: ignore[assignment]
    )
    for name, histogram in sorted(histograms.items()):
        exported = metric_name(name)
        lines.append(f"# TYPE {exported} summary")
        for quantile in EXPORT_QUANTILES:
            key = f"p{int(quantile * 100)}"
            value = float(histogram.get(key, 0.0))  # type: ignore[arg-type]
            lines.append(
                f'{exported}{{quantile="{quantile}"}} {_format_value(value)}'
            )
        lines.append(
            f"{exported}_sum {_format_value(float(histogram.get('sum', 0.0)))}"  # type: ignore[arg-type]
        )
        lines.append(
            f"{exported}_count {_format_value(int(histogram.get('count', 0)))}"  # type: ignore[arg-type]
        )
    return "\n".join(lines) + "\n"


def _labels_text(labels: Mapping[str, str] | None) -> str:
    if not labels:
        return ""
    rendered = ",".join(
        f'{key}="{value}"' for key, value in sorted(labels.items())
    )
    return "{" + rendered + "}"


def prometheus_cluster_text(
    parent_snapshot: Mapping[str, object],
    shard_snapshots: Sequence[
        tuple[Mapping[str, str], Mapping[str, object]]
    ],
    extra_gauges: Mapping[str, float] | None = None,
) -> str:
    """A cluster exposition: the router's metrics plus labeled shard rollups.

    ``parent_snapshot`` (the router process's registry snapshot) exports
    unlabeled, exactly as :func:`prometheus_text` would.  Each entry of
    ``shard_snapshots`` is ``(labels, snapshot)`` — typically
    ``({"shard": "0"}, <worker snapshot>)`` — and its samples export with
    those labels attached, so one scrape carries every shard's ``serve.*``
    series side by side.  ``# TYPE`` headers are emitted once per metric
    name across all sources (Prometheus rejects duplicates).
    """
    sources: list[tuple[Mapping[str, str] | None, Mapping[str, object]]] = [
        (None, parent_snapshot)
    ]
    sources.extend(shard_snapshots)
    lines: list[str] = []
    typed: set[str] = set()

    def _type_line(exported: str, kind: str) -> None:
        if exported not in typed:
            typed.add(exported)
            lines.append(f"# TYPE {exported} {kind}")

    for labels, snapshot in sources:
        suffix = _labels_text(labels)
        counters: Mapping[str, int] = snapshot.get("counters") or {}  # type: ignore[assignment]
        for name, value in sorted(counters.items()):
            exported = metric_name(name)
            _type_line(exported, "counter")
            lines.append(f"{exported}{suffix} {_format_value(value)}")
        gauges: dict[str, float] = dict(snapshot.get("gauges") or {})  # type: ignore[arg-type]
        if labels is None and extra_gauges:
            gauges.update(extra_gauges)
        for name, value in sorted(gauges.items()):
            exported = metric_name(name)
            _type_line(exported, "gauge")
            lines.append(f"{exported}{suffix} {_format_value(value)}")
        histograms: Mapping[str, Mapping[str, object]] = (
            snapshot.get("histograms") or {}  # type: ignore[assignment]
        )
        for name, histogram in sorted(histograms.items()):
            exported = metric_name(name)
            _type_line(exported, "summary")
            for quantile in EXPORT_QUANTILES:
                key = f"p{int(quantile * 100)}"
                value = float(histogram.get(key, 0.0))  # type: ignore[arg-type]
                merged = dict(labels or {})
                merged["quantile"] = str(quantile)
                lines.append(
                    f"{exported}{_labels_text(merged)} {_format_value(value)}"
                )
            lines.append(
                f"{exported}_sum{suffix} "
                f"{_format_value(float(histogram.get('sum', 0.0)))}"  # type: ignore[arg-type]
            )
            lines.append(
                f"{exported}_count{suffix} "
                f"{_format_value(int(histogram.get('count', 0)))}"  # type: ignore[arg-type]
            )
    return "\n".join(lines) + "\n"


def parse_prometheus_text(
    text: str,
) -> dict[tuple[str, tuple[tuple[str, str], ...]], float]:
    """Parse Prometheus exposition text into ``{(name, labels): value}``.

    ``labels`` is a sorted tuple of ``(key, value)`` pairs (empty for
    unlabelled samples).  Raises :class:`ValueError` on any line that is
    neither a comment, blank, nor a well-formed sample — the CI smoke
    leans on this to assert the endpoint speaks the format.
    """
    samples: dict[tuple[str, tuple[tuple[str, str], ...]], float] = {}
    for number, line in enumerate(text.splitlines(), start=1):
        stripped = line.strip()
        if not stripped or stripped.startswith("#"):
            continue
        match = _SAMPLE_LINE.match(stripped)
        if match is None:
            raise ValueError(f"line {number} is not a Prometheus sample: {line!r}")
        labels_text = match.group("labels") or ""
        labels = tuple(
            sorted((key, value) for key, value in _LABEL_PAIR.findall(labels_text))
        )
        try:
            value = float(match.group("value"))
        except ValueError as error:
            raise ValueError(
                f"line {number} has a non-numeric value: {line!r}"
            ) from error
        samples[(match.group("name"), labels)] = value
    return samples


class _TelemetryHTTPServer(ThreadingHTTPServer):
    """The underlying server, carrying the content callables."""

    daemon_threads = True
    # The service restarts fast in tests; don't hold the port hostage.
    allow_reuse_address = True

    metrics_fn: Callable[[], str]
    health_fn: Callable[[], Mapping[str, object]]


class _TelemetryHandler(BaseHTTPRequestHandler):
    server: _TelemetryHTTPServer  # type: ignore[assignment]

    def do_GET(self) -> None:  # noqa: N802 - http.server API
        path = self.path.split("?", 1)[0]
        try:
            if path == "/metrics":
                if OBS.enabled:
                    OBS.count("serve.telemetry.scrapes")
                body = self.server.metrics_fn().encode("utf-8")
                self._reply(200, "text/plain; version=0.0.4; charset=utf-8", body)
            elif path in ("/healthz", "/health"):
                if OBS.enabled:
                    OBS.count("serve.telemetry.health_checks")
                document = self.server.health_fn()
                body = json.dumps(document, sort_keys=True).encode("utf-8")
                status = 503 if document.get("status") == STALLED else 200
                self._reply(status, "application/json; charset=utf-8", body)
            else:
                self._reply(404, "text/plain; charset=utf-8", b"not found\n")
        except Exception as error:  # pragma: no cover - defensive
            if OBS.enabled:
                OBS.count("serve.telemetry.errors")
            self._reply(
                500,
                "text/plain; charset=utf-8",
                f"telemetry error: {error}\n".encode("utf-8"),
            )

    def _reply(self, status: int, content_type: str, body: bytes) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: object) -> None:
        """Silence the default per-request stderr logging."""


class TelemetryServer:
    """An opt-in HTTP endpoint thread serving ``/metrics`` and ``/healthz``.

    ``metrics_fn`` returns the exposition text, ``health_fn`` the health
    document; both are called per request on a server thread, so they
    must be thread-safe (the registry snapshot and the service's health
    accessor are).  ``port=0`` binds an ephemeral port — read
    :attr:`address` after :meth:`start`.
    """

    def __init__(
        self,
        metrics_fn: Callable[[], str],
        health_fn: Callable[[], Mapping[str, object]],
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self._server = _TelemetryHTTPServer((host, port), _TelemetryHandler)
        self._server.metrics_fn = metrics_fn
        self._server.health_fn = health_fn
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """The bound (host, port) — final even when constructed with port 0."""
        host, port = self._server.server_address[:2]
        return str(host), int(port)

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> tuple[str, int]:
        """Start serving on a daemon thread; returns the bound address."""
        if self._thread is None:
            self._thread = threading.Thread(
                target=self._server.serve_forever,
                name="repro-telemetry",
                daemon=True,
            )
            self._thread.start()
        return self.address

    def stop(self) -> None:
        """Stop the server thread and release the socket.  Idempotent."""
        if self._thread is not None:
            self._server.shutdown()
            self._thread.join()
            self._thread = None
        self._server.server_close()


__all__ = [
    "DEGRADED",
    "EXPORT_QUANTILES",
    "HEALTH_CODES",
    "HEALTHY",
    "STALLED",
    "SlowOpLog",
    "TelemetryConfig",
    "TelemetryServer",
    "WriterWatchdog",
    "metric_name",
    "parse_prometheus_text",
    "prometheus_cluster_text",
    "prometheus_text",
]
