"""The metrics registry: counters, gauges, histograms, and timing spans.

The registry is the single collection point for everything the hot paths
(index, loader, storage, anonymizer) want to report.  Design constraints,
in order:

1. **Zero overhead when disabled.**  The default-constructed registry is
   disabled and every instrumented call site guards itself with a plain
   attribute check (``if OBS.enabled: ...``), so the production path pays
   one boolean test per hook — no function call, no allocation.  ``span``
   returns a shared no-op context manager when disabled.
2. **No dependencies.**  This module imports only the standard library so
   any layer of the system (including :mod:`repro.storage`, the lowest)
   can hook into it without import cycles.
3. **Cheap updates when enabled.**  Counters are dict slots; histograms
   keep streaming aggregates (count/sum/min/max) plus log-scale bucket
   counts rather than sample reservoirs, so enabling instrumentation on a
   100M-record load does not itself become the bottleneck being measured.
   The log buckets double as a quantile sketch: :meth:`Histogram.percentile`
   answers p50/p90/p99 with a bounded relative error (~4%), which is what
   the live serving telemetry (:mod:`repro.obs.live`) exposes.
4. **Thread-safe when shared.**  The serving layer updates one registry
   from its writer thread while reader threads observe release latencies
   and the telemetry endpoint snapshots concurrently; every mutation and
   snapshot happens under one internal lock.

Metric names are dotted strings (``"rtree.leaf_splits"``); the well-known
names emitted by the built-in hooks are declared in :data:`DEFAULT_METRICS`
so snapshots are schema-stable even for runs that never touch a given path
(a bulk load without a buffer pool still reports ``page.reads = 0``).
"""

from __future__ import annotations

import math
import platform
import subprocess
import sys
import threading
import time
from datetime import datetime, timezone
from typing import TYPE_CHECKING, Iterable

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.obs.sinks import Sink
    from repro.obs.trace import Tracer

#: Counter names pre-registered by :meth:`MetricsRegistry.enable` so every
#: snapshot carries the full schema of the built-in instrumentation.
DEFAULT_COUNTERS: tuple[str, ...] = (
    "rtree.inserts",
    "rtree.deletes",
    "rtree.updates",
    "rtree.leaf_splits",
    "rtree.internal_splits",
    "rtree.split_refusals",
    "rtree.dissolves",
    "rtree.reinserted_orphans",
    "rtree.mbr_recomputations",
    "buffer_tree.pushes",
    "buffer_tree.pushed_records",
    "buffer_tree.flushes",
    "buffer_tree.drains",
    "buffer_tree.drain_sweeps",
    "pool.hits",
    "pool.misses",
    "pool.evictions",
    "pool.writebacks",
    "page.reads",
    "page.writes",
    "page.allocations",
    "anonymizer.releases",
    "anonymizer.partitions",
    "kernels.keyed_records",
    "kernels.decoded_pages",
    "kernels.decoded_records",
    "kernels.group_mbrs",
    "wal.appends",
    "wal.bytes",
    "wal.fsyncs",
    "checkpoint.snapshots",
    "checkpoint.bytes",
    "recovery.replayed_ops",
    "recovery.discarded_ops",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.cache_invalidations",
    "serve.epoch_bumps",
    "serve.write_groups",
    "serve.queued_writes",
    "serve.queries",
    "serve.slow_ops",
    "serve.telemetry.scrapes",
    "serve.telemetry.health_checks",
    "serve.telemetry.errors",
    "cluster.routed_inserts",
    "cluster.routed_records",
    "cluster.routed_deletes",
    "cluster.routed_updates",
    "cluster.cross_shard_updates",
    "cluster.releases",
    "cluster.release_records",
    "cluster.cache_hits",
    "cluster.cache_misses",
    "cluster.shard_failures",
    "cluster.queries",
    "cluster.query_installs",
    "query.engine_builds",
    "query.engine_cache_hits",
    "query.count_queries",
    "query.distinct_queries",
    "query.point_lookups",
    "query.groupby_queries",
    "query.nodes_visited",
    "query.nodes_pruned",
    "query.subtrees_aggregated",
    "query.leaves_scanned",
    "query.partitions_scanned",
)

#: Gauge names pre-registered alongside the counters (point-in-time levels).
DEFAULT_GAUGES: tuple[str, ...] = (
    "serve.queue_depth",
    "serve.backpressure",
    "serve.epoch",
    "cluster.shards",
    "cluster.dead_shards",
    "cluster.epoch",
)

#: Histogram names pre-registered alongside the counters.
DEFAULT_HISTOGRAMS: tuple[str, ...] = (
    "rtree.routing_depth",
    "buffer_tree.records_per_flush",
    "serve.queue_wait_seconds",
    "serve.group_size",
    "serve.commit_seconds",
    "serve.release_seconds",
    "serve.snapshot_swap_seconds",
    "wal.fsync_seconds",
    "cluster.release_seconds",
    "cluster.query_seconds",
    "serve.query_seconds",
)

#: Everything :meth:`MetricsRegistry.enable` declares up front.
DEFAULT_METRICS: tuple[str, ...] = (
    DEFAULT_COUNTERS + DEFAULT_GAUGES + DEFAULT_HISTOGRAMS
)


#: Log-bucket resolution: sub-buckets per octave (power of two).  Bucket
#: ``i`` covers ``(2^((i-1)/8), 2^(i/8)]``; reporting a bucket's geometric
#: midpoint bounds the relative quantile error at ``2^(1/16) - 1`` (~4.4%).
_SUBBUCKETS_PER_OCTAVE = 8

_BUCKET_SCALE = _SUBBUCKETS_PER_OCTAVE  # index = ceil(log2(v) * scale)


class Histogram:
    """Streaming value distribution: aggregates plus a log-bucket sketch.

    The sketch is HDR-style: values land in logarithmically spaced buckets
    (8 per octave, so sub-microsecond fsyncs and multi-second stalls share
    one structure), and :meth:`percentile` walks the cumulative counts to
    estimate any quantile with ~4% relative error.  Non-positive values
    are tallied separately (``zeros``) so latency histograms fed exact
    zeros stay well-defined.
    """

    __slots__ = ("count", "total", "minimum", "maximum", "zeros", "buckets")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum = float("inf")
        self.maximum = float("-inf")
        #: observations with value <= 0 (kept out of the log buckets).
        self.zeros = 0
        #: bucket index -> count; value v lands in ceil(log2(v) * 8).
        self.buckets: dict[int, int] = {}

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if value < self.minimum:
            self.minimum = value
        if value > self.maximum:
            self.maximum = value
        if value <= 0.0:
            self.zeros += 1
            return
        index = math.ceil(math.log2(value) * _BUCKET_SCALE)
        self.buckets[index] = self.buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``q`` in [0, 1]) from the sketch.

        Returns 0.0 for an empty histogram.  The estimate is the geometric
        midpoint of the bucket holding the requested rank, clamped to the
        exact observed [min, max] so p0/p100 are always truthful.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.count:
            return 0.0
        rank = min(max(1, math.ceil(q * self.count)), self.count)
        if rank == self.count:
            return self.maximum  # p100 is tracked exactly
        if rank <= self.zeros:
            return self.minimum if self.minimum < 0.0 else 0.0
        remaining = rank - self.zeros
        for index in sorted(self.buckets):
            remaining -= self.buckets[index]
            if remaining <= 0:
                estimate = 2.0 ** ((index - 0.5) / _BUCKET_SCALE)
                return min(max(estimate, self.minimum), self.maximum)
        return self.maximum

    def as_dict(self) -> dict[str, object]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum if self.count else 0,
            "max": self.maximum if self.count else 0,
            "mean": self.mean,
            "p50": self.percentile(0.50),
            "p90": self.percentile(0.90),
            "p99": self.percentile(0.99),
            "buckets": self._bucket_labels(),
        }

    def _bucket_labels(self) -> dict[str, int]:
        labels: dict[str, int] = {}
        if self.zeros:
            labels["<=0"] = self.zeros
        for index, count in sorted(self.buckets.items()):
            bound = 2.0 ** (index / _BUCKET_SCALE)
            labels[f"<={bound:.4g}"] = count
        return labels


class _SpanAggregate:
    """Accumulated wall time for one span path."""

    __slots__ = ("count", "total")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0

    def as_dict(self) -> dict[str, float]:
        return {"count": self.count, "total_s": self.total}


class _Span:
    """A live timing span; nesting builds slash-joined paths.

    ``with OBS.span("bulk_load"): ... with OBS.span("drain"): ...``
    accumulates under ``"bulk_load"`` and ``"bulk_load/drain"``, so the
    snapshot exposes both the inclusive parent time and the child's share.
    """

    __slots__ = ("_registry", "_name", "_path", "_start")

    def __init__(self, registry: "MetricsRegistry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._path = name
        self._start = 0.0

    def __enter__(self) -> "_Span":
        registry = self._registry
        with registry._lock:
            stack = registry._span_stack
            stack.append(self._name)
            self._path = "/".join(stack)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        elapsed = time.perf_counter() - self._start
        registry = self._registry
        with registry._lock:
            if registry._span_stack and registry._span_stack[-1] == self._name:
                registry._span_stack.pop()
            aggregate = registry._spans.get(self._path)
            if aggregate is None:
                aggregate = registry._spans[self._path] = _SpanAggregate()
            aggregate.count += 1
            aggregate.total += elapsed


class _NullSpan:
    """The shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_SPAN = _NullSpan()


#: Cached ``git rev-parse`` result; resolved at most once per process.
_GIT_REVISION: str | None = None
_GIT_REVISION_RESOLVED = False


def _git_revision() -> str | None:
    """The current short git revision, or None outside a repository."""
    global _GIT_REVISION, _GIT_REVISION_RESOLVED
    if not _GIT_REVISION_RESOLVED:
        _GIT_REVISION_RESOLVED = True
        try:
            _GIT_REVISION = (
                subprocess.run(
                    ["git", "rev-parse", "--short", "HEAD"],
                    capture_output=True,
                    text=True,
                    timeout=5,
                    check=True,
                ).stdout.strip()
                or None
            )
        except Exception:
            _GIT_REVISION = None
    return _GIT_REVISION


def environment_block() -> dict[str, object]:
    """Machine/run metadata stamped onto every snapshot.

    Makes ``--profile-json`` trails (and the bench trajectory) from
    different machines comparable: a slower run is explainable when the
    snapshot says which interpreter, platform and revision produced it.
    """
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "pointer_bits": sys.maxsize.bit_length() + 1,
        "timestamp": datetime.now(timezone.utc).isoformat(timespec="seconds"),
        "git_revision": _git_revision(),
    }


class MetricsRegistry:
    """Counters, gauges, histograms and spans behind one enable switch.

    Instrumented call sites hold a module reference to a registry (usually
    the process-wide :data:`repro.obs.OBS`) and guard every update with
    ``if registry.enabled:`` — the registry's methods assume the guard and
    do no re-checking of their own.  Every mutation and read happens under
    one internal lock, so the serving layer's writer thread, its reader
    threads, and the live telemetry endpoint can share one registry
    without tearing counts.
    """

    __slots__ = (
        "enabled",
        "_lock",
        "_counters",
        "_gauges",
        "_histograms",
        "_spans",
        "_span_stack",
        "_declared",
        "_tracer",
    )

    def __init__(self) -> None:
        self.enabled = False
        self._lock = threading.Lock()
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}
        self._spans: dict[str, _SpanAggregate] = {}
        self._span_stack: list[str] = []
        self._declared: set[str] = set()
        self._tracer: "Tracer | None" = None

    # -- lifecycle -----------------------------------------------------------

    def enable(self, reset: bool = True, declare_defaults: bool = True) -> None:
        """Switch collection on; by default starts from a clean slate."""
        if reset:
            self.reset()
        if declare_defaults:
            self.declare(
                counters=DEFAULT_COUNTERS,
                gauges=DEFAULT_GAUGES,
                histograms=DEFAULT_HISTOGRAMS,
            )
        self.enabled = True

    def disable(self) -> None:
        """Switch collection off; collected values remain readable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every collected value (the enable switch is untouched)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()
            self._spans.clear()
            self._span_stack.clear()
            self._declared.clear()

    def declare(
        self,
        counters: Iterable[str] = (),
        gauges: Iterable[str] = (),
        histograms: Iterable[str] = (),
    ) -> None:
        """Pre-register metric names so they appear in snapshots at zero.

        Declared names are also remembered, so :meth:`undeclared` can flag
        typo'd metric names that appeared only at their emit site.
        """
        with self._lock:
            for name in counters:
                self._counters.setdefault(name, 0)
                self._declared.add(name)
            for name in gauges:
                self._gauges.setdefault(name, 0.0)
                self._declared.add(name)
            for name in histograms:
                if name not in self._histograms:
                    self._histograms[name] = Histogram()
                self._declared.add(name)

    def attach_tracer(self, tracer: "Tracer | None") -> None:
        """Attach the tracer whose drop counts snapshots should surface."""
        self._tracer = tracer

    def undeclared(self) -> dict[str, list[str]]:
        """Collected metric names that were never :meth:`declare`-d.

        Returns ``{"counters": [...], "gauges": [...], "histograms": [...]}``
        — all empty when every emit site spells a declared name.  A name
        that only exists because ``count()``/``observe()`` created it on
        first touch is exactly the typo this check catches.
        """
        with self._lock:
            return {
                "counters": sorted(
                    name for name in self._counters if name not in self._declared
                ),
                "gauges": sorted(
                    name for name in self._gauges if name not in self._declared
                ),
                "histograms": sorted(
                    name for name in self._histograms if name not in self._declared
                ),
            }

    # -- updates (call sites must guard with ``if registry.enabled``) --------

    def count(self, name: str, amount: int = 1) -> None:
        """Bump a monotonically increasing counter."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + amount

    def gauge(self, name: str, value: float) -> None:
        """Record a point-in-time level (last write wins)."""
        with self._lock:
            self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Feed one sample into a histogram."""
        with self._lock:
            histogram = self._histograms.get(name)
            if histogram is None:
                histogram = self._histograms[name] = Histogram()
            histogram.observe(value)

    def span(self, name: str) -> "_Span | _NullSpan":
        """A timing context manager; a shared no-op while disabled."""
        if not self.enabled:
            return NULL_SPAN
        return _Span(self, name)

    # -- reads ---------------------------------------------------------------

    def counter_value(self, name: str) -> int:
        with self._lock:
            return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float:
        with self._lock:
            return self._gauges.get(name, 0.0)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def percentile(self, name: str, q: float) -> float:
        """The ``q``-quantile of one histogram (0.0 when it has no data)."""
        with self._lock:
            histogram = self._histograms.get(name)
            return histogram.percentile(q) if histogram is not None else 0.0

    def snapshot(self, label: str | None = None) -> dict[str, object]:
        """A JSON-serializable copy of everything collected so far.

        Every snapshot carries an ``environment`` block (interpreter,
        platform, timestamp, git revision) so trails recorded on different
        machines remain comparable.  When a tracer is attached
        (:meth:`attach_tracer`) and has recorded events, a ``trace`` block
        reports its recorded/buffered/dropped counts — a truncated ring
        buffer is no longer silent.
        """
        with self._lock:
            snapshot: dict[str, object] = {
                "counters": dict(sorted(self._counters.items())),
                "gauges": dict(sorted(self._gauges.items())),
                "histograms": {
                    name: histogram.as_dict()
                    for name, histogram in sorted(self._histograms.items())
                },
                "spans": {
                    path: aggregate.as_dict()
                    for path, aggregate in sorted(self._spans.items())
                },
                "environment": environment_block(),
            }
        tracer = self._tracer
        if tracer is not None and (tracer.enabled or len(tracer) or tracer.dropped):
            snapshot["trace"] = {
                "recorded": tracer.dropped + len(tracer),
                "buffered": len(tracer),
                "dropped": tracer.dropped,
                "capacity": tracer.capacity,
            }
        if label is not None:
            snapshot["label"] = label
        return snapshot

    def emit(self, sink: "Sink", label: str | None = None) -> None:
        """Push the current snapshot into a sink."""
        sink.emit(self.snapshot(label))

    def render_table(self) -> str:
        """A human-readable multi-section table of the current snapshot.

        Delegates to :func:`repro.obs.render.render_snapshot`, the same
        renderer :class:`~repro.obs.sinks.TableSink` uses, so the two
        outputs can never drift apart.
        """
        from repro.obs.render import render_snapshot

        return render_snapshot(self.snapshot())
