"""Event tracing: individual timed spans in a bounded ring buffer.

The :class:`~repro.obs.registry.MetricsRegistry` answers "how many flushes
and how long in total"; this module answers "*which* flush sweep stalled
the bulk load at second three".  A :class:`Tracer` records one
:class:`TraceEvent` per instrumented span — name, arguments, start time,
duration, parent span — in a fixed-capacity ring buffer (old events are
dropped, never reallocated), and exports the buffer as Chrome/Perfetto
``traceEvents`` JSON so any run can be opened in ``chrome://tracing`` or
https://ui.perfetto.dev.

Design constraints mirror the registry's:

1. **Zero overhead when disabled.**  Hooks guard with ``if TRACE.enabled:``
   (one boolean test); :meth:`Tracer.span` hands out a shared no-op context
   manager while disabled, so unguarded ``with TRACE.span(...)`` sites pay
   one method call and one attribute check.
2. **Bounded memory.**  The buffer is a ``deque(maxlen=capacity)``; a
   100M-record load cannot OOM the tracer, it merely keeps the most recent
   ``capacity`` events (the number dropped is reported on export).
3. **Standard library only** — importable from every layer.

The process-wide instance is :data:`repro.obs.TRACE`; the CLI switches it
on for any experiment with ``--trace out.json``.
"""

from __future__ import annotations

import json
import sys
import time
from collections import deque
from pathlib import Path
from typing import IO, Iterable

#: Default ring-buffer capacity (events); ~65k complete spans.
DEFAULT_CAPACITY = 65_536


class TraceEvent:
    """One recorded span or instant: who ran, when, for how long, under whom."""

    __slots__ = ("name", "category", "start_us", "duration_us", "parent", "args")

    def __init__(
        self,
        name: str,
        category: str,
        start_us: float,
        duration_us: float,
        parent: str | None,
        args: dict[str, object] | None,
    ) -> None:
        self.name = name
        self.category = category
        self.start_us = start_us
        self.duration_us = duration_us
        self.parent = parent
        self.args = args

    @property
    def is_instant(self) -> bool:
        """True for zero-duration point events (``Tracer.instant``)."""
        return self.duration_us < 0

    def as_chrome(self) -> dict[str, object]:
        """This event in Chrome ``traceEvents`` form (``ph`` X or i)."""
        event: dict[str, object] = {
            "name": self.name,
            "cat": self.category or "repro",
            "ts": self.start_us,
            "pid": 1,
            "tid": 1,
        }
        if self.is_instant:
            event["ph"] = "i"
            event["s"] = "t"
        else:
            event["ph"] = "X"
            event["dur"] = self.duration_us
        args = dict(self.args) if self.args else {}
        if self.parent is not None:
            args["parent"] = self.parent
        if args:
            event["args"] = args
        return event


class _TraceSpan:
    """A live span; appends one event to the tracer's ring buffer on exit."""

    __slots__ = ("_tracer", "_name", "_category", "_args", "_start", "_parent")

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        category: str,
        args: dict[str, object] | None,
    ) -> None:
        self._tracer = tracer
        self._name = name
        self._category = category
        self._args = args
        self._start = 0.0
        self._parent: str | None = None

    def __enter__(self) -> "_TraceSpan":
        stack = self._tracer._stack
        self._parent = stack[-1] if stack else None
        stack.append(self._name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        end = time.perf_counter()
        tracer = self._tracer
        if tracer._stack and tracer._stack[-1] == self._name:
            tracer._stack.pop()
        tracer._record(
            TraceEvent(
                self._name,
                self._category,
                (self._start - tracer._epoch) * 1e6,
                (end - self._start) * 1e6,
                self._parent,
                self._args,
            )
        )


class _NullTraceSpan:
    """The shared do-nothing span handed out while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullTraceSpan":
        return self

    def __exit__(self, *exc_info: object) -> None:
        return None


NULL_TRACE_SPAN = _NullTraceSpan()


class Tracer:
    """A bounded event tracer behind one enable switch.

    Like the metrics registry, the tracer assumes call sites guard updates
    with ``if tracer.enabled:``; :meth:`span` performs its own check so it
    can be used unguarded in ``with`` statements.
    """

    __slots__ = ("enabled", "_events", "_stack", "_epoch", "_recorded")

    def __init__(self, capacity: int = DEFAULT_CAPACITY) -> None:
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.enabled = False
        self._events: deque[TraceEvent] = deque(maxlen=capacity)
        self._stack: list[str] = []
        self._epoch = time.perf_counter()
        self._recorded = 0

    # -- lifecycle -----------------------------------------------------------

    def enable(self, capacity: int | None = None, reset: bool = True) -> None:
        """Switch recording on; by default starts from an empty buffer."""
        if capacity is not None:
            if capacity < 1:
                raise ValueError("capacity must be at least 1")
            self._events = deque(self._events, maxlen=capacity)
        if reset:
            self.reset()
        self.enabled = True

    def disable(self) -> None:
        """Switch recording off; buffered events remain exportable."""
        self.enabled = False

    def reset(self) -> None:
        """Drop every buffered event and restart the clock."""
        self._events.clear()
        self._stack.clear()
        self._recorded = 0
        self._epoch = time.perf_counter()

    # -- recording (guard with ``if tracer.enabled`` except for span()) ------

    def span(
        self, name: str, category: str = "", **args: object
    ) -> "_TraceSpan | _NullTraceSpan":
        """A timed context manager; a shared no-op while disabled."""
        if not self.enabled:
            return NULL_TRACE_SPAN
        return _TraceSpan(self, name, category, args or None)

    def offset_us(self, timestamp: float) -> float:
        """A ``time.perf_counter()`` timestamp as epoch-relative microseconds.

        Callers injecting externally timed spans (:meth:`record_span`) use
        this to place them on the tracer's clock.
        """
        return (timestamp - self._epoch) * 1e6

    def record_span(
        self,
        name: str,
        category: str = "",
        start_us: float = 0.0,
        duration_us: float = 0.0,
        parent: str | None = None,
        args: dict[str, object] | None = None,
    ) -> None:
        """Inject one already-timed span into the buffer (guard when calling).

        The sharded bulk-anonymization engine uses this to merge spans that
        ran in *worker processes* — which cannot reach the parent's tracer —
        into the parent trace: the worker reports its wall time, the parent
        maps it onto this tracer's clock via :meth:`offset_us`.
        """
        self._record(
            TraceEvent(
                name,
                category,
                start_us,
                max(duration_us, 0.0),
                parent,
                dict(args) if args else None,
            )
        )

    def instant(self, name: str, category: str = "", **args: object) -> None:
        """Record a zero-duration point event (call sites must guard)."""
        self._record(
            TraceEvent(
                name,
                category,
                (time.perf_counter() - self._epoch) * 1e6,
                -1.0,
                self._stack[-1] if self._stack else None,
                args or None,
            )
        )

    def _record(self, event: TraceEvent) -> None:
        self._recorded += 1
        self._events.append(event)

    # -- reads ---------------------------------------------------------------

    @property
    def capacity(self) -> int:
        return self._events.maxlen or 0

    def __len__(self) -> int:
        return len(self._events)

    @property
    def dropped(self) -> int:
        """How many events the ring buffer has overwritten."""
        return self._recorded - len(self._events)

    def events(self) -> list[TraceEvent]:
        """The buffered events, oldest first."""
        return list(self._events)

    def event_names(self) -> set[str]:
        """Distinct event names currently buffered (tests, assertions)."""
        return {event.name for event in self._events}

    # -- export --------------------------------------------------------------

    def to_chrome(self) -> dict[str, object]:
        """The buffer as a Chrome/Perfetto ``traceEvents`` document.

        When the ring buffer overwrote events, the document leads with a
        metadata event (``ph`` M) naming the drop count, so a truncated
        trace announces itself inside every viewer, not just in
        ``otherData``.
        """
        events = sorted(self._events, key=lambda event: event.start_us)
        chrome_events: list[dict[str, object]] = []
        if self.dropped:
            chrome_events.append(
                {
                    "name": "tracer.dropped",
                    "ph": "M",
                    "ts": 0,
                    "pid": 1,
                    "tid": 1,
                    "cat": "__metadata",
                    "args": {
                        "dropped": self.dropped,
                        "recorded": self._recorded,
                        "capacity": self.capacity,
                    },
                }
            )
        chrome_events.extend(event.as_chrome() for event in events)
        return {
            "traceEvents": chrome_events,
            "displayTimeUnit": "ms",
            "otherData": {
                "recorded": self._recorded,
                "dropped": self.dropped,
                "capacity": self.capacity,
            },
        }

    def export_chrome(self, target: str | Path | IO[str]) -> Path | None:
        """Write the ``traceEvents`` JSON to a path or an open stream.

        Returns the path written, or None when given a stream.  Open the
        result in ``chrome://tracing`` or https://ui.perfetto.dev.  A
        trace whose ring buffer dropped events also warns on stderr — the
        exported file is the most recent window, not the whole run.
        """
        document = self.to_chrome()
        if self.dropped:
            print(
                f"warning: trace ring buffer dropped {self.dropped} of "
                f"{self._recorded} events (capacity {self.capacity}); the "
                "export holds only the most recent window",
                file=sys.stderr,
            )
        if hasattr(target, "write"):
            json.dump(document, target)  # type: ignore[arg-type]
            return None
        path = Path(target)  # type: ignore[arg-type]
        if path.parent != Path(""):
            path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(document, handle)
        return path


def validate_chrome_trace(document: dict[str, object]) -> list[str]:
    """Structural check of an exported trace; returns problem messages.

    Used by tests and the CI smoke to assert export round-trips: the
    document must carry a ``traceEvents`` list whose entries have the
    ``ph``/``ts``/``name`` keys (and ``dur`` for complete events).
    """
    problems: list[str] = []
    events = document.get("traceEvents")
    if not isinstance(events, list):
        return ["document has no traceEvents list"]
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index} is not an object")
            continue
        for key in ("ph", "ts", "name"):
            if key not in event:
                problems.append(f"event {index} is missing {key!r}")
        if event.get("ph") == "X" and "dur" not in event:
            problems.append(f"complete event {index} is missing 'dur'")
    return problems
