"""Shared experiment harness.

:mod:`repro.bench.runner` provides timing and table-printing utilities;
:mod:`repro.bench.figures` implements one driver per paper table/figure,
each returning structured rows.  Both the ``benchmarks/`` pytest-benchmark
suite and the ``repro`` CLI call these drivers, so an experiment always
means the same code path regardless of how it is invoked.
:mod:`repro.bench.regression` runs the pinned-seed core subset and
compares it against a committed baseline (``repro bench --compare``).
"""

from repro.bench.regression import (
    ComparisonReport,
    compare_bench,
    core_figures,
    load_bench,
    run_core_bench,
    write_bench,
)
from repro.bench.runner import BenchTable, Timer, environment_report

__all__ = [
    "BenchTable",
    "ComparisonReport",
    "Timer",
    "compare_bench",
    "core_figures",
    "environment_report",
    "load_bench",
    "run_core_bench",
    "write_bench",
]
