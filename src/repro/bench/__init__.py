"""Shared experiment harness.

:mod:`repro.bench.runner` provides timing and table-printing utilities;
:mod:`repro.bench.figures` implements one driver per paper table/figure,
each returning structured rows.  Both the ``benchmarks/`` pytest-benchmark
suite and the ``repro`` CLI call these drivers, so an experiment always
means the same code path regardless of how it is invoked.
"""

from repro.bench.runner import BenchTable, Timer, environment_report

__all__ = ["BenchTable", "Timer", "environment_report"]
