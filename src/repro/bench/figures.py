"""One experiment driver per paper table/figure (§5), plus ablations.

Every driver is a pure function: inputs are workload parameters (scaled
down by default so the whole suite runs on a laptop in minutes — pass
bigger numbers to approach the paper's scale), output is a
:class:`~repro.bench.runner.BenchTable` whose rows mirror the series the
paper plots.  The ``benchmarks/`` pytest suite and the ``repro`` CLI both
call these functions, so "the Figure 10 experiment" always means exactly
this code.

Protocol notes (see EXPERIMENTS.md for the full paper-vs-measured record):

* Figure 7(a) uses the paper's base-k protocol: the R+-tree is bulk-loaded
  once at base k = 5 and each requested k is served by the leaf-scan
  algorithm, so the R+-tree's per-k cost is flat; Mondrian re-runs per k.
* Quality and query experiments (Figures 10-12) build the tree at the
  requested k (leaf occupancy in ``[k, 2k-1]``), the natural reading of
  §5.3/§5.4 and the configuration that matches Mondrian's granularity.
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.baselines.mondrian import MondrianAnonymizer
from repro.bench.runner import BenchTable, Timer
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_table
from repro.core.multigranular import hierarchical_granularities, hierarchical_release
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.agrawal import AgrawalGenerator
from repro.dataset.landsend import LandsEndGenerator
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.index.bulk import hilbert_partitions, str_partitions
from repro.index.split import (
    BiasedSplitPolicy,
    ExhaustiveSplitPolicy,
    MidpointSplitPolicy,
    MinMarginSplitPolicy,
    WeightedSplitPolicy,
)
from repro.metrics.certainty import certainty_penalty
from repro.metrics.discernibility import discernibility_penalty
from repro.metrics.kl import kl_divergence
from repro.privacy.attack import intersection_attack
from repro.query.accuracy import average_error, bucket_by_selectivity, evaluate_workload
from repro.query.ranges import count_original_bulk
from repro.query.workload import random_range_workload, single_attribute_workload
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile

#: Paper's anonymity sweep for Figures 7(a), 10 and 12(a)/(c).
PAPER_K_SWEEP = (5, 10, 25, 50, 100, 250, 500, 1000)

#: Scaled-down default record counts (the paper used 4.59M / 100M).
DEFAULT_RECORDS = 20_000
DEFAULT_QUERIES = 1_000


def build_rtree(
    table: Table, k: int, pool: BufferPool[Record] | None = None, **kwargs: object
) -> RTreeAnonymizer:
    """The standard quality-experiment configuration: occupancy [k, 2k-1]."""
    anonymizer = RTreeAnonymizer(
        table,
        base_k=k,
        leaf_capacity=max(2 * k - 1, k + 1),
        pool=pool,
        **kwargs,  # type: ignore[arg-type]
    )
    anonymizer.bulk_load(table)
    return anonymizer


# ---------------------------------------------------------------------------
# Figure 7(a): bulk anonymization time, R+-tree vs top-down Mondrian
# ---------------------------------------------------------------------------


def fig7a_bulk_times(
    records: int = DEFAULT_RECORDS,
    ks: Sequence[int] = PAPER_K_SWEEP,
    base_k: int = 5,
    seed: int = 1,
) -> BenchTable:
    """Per-k anonymization cost: flat R+-tree (base-k + leaf scan) vs Mondrian.

    The R+-tree is bulk-loaded once at ``base_k``; each k's release is a
    leaf scan.  Columns report the one-time build, the per-k scan, the
    per-k total under the paper's protocol (build once, scan per k — the
    build amortizes across the sweep), and the per-k Mondrian run.
    """
    table = LandsEndGenerator(seed).generate(records)
    with Timer() as build_timer:
        anonymizer = RTreeAnonymizer(
            table, base_k=base_k, leaf_capacity=2 * base_k - 1
        )
        anonymizer.bulk_load(table)
    build = build_timer.elapsed
    amortized_build = build / len(ks)
    result = BenchTable(
        f"Figure 7(a): bulk anonymization time, {records:,} Lands End records",
        ["k", "rtree build (s)", "rtree scan (s)", "rtree per-k (s)", "mondrian (s)"],
    )
    mondrian = MondrianAnonymizer(table)
    for k in ks:
        with Timer() as scan_timer:
            anonymizer.anonymize(k)
        with Timer() as mondrian_timer:
            mondrian.anonymize(k)
        result.add(
            k,
            build,
            scan_timer.elapsed,
            amortized_build + scan_timer.elapsed,
            mondrian_timer.elapsed,
        )
    return result


def fig7a_parallel(
    records: int = DEFAULT_RECORDS,
    k: int = 5,
    workers: Sequence[int] = (1, 2, 4),
    seed: int = 1,
) -> BenchTable:
    """Figure 7(a) companion: sharded parallel bulk load across worker counts.

    Stages the Lands End table as a binary record file, then bulk-loads it
    through the sharded engine (:mod:`repro.parallel`) at each worker
    count — workers stream their own slices of the file, key and sort
    their shards, and the parent replays the stitched stream.  The first
    row (``workers=1``) is the in-process serial reference; the engine
    guarantees every worker count builds the identical index, so the
    ``digest match`` column must read ``yes`` all the way down — this is
    the serial/parallel differential in bench form, run on every
    ``repro bench`` alongside the wall-clock trail.
    """
    import tempfile
    from pathlib import Path

    from repro.core.partition import release_digest
    from repro.dataset.io import write_table

    table = LandsEndGenerator(seed).generate(records)
    result = BenchTable(
        f"Figure 7(a) companion: sharded parallel bulk load, "
        f"{records:,} Lands End records",
        ["workers", "build (s)", "speedup", "leaves", "digest match"],
    )
    with tempfile.TemporaryDirectory() as staging:
        path = str(Path(staging) / "landsend.records")
        write_table(table, path)
        reference_digest: str | None = None
        reference_seconds = 0.0
        for count in workers:
            with Timer() as timer:
                anonymizer = RTreeAnonymizer(
                    table, base_k=k, leaf_capacity=2 * k - 1
                )
                anonymizer.bulk_load_file(path, workers=count)
            digest = release_digest(anonymizer.anonymize(k))
            if reference_digest is None:
                reference_digest = digest
                reference_seconds = timer.elapsed
            result.add(
                count,
                timer.elapsed,
                reference_seconds / timer.elapsed if timer.elapsed > 0 else 0.0,
                anonymizer.leaf_count(),
                "yes" if digest == reference_digest else "NO",
            )
    return result


def fig7a_kernels(
    records: int = 1_000_000,
    scalar_sample: int = 50_000,
    dimensions: int = 4,
    bits: int = 10,
    batch_size: int = 8_192,
    seed: int = 1,
) -> BenchTable:
    """Figure 7(a) companion: columnar kernels vs the scalar hot paths.

    Measures the three per-record costs the bulk loader pays on every
    ingested record — encode to the on-disk format, decode pages back, and
    Hilbert keying — in both modes: the kernel runs the *whole* workload
    (one million records by default) while the scalar oracle runs a
    ``scalar_sample``-record slice of the same data, so the figure stays
    CI-sized without shrinking the vectorized side.  Speedups compare
    per-record cost, and the ``match`` column cross-checks the two modes'
    outputs on the shared slice — the kernels' bit-identity contract in
    bench form.
    """
    import tempfile
    from pathlib import Path

    import numpy as np

    from repro import obs
    from repro.dataset.io import RecordFileReader, RecordFileWriter
    from repro.index.hilbert import hilbert_key, quantize
    from repro.kernels.hilbert import hilbert_keys_for_points

    rng = np.random.default_rng(seed)
    top = (1 << bits) - 1
    points = rng.integers(0, top + 1, size=(records, dimensions)).astype(
        np.float64
    )
    lows = [0.0] * dimensions
    highs = [float(top)] * dimensions
    sample = min(scalar_sample, records)

    result = BenchTable(
        f"Figure 7(a) companion: columnar kernels vs scalar oracles, "
        f"{records:,} records x {dimensions} dims ({bits}-bit grid; scalar "
        f"side runs a {sample:,}-record slice)",
        [
            "stage",
            "kernel records",
            "kernel (s)",
            "scalar records",
            "scalar (s)",
            "speedup",
            "match",
        ],
    )

    def per_record_speedup(
        kernel_seconds: float, scalar_seconds: float
    ) -> float:
        kernel_cost = max(kernel_seconds, 1e-9) / records
        scalar_cost = max(scalar_seconds, 1e-9) / sample
        return scalar_cost / kernel_cost

    with tempfile.TemporaryDirectory() as staging:
        path = Path(staging) / "kernels.records"
        control = Path(staging) / "control.records"
        with Timer() as encode_kernel:
            with RecordFileWriter(path, dimensions) as writer:
                for begin in range(0, records, batch_size):
                    writer.write_batch(points[begin : begin + batch_size])
        with Timer() as encode_scalar:
            with RecordFileWriter(control, dimensions) as writer:
                for row in points[:sample].tolist():
                    writer.write_point(row)
        from repro.dataset.io import _HEADER

        record_bytes = RecordFileReader(path).record_bytes
        # The headers differ (record counts), so compare payload slices.
        begin, end = _HEADER.size, _HEADER.size + sample * record_bytes
        encode_match = (
            path.read_bytes()[begin:end] == control.read_bytes()[begin:end]
        )
        result.add(
            "encode",
            records,
            encode_kernel.elapsed,
            sample,
            encode_scalar.elapsed,
            per_record_speedup(encode_kernel.elapsed, encode_scalar.elapsed),
            "yes" if encode_match else "NO",
        )

        reader = RecordFileReader(path)
        with Timer() as decode_kernel:
            pages: list[np.ndarray] = []
            for _, page in reader.iter_point_batches(batch_size):
                pages.append(page)
        if obs.OBS.enabled:
            obs.OBS.count("kernels.decoded_pages", len(pages))
            obs.OBS.count("kernels.decoded_records", records)
        with Timer() as decode_scalar:
            scalar_rows = list(reader.iter_points(batch_size, count=sample))
        decoded = np.concatenate(pages) if len(pages) > 1 else pages[0]
        decode_match = [
            tuple(row) for row in decoded[:sample].tolist()
        ] == scalar_rows
        result.add(
            "decode",
            records,
            decode_kernel.elapsed,
            sample,
            decode_scalar.elapsed,
            per_record_speedup(decode_kernel.elapsed, decode_scalar.elapsed),
            "yes" if decode_match else "NO",
        )

        with Timer() as key_kernel:
            keys = hilbert_keys_for_points(decoded, lows, highs, bits)
        if obs.OBS.enabled:
            obs.OBS.count("kernels.keyed_records", records)
        with Timer() as key_scalar:
            scalar_keys = [
                hilbert_key(quantize(row, lows, highs, bits), bits)
                for row in scalar_rows
            ]
        result.add(
            "hilbert keying",
            records,
            key_kernel.elapsed,
            sample,
            key_scalar.elapsed,
            per_record_speedup(key_kernel.elapsed, key_scalar.elapsed),
            "yes" if keys[:sample].tolist() == scalar_keys else "NO",
        )

    result.extras = {
        "encode_speedup": per_record_speedup(
            encode_kernel.elapsed, encode_scalar.elapsed
        ),
        "decode_speedup": per_record_speedup(
            decode_kernel.elapsed, decode_scalar.elapsed
        ),
        "keying_speedup": per_record_speedup(
            key_kernel.elapsed, key_scalar.elapsed
        ),
    }
    return result


# ---------------------------------------------------------------------------
# Figure 7(b): incremental anonymization time per batch
# ---------------------------------------------------------------------------


def fig7b_incremental_times(
    batches: int = 9,
    batch_size: int = 5_000,
    k: int = 10,
    seed: int = 1,
) -> BenchTable:
    """Per-batch incremental R+-tree cost vs re-anonymizing with Mondrian.

    Mirrors §5.1: load/anonymize the first batch, then time each further
    batch insert.  The Mondrian column is the cost of the only option a
    non-incremental algorithm has — re-anonymizing everything seen so far.
    """
    generator = LandsEndGenerator(seed)
    result = BenchTable(
        f"Figure 7(b): incremental anonymization, batches of {batch_size:,} (k={k})",
        ["batch", "records total", "rtree batch (s)", "mondrian reanonymize (s)"],
    )
    first = generator.generate(batch_size, stream_offset=0)
    anonymizer = RTreeAnonymizer(first, base_k=k, leaf_capacity=2 * k - 1)
    with Timer() as timer:
        anonymizer.bulk_load(first)
    seen = Table(first.schema, list(first.records))
    with Timer() as mondrian_timer:
        MondrianAnonymizer(seen).anonymize(k)
    result.add(1, len(seen), timer.elapsed, mondrian_timer.elapsed)
    for batch_number in range(2, batches + 1):
        batch = generator.generate(
            batch_size,
            stream_offset=batch_number,
            first_rid=(batch_number - 1) * batch_size,
        )
        with Timer() as timer:
            anonymizer.insert_batch(batch)
        for record in batch:
            seen.append(record)
        with Timer() as mondrian_timer:
            MondrianAnonymizer(seen).anonymize(k)
        result.add(batch_number, len(seen), timer.elapsed, mondrian_timer.elapsed)
    return result


# ---------------------------------------------------------------------------
# Figure 8(a): scaling to large (synthetic) data sets
# ---------------------------------------------------------------------------


def fig8a_scaling(
    sizes: Sequence[int] = (10_000, 20_000, 50_000, 100_000),
    k: int = 10,
    seed: int = 3,
) -> BenchTable:
    """Anonymization wall time vs data set size (Agrawal generator).

    The paper swept 1M..100M records on disk; the shape being reproduced
    is near-linear growth, which the driver reports via the per-record
    column (flat when linear).
    """
    generator = AgrawalGenerator(seed)
    result = BenchTable(
        f"Figure 8(a): buffer-tree anonymization scaling (k={k})",
        ["records", "time (s)", "us/record"],
    )
    for size in sizes:
        table = generator.generate(size)
        with Timer() as timer:
            anonymizer = RTreeAnonymizer(table, base_k=k, leaf_capacity=2 * k - 1)
            anonymizer.bulk_load(table)
            anonymizer.anonymize(k)
        result.add(size, timer.elapsed, timer.elapsed / size * 1e6)
    return result


# ---------------------------------------------------------------------------
# Figure 8(b): explicit I/O count vs memory budget
# ---------------------------------------------------------------------------


def fig8b_io_costs(
    records: int = 50_000,
    memory_budgets: Sequence[int] | None = None,
    k: int = 10,
    seed: int = 3,
    page_bytes: int = 4_096,
) -> BenchTable:
    """Counted page I/Os of the metered bulk load as memory shrinks.

    The claim under test: halving memory raises I/O by *less* than 2x,
    because buffer-tree traffic concentrates on the upper tree levels.
    Budgets default to a 4-step halving sweep sized to the data.
    """
    generator = AgrawalGenerator(seed)
    table = generator.generate(records)
    data_bytes = records * 36
    if memory_budgets is None:
        memory_budgets = [data_bytes // 2, data_bytes // 4, data_bytes // 8, data_bytes // 16]
    result = BenchTable(
        f"Figure 8(b): I/O count vs memory, {records:,} records "
        f"({data_bytes / 1e6:.1f} MB data)",
        ["memory (KB)", "page reads", "page writes", "total I/O"],
    )
    for budget in memory_budgets:
        pagefile: PageFile[Record] = PageFile(page_bytes=page_bytes, record_bytes=36)
        pool: BufferPool[Record] = BufferPool(pagefile, budget)
        anonymizer = RTreeAnonymizer(
            table, base_k=k, leaf_capacity=2 * k - 1, pool=pool
        )
        anonymizer.bulk_load(table)
        pool.flush()
        stats = pagefile.stats
        result.add(budget // 1024, stats.reads, stats.writes, stats.total)
    return result


# ---------------------------------------------------------------------------
# Figure 9: compaction cost as a share of anonymization cost
# ---------------------------------------------------------------------------


def fig9_compaction_cost(
    sample_sizes: Sequence[int] = (5_000, 10_000, 20_000, 30_000, 45_000),
    k: int = 10,
    seed: int = 1,
) -> BenchTable:
    """Compaction time relative to Mondrian anonymization time (§5.3).

    The paper's samples were 0.5M..4.5M Lands End records; the scaled
    shape is the same: compaction stays a small, slowly-varying fraction.
    """
    result = BenchTable(
        f"Figure 9: compaction cost share (k={k})",
        ["records", "anonymize (s)", "compact (s)", "compaction %"],
    )
    generator = LandsEndGenerator(seed)
    biggest = generator.generate(max(sample_sizes))
    for size in sample_sizes:
        sample = biggest.head(size)
        with Timer() as anonymize_timer:
            release = MondrianAnonymizer(sample).anonymize(k)
        with Timer() as compact_timer:
            compact_table(release)
        total = anonymize_timer.elapsed + compact_timer.elapsed
        result.add(
            size,
            anonymize_timer.elapsed,
            compact_timer.elapsed,
            100.0 * compact_timer.elapsed / total,
        )
    return result


# ---------------------------------------------------------------------------
# Figure 10: quality comparisons (discernibility, certainty, KL)
# ---------------------------------------------------------------------------


def fig10_quality(
    records: int = DEFAULT_RECORDS,
    ks: Sequence[int] = (5, 10, 25, 50, 100),
    seed: int = 1,
) -> BenchTable:
    """Quality triple per k for R+-tree / Mondrian / Mondrian-compacted.

    Expected shape: R+-tree best on certainty and KL; Mondrian-compacted
    closes most of the gap; Mondrian-uncompacted far behind on both;
    discernibility identical for the two Mondrian variants (Figure 10(a))
    and comparable for the R+-tree.
    """
    table = LandsEndGenerator(seed).generate(records)
    mondrian = MondrianAnonymizer(table)
    result = BenchTable(
        f"Figure 10: anonymization quality, {records:,} Lands End records",
        [
            "k",
            "algorithm",
            "discernibility",
            "certainty",
            "KL divergence",
            "partitions",
        ],
    )
    for k in ks:
        releases = {
            "rtree": build_rtree(table, k).anonymize(k),
            "mondrian": mondrian.anonymize(k),
        }
        releases["mondrian+compact"] = compact_table(releases["mondrian"])
        for name, release in releases.items():
            result.add(
                k,
                name,
                discernibility_penalty(release),
                certainty_penalty(release, table),
                kl_divergence(release, table),
                len(release.partitions),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 11: incremental quality
# ---------------------------------------------------------------------------


def fig11_incremental_quality(
    batches: int = 6,
    batch_size: int = 5_000,
    k: int = 10,
    seed: int = 1,
) -> BenchTable:
    """Quality after each incremental batch vs full Mondrian re-anonymization.

    The claim: incrementally maintained R+-tree anonymizations do not decay
    — they stay at least as good as re-anonymizing from scratch.
    """
    generator = LandsEndGenerator(seed)
    result = BenchTable(
        f"Figure 11: incremental quality, batches of {batch_size:,} (k={k})",
        [
            "batch",
            "records",
            "algorithm",
            "discernibility",
            "certainty",
            "KL divergence",
        ],
    )
    first = generator.generate(batch_size, stream_offset=0)
    anonymizer = RTreeAnonymizer(first, base_k=k, leaf_capacity=2 * k - 1)
    anonymizer.bulk_load(first)
    seen = Table(first.schema, list(first.records))
    for batch_number in range(1, batches + 1):
        if batch_number > 1:
            batch = generator.generate(
                batch_size,
                stream_offset=batch_number,
                first_rid=(batch_number - 1) * batch_size,
            )
            anonymizer.insert_batch(batch)
            for record in batch:
                seen.append(record)
        incremental = anonymizer.anonymize(k)
        reanonymized = MondrianAnonymizer(seen).anonymize(k)
        for name, release in (
            ("rtree incremental", incremental),
            ("mondrian reanonymized", compact_table(reanonymized)),
        ):
            result.add(
                batch_number,
                len(seen),
                name,
                discernibility_penalty(release),
                certainty_penalty(release, seen),
                kl_divergence(release, seen),
            )
    return result


# ---------------------------------------------------------------------------
# Figure 12(a)/(b): query error vs k and vs selectivity
# ---------------------------------------------------------------------------


def fig12a_query_error(
    records: int = DEFAULT_RECORDS,
    ks: Sequence[int] = (5, 10, 25, 50, 100),
    queries: int = DEFAULT_QUERIES,
    seed: int = 1,
) -> BenchTable:
    """Average COUNT-query error per k for the three §5.4 contenders."""
    table = LandsEndGenerator(seed).generate(records)
    workload = random_range_workload(table, queries, seed=seed + 100)
    original_counts = count_original_bulk(workload, table).tolist()
    mondrian = MondrianAnonymizer(table)
    result = BenchTable(
        f"Figure 12(a): avg query error, {queries} random range queries",
        ["k", "rtree", "mondrian compacted", "mondrian uncompacted"],
    )
    for k in ks:
        rtree_release = build_rtree(table, k).anonymize(k)
        mondrian_release = mondrian.anonymize(k)
        compacted = compact_table(mondrian_release)
        errors = [
            average_error(
                evaluate_workload(workload, release, table, original_counts)
            )
            for release in (rtree_release, compacted, mondrian_release)
        ]
        result.add(k, *errors)
    return result


def fig12b_selectivity(
    records: int = DEFAULT_RECORDS,
    k: int = 10,
    queries: int = DEFAULT_QUERIES,
    seed: int = 1,
) -> BenchTable:
    """Average error per selectivity band (errors shrink as queries widen)."""
    table = LandsEndGenerator(seed).generate(records)
    workload = random_range_workload(table, queries, seed=seed + 100)
    original_counts = count_original_bulk(workload, table).tolist()
    mondrian_release = MondrianAnonymizer(table).anonymize(k)
    contenders = {
        "rtree": build_rtree(table, k).anonymize(k),
        "mondrian compacted": compact_table(mondrian_release),
        "mondrian uncompacted": mondrian_release,
    }
    result = BenchTable(
        f"Figure 12(b): query error vs selectivity (k={k})",
        ["selectivity band", "queries", "rtree", "mond compact", "mond uncompact"],
    )
    buckets = {}
    for name, release in contenders.items():
        outcomes = evaluate_workload(workload, release, table, original_counts)
        buckets[name] = bucket_by_selectivity(outcomes, len(table))
    for index, (band, count, _error) in enumerate(buckets["rtree"]):
        result.add(
            band,
            count,
            buckets["rtree"][index][2],
            buckets["mondrian compacted"][index][2],
            buckets["mondrian uncompacted"][index][2],
        )
    return result


# ---------------------------------------------------------------------------
# Figure 12(c)/(d): workload-biased splitting
# ---------------------------------------------------------------------------


def fig12c_biased(
    records: int = DEFAULT_RECORDS,
    ks: Sequence[int] = (5, 10, 25, 50, 100),
    queries: int = DEFAULT_QUERIES,
    seed: int = 1,
    attribute: str = "zipcode",
) -> BenchTable:
    """Zipcode-only workload: biased vs unbiased R+-tree, error per k."""
    table = LandsEndGenerator(seed).generate(records)
    workload = single_attribute_workload(table, attribute, queries, seed=seed + 200)
    original_counts = count_original_bulk(workload, table).tolist()
    dimension = table.schema.index_of(attribute)
    result = BenchTable(
        f"Figure 12(c): {attribute}-biased splitting, error per k",
        ["k", "unbiased rtree", "biased rtree"],
    )
    for k in ks:
        unbiased = build_rtree(table, k).anonymize(k)
        biased = build_rtree(
            table, k, split_policy=BiasedSplitPolicy([dimension])
        ).anonymize(k)
        result.add(
            k,
            average_error(evaluate_workload(workload, unbiased, table, original_counts)),
            average_error(evaluate_workload(workload, biased, table, original_counts)),
        )
    return result


def fig12d_biased_selectivity(
    records: int = DEFAULT_RECORDS,
    k: int = 10,
    queries: int = DEFAULT_QUERIES,
    seed: int = 1,
    attribute: str = "zipcode",
) -> BenchTable:
    """Biased vs unbiased error per selectivity band (differences shrink)."""
    table = LandsEndGenerator(seed).generate(records)
    workload = single_attribute_workload(table, attribute, queries, seed=seed + 200)
    original_counts = count_original_bulk(workload, table).tolist()
    dimension = table.schema.index_of(attribute)
    unbiased = build_rtree(table, k).anonymize(k)
    biased = build_rtree(
        table, k, split_policy=BiasedSplitPolicy([dimension])
    ).anonymize(k)
    unbiased_buckets = bucket_by_selectivity(
        evaluate_workload(workload, unbiased, table, original_counts), len(table)
    )
    biased_buckets = bucket_by_selectivity(
        evaluate_workload(workload, biased, table, original_counts), len(table)
    )
    result = BenchTable(
        f"Figure 12(d): biased splitting, error vs selectivity (k={k})",
        ["selectivity band", "queries", "unbiased", "biased"],
    )
    for index, (band, count, error) in enumerate(unbiased_buckets):
        result.add(band, count, error, biased_buckets[index][2])
    return result


# ---------------------------------------------------------------------------
# Ablations and extensions
# ---------------------------------------------------------------------------


def ablation_bulkload(
    records: int = DEFAULT_RECORDS, k: int = 10, seed: int = 3
) -> BenchTable:
    """Buffer-tree vs sort-based loading (§2.1's discarded alternatives).

    Compares load time and the certainty penalty of the resulting
    partitionings on the 9-attribute Agrawal data, where the paper found
    sorting-based loading weaker ("non-sorting bulk-loading techniques...
    worked better for higher dimensional data sets").
    """
    table = AgrawalGenerator(seed).generate(records)
    lows, highs = table.schema.domain_lows(), table.schema.domain_highs()
    result = BenchTable(
        f"Ablation: bulk-loading strategies, {records:,} Agrawal records (k={k})",
        ["loader", "time (s)", "certainty", "partitions"],
    )

    def to_release(groups: list[list[Record]]) -> AnonymizedTable:
        return AnonymizedTable(
            table.schema,
            [
                Partition(tuple(group), Box.from_points(r.point for r in group))
                for group in groups
            ],
        )

    with Timer() as timer:
        release = build_rtree(table, k).anonymize(k)
    result.add("buffer-tree", timer.elapsed, certainty_penalty(release, table), len(release.partitions))
    with Timer() as timer:
        release = to_release(hilbert_partitions(table.records, lows, highs, k))
    result.add("hilbert sort", timer.elapsed, certainty_penalty(release, table), len(release.partitions))
    with Timer() as timer:
        release = to_release(str_partitions(table.records, table.schema.dimensions, k))
    result.add("STR", timer.elapsed, certainty_penalty(release, table), len(release.partitions))
    return result


def ablation_split(
    records: int = DEFAULT_RECORDS, k: int = 10, seed: int = 1
) -> BenchTable:
    """Split-policy ablation: quality/time of the §2.4 design choices."""
    table = LandsEndGenerator(seed).generate(records)
    workload = random_range_workload(table, 300, seed=seed + 300)
    original_counts = count_original_bulk(workload, table).tolist()
    dimensions = table.schema.dimensions
    policies: dict[str, object] = {
        "min-margin (top-3 axes)": MinMarginSplitPolicy(),
        "min-margin (all axes)": MinMarginSplitPolicy(max_dimensions=None),
        "exhaustive": ExhaustiveSplitPolicy(),
        "midpoint (Mondrian-like)": MidpointSplitPolicy(),
        "weighted (zipcode x4)": WeightedSplitPolicy(
            [4.0] + [1.0] * (dimensions - 1)
        ),
    }
    result = BenchTable(
        f"Ablation: split policies (k={k})",
        ["policy", "build (s)", "certainty", "avg query error"],
    )
    for name, policy in policies.items():
        with Timer() as timer:
            release = build_rtree(table, k, split_policy=policy).anonymize(k)  # type: ignore[arg-type]
        result.add(
            name,
            timer.elapsed,
            certainty_penalty(release, table),
            average_error(
                evaluate_workload(workload, release, table, original_counts)
            ),
        )
    return result


def ablation_loading(
    records: int = DEFAULT_RECORDS, k: int = 10, seed: int = 3
) -> BenchTable:
    """Tuple loading vs buffer-tree loading (§2.1's explicit contrast).

    "The buffer-tree amortizes the cost of inserting a set of records by
    deferring operations on the tree.  This contrasts the tuple-loading
    approach that inserts records one by one."  Measured on wall time and,
    with the metered storage attached, on counted page I/Os under a small
    memory budget — where the amortization shows up most clearly.
    """
    from repro.index.buffer_tree import BufferTreeLoader
    from repro.index.leaf_store import PagedLeafStore
    from repro.index.rtree import RPlusTree

    table = AgrawalGenerator(seed).generate(records)
    extents = [a.domain_extent for a in table.schema.quasi_identifiers]
    result = BenchTable(
        f"Ablation: tuple loading vs buffer-tree loading (k={k})",
        ["loader", "time (s)", "page I/Os (256KB pool)"],
    )

    def metered_run(use_buffer: bool) -> tuple[float, int]:
        pagefile: PageFile[Record] = PageFile(page_bytes=4_096, record_bytes=36)
        pool: BufferPool[Record] = BufferPool(pagefile, 256 * 1_024)
        tree = RPlusTree(
            dimensions=table.schema.dimensions,
            k=k,
            leaf_capacity=2 * k - 1,
            domain_extents=extents,
            leaf_store=PagedLeafStore(pool),
        )
        with Timer() as timer:
            if use_buffer:
                BufferTreeLoader(tree, pool=pool).load(table.records)
            else:
                tree.insert_all(table.records)
        pool.flush()
        return timer.elapsed, pagefile.stats.total

    tuple_time, tuple_io = metered_run(use_buffer=False)
    buffer_time, buffer_io = metered_run(use_buffer=True)
    result.add("tuple loading (one by one)", tuple_time, tuple_io)
    result.add("buffer-tree loading", buffer_time, buffer_io)
    return result


def ablation_estimator(
    records: int = DEFAULT_RECORDS,
    k: int = 10,
    queries: int = 500,
    seed: int = 1,
) -> BenchTable:
    """Whole-partition COUNT vs the §2.3 uniform-density estimator.

    The paper notes answers "must be computed based on the set of all
    [intersecting] partitions", but that one "may choose to take the data
    distribution into consideration" and scale each partition by the
    overlapped volume fraction.  This ablation quantifies that choice on
    both absolute error (estimates can under- *or* over-count) per
    selectivity band.
    """
    from repro.query.ranges import estimate_anonymized

    table = LandsEndGenerator(seed).generate(records)
    workload = random_range_workload(table, queries, seed=seed + 500)
    original_counts = count_original_bulk(workload, table).tolist()
    release = build_rtree(table, k).anonymize(k)
    outcomes = evaluate_workload(workload, release, table, original_counts)
    estimate_errors = []
    for query, original in zip(workload, original_counts):
        estimate = estimate_anonymized(query, release)
        estimate_errors.append(abs(estimate - original) / original)
    count_errors = [abs(outcome.error) for outcome in outcomes]
    result = BenchTable(
        f"Ablation: COUNT semantics vs uniform estimator (k={k})",
        ["selectivity band", "queries", "whole-partition |err|", "uniform estimate |err|"],
    )
    edges = (0.001, 0.01, 0.05, 0.1, 0.25, 1.0)
    previous = 0.0
    for edge in edges:
        band = [
            index
            for index, original in enumerate(original_counts)
            if previous < original / len(table) <= edge
        ]
        if band:
            result.add(
                f"({previous:g}, {edge:g}]",
                len(band),
                sum(count_errors[i] for i in band) / len(band),
                sum(estimate_errors[i] for i in band) / len(band),
            )
        else:
            result.add(f"({previous:g}, {edge:g}]", 0, float("nan"), float("nan"))
        previous = edge
    return result


def ablation_weighted_certainty(
    records: int = DEFAULT_RECORDS,
    k: int = 10,
    seed: int = 1,
    weight: float = 4.0,
) -> BenchTable:
    """Weighted splits optimize the weighted certainty penalty (§2.4).

    Xu et al.'s weighted NCP says some attributes matter more; §2.4 argues
    the index should then prefer splitting them.  This ablation builds an
    unweighted and a zipcode-weighted tree and scores both under the
    *weighted* metric — the weighted tree must win there, and concede a
    little on the unweighted metric.
    """
    table = LandsEndGenerator(seed).generate(records)
    dimensions = table.schema.dimensions
    zip_dimension = table.schema.index_of("zipcode")
    weights = [weight if d == zip_dimension else 1.0 for d in range(dimensions)]
    plain = build_rtree(table, k).anonymize(k)
    weighted = build_rtree(
        table, k, split_policy=WeightedSplitPolicy(weights)
    ).anonymize(k)
    result = BenchTable(
        f"Ablation: weighted splitting vs weighted certainty (zipcode x{weight:g}, k={k})",
        ["tree", "weighted certainty", "unweighted certainty"],
    )
    for name, release in (("unweighted splits", plain), ("weighted splits", weighted)):
        result.add(
            name,
            certainty_penalty(release, table, weights=weights),
            certainty_penalty(release, table),
        )
    return result


def ablation_gridfile(
    records: int = 10_000, k: int = 10, seed: int = 1
) -> BenchTable:
    """Compaction retrofitted to a grid file (§4's MBR-free index example).

    Three-attribute Lands End projection (grid directories explode in high
    dimensions — itself part of the story): grid regions vs compacted grid
    vs the R+-tree's native MBRs, on certainty and query error.
    """
    from repro.baselines.grid import GridFileAnonymizer
    from repro.core.compaction import compact_table
    from repro.dataset.landsend import LandsEndGenerator
    from repro.dataset.schema import Attribute, Schema

    full = LandsEndGenerator(seed).generate(records)
    schema = Schema(
        (
            Attribute.numeric("zipcode", 501, 99_950),
            Attribute.numeric("price", 1, 500),
            Attribute.numeric("cost", 1, 6_000),
        )
    )
    table = Table.from_points(
        schema, [(r.point[0], r.point[4], r.point[6]) for r in full]
    )
    workload = random_range_workload(table, 300, seed=seed + 400)
    original_counts = count_original_bulk(workload, table).tolist()
    releases = {
        "grid file (regions)": GridFileAnonymizer(table).anonymize(k),
    }
    releases["grid file + compaction"] = compact_table(releases["grid file (regions)"])
    releases["rtree (native MBRs)"] = build_rtree(table, k).anonymize(k)
    result = BenchTable(
        f"Ablation: compaction retrofit on a grid file (k={k})",
        ["release", "certainty", "avg query error", "partitions"],
    )
    for name, release in releases.items():
        result.add(
            name,
            certainty_penalty(release, table),
            average_error(
                evaluate_workload(workload, release, table, original_counts)
            ),
            len(release.partitions),
        )
    return result


def ablation_index_families(
    records: int = 10_000, k: int = 10, seed: int = 1
) -> BenchTable:
    """R+-tree vs quadtree vs grid file as anonymization substrates (§6).

    The paper's closing remark — the index you would pick for querying is
    the index you would pick for anonymizing — invites this comparison on
    a clustered 3-attribute Lands End projection: data-aware R+-tree
    splits vs data-oblivious quadtree midpoints vs grid-file scales, on
    build+release time, certainty and query error.  (All three releases
    publish MBR-compacted boxes so the comparison isolates partitioning
    quality; 3 attributes because grid directories and 2^d quadtree fanout
    both explode with dimensionality.)
    """
    from repro.baselines.grid import GridFileAnonymizer
    from repro.core.compaction import compact_table
    from repro.dataset.landsend import LandsEndGenerator
    from repro.dataset.schema import Attribute, Schema
    from repro.index.quadtree import QuadTreeAnonymizer

    full = LandsEndGenerator(seed).generate(records)
    schema = Schema(
        (
            Attribute.numeric("zipcode", 501, 99_950),
            Attribute.numeric("price", 1, 500),
            Attribute.numeric("cost", 1, 6_000),
        )
    )
    table = Table.from_points(
        schema, [(r.point[0], r.point[4], r.point[6]) for r in full]
    )
    workload = random_range_workload(table, 300, seed=seed + 600)
    original_counts = count_original_bulk(workload, table).tolist()
    result = BenchTable(
        f"Ablation: index families as anonymizers (k={k})",
        ["substrate", "time (s)", "certainty", "avg query error", "partitions"],
    )

    def contender(name: str, build) -> None:  # noqa: ANN001
        with Timer() as timer:
            release = build()
        result.add(
            name,
            timer.elapsed,
            certainty_penalty(release, table),
            average_error(
                evaluate_workload(workload, release, table, original_counts)
            ),
            len(release.partitions),
        )

    contender("rtree", lambda: build_rtree(table, k).anonymize(k))
    contender(
        "quadtree (midpoints)", lambda: QuadTreeAnonymizer(table).anonymize(k)
    )
    contender(
        "grid file (compacted)",
        lambda: compact_table(GridFileAnonymizer(table).anonymize(k)),
    )
    return result


def multigranular_report(
    records: int = DEFAULT_RECORDS,
    base_k: int = 5,
    granularities: Sequence[int] = (5, 10, 25, 50),
    seed: int = 1,
) -> BenchTable:
    """Multi-granular releases: runtimes, quality and the intersection attack.

    Demonstrates §3: leaf-scan releases at several granularities from one
    base-k index, the per-release generation cost (flat in k), and the
    attack simulation confirming every record stays ≥ base-k anonymous
    against an adversary holding all the releases at once.
    """
    table = LandsEndGenerator(seed).generate(records)
    anonymizer = RTreeAnonymizer(table, base_k=base_k, leaf_capacity=2 * base_k - 1)
    anonymizer.bulk_load(table)
    result = BenchTable(
        f"Multi-granular releases from one base-{base_k} index",
        ["granularity k1", "scan (s)", "partitions", "certainty"],
    )
    releases = []
    for k1 in granularities:
        with Timer() as timer:
            release = anonymizer.anonymize(k1)
        releases.append(release)
        result.add(
            k1, timer.elapsed, len(release.partitions), certainty_penalty(release, table)
        )
    report = intersection_attack(releases)
    result.add(
        "attack: min candidates",
        float(report.min_candidates),
        report.records,
        report.mean_candidates,
    )
    hierarchy = hierarchical_granularities(anonymizer.tree)
    for level, guaranteed in hierarchy[:4]:
        release = hierarchical_release(anonymizer.tree, level, table.schema)
        result.add(
            f"hierarchical level {level}",
            float(guaranteed),
            len(release.partitions),
            certainty_penalty(release, table),
        )
    return result


def recovery_bench(
    records: int = 10_000,
    tail_ops: Sequence[int] = (0, 500, 2_000),
    k: int = 10,
    seed: int = 1,
) -> BenchTable:
    """Crash-recovery cost vs WAL tail length (durability subsystem).

    For each tail length: bulk-load a durable anonymizer, checkpoint,
    apply that many incremental inserts (the un-checkpointed tail), then
    time a cold :func:`repro.durability.recover` of the directory.
    Recovery must replay exactly the tail — the ``replayed`` column — and
    the recovered release's digest must match the pre-crash digest
    (``digest match`` reads ``yes`` all the way down).  Recovery time
    therefore grows with the tail, not the dataset: checkpoints bound the
    replay work, the durability analogue of Figure 7(b)'s amortization
    argument.
    """
    import tempfile
    from pathlib import Path

    from repro.core.partition import release_digest
    from repro.durability import DurabilityConfig, recover

    base_k = min(5, k)
    table = LandsEndGenerator(seed).generate(records + max(tail_ops))
    base = Table(table.schema, tuple(table.records[:records]))
    extra = table.records[records:]
    result = BenchTable(
        f"Recovery: snapshot restore + WAL replay, "
        f"{records:,} Lands End records",
        ["wal tail (ops)", "recover (s)", "replayed", "snapshot lsn", "digest match"],
    )
    for tail in tail_ops:
        with tempfile.TemporaryDirectory() as staging:
            directory = Path(staging) / "state"
            anonymizer = RTreeAnonymizer(
                table, base_k=base_k, durability=DurabilityConfig(directory)
            )
            anonymizer.bulk_load(base)
            anonymizer.checkpoint()
            for record in extra[:tail]:
                anonymizer.insert(record)
            digest = release_digest(anonymizer.anonymize(k))
            anonymizer.close()
            with Timer() as timer:
                outcome = recover(directory)
            recovered = release_digest(outcome.anonymizer.anonymize(k))
            outcome.anonymizer.close()
            result.add(
                tail,
                timer.elapsed,
                outcome.replayed_ops,
                outcome.snapshot_lsn,
                "yes" if recovered == digest else "NO",
            )
    return result


def serve_bench(
    records: int = 10_000,
    write_rounds: int = 10,
    write_batch: int = 200,
    reads_per_round: int = 20,
    ks: Sequence[int] = (10, 25, 50),
    base_k: int = 5,
    seed: int = 1,
    repeats: int = 3,
) -> BenchTable:
    """Mixed read/write serving throughput, cached vs uncached (repro.serve).

    Drives one :class:`~repro.serve.AnonymizerService` through alternating
    rounds of queued writes and release reads: each round submits one
    ``write_batch``-record group through the write queue, waits for the
    group commit (``barrier``), then serves ``reads_per_round`` releases
    cycling over ``ks``.  With the cache on, only the first read per k per
    round recomputes (the epoch bump invalidated the previous round's
    snapshots) and the rest are cache hits; with it off every read pays
    the full leaf-scan under the write lock.  The spread between the two
    ``reads/s`` rows is the serving layer's contribution.

    Single-threaded by design: each round's group is submitted alone and
    barriered, so the coalescing, epoch and cache counters are
    deterministic and can sit in the bench-regression trail.

    The third row repeats the cached run with the live telemetry endpoint
    up: the timed window pays every per-operation telemetry cost (the
    endpoint thread, watchdog heartbeats, queue/backpressure gauges, the
    extra latency histograms), and the ``/metrics`` scrape path is then
    exercised once per round *outside* the timer — a real scraper fires
    every few seconds, so folding even one scrape into a
    milliseconds-long bench window would model a scrape rate of hundreds
    per second, which no deployment has.  The ``telemetry_overhead``
    extra is the fractional reads/s lost versus the unobserved cached
    run; the committed trail asserts it stays affordable.

    Every variant runs ``repeats`` times (a fresh engine and service per
    repeat), and each write/read round is timed individually; a
    variant's reported wall clock is the **sum of per-round minima**
    across its repeats.  Whole-window best-of cannot resolve a
    few-percent delta on windows this short — one scheduler stall or
    cgroup throttle episode (tens of ms, i.e. a double-digit percentage
    of the window) poisons an entire repeat, and with a handful of
    repeats some variant usually eats one in every repeat.  Per-round
    minima reject those additive stalls at round granularity: each round
    only needs *one* clean sample among the repeats.  The repeats are
    also **interleaved and rotated** (one repeat of every variant per
    pass, starting position shifting each pass) so machine-level drift
    lands on all variants instead of biasing a block.  The obs counters
    simply accumulate ``repeats`` identical runs, so they stay
    deterministic in the trail.
    """
    import urllib.request

    from repro import obs
    from repro.obs.live import TelemetryConfig
    from repro.serve import AnonymizerService, ServiceConfig

    # The latency-quantile extras need the registry; collect locally when
    # the caller (CLI without --profile) has not already enabled it.
    owns_obs = not obs.OBS.enabled
    if owns_obs:
        obs.enable()

    table = LandsEndGenerator(seed).generate(
        records + write_rounds * write_batch
    )
    base = Table(table.schema, tuple(table.records[:records]))
    extra = table.records[records:]
    result = BenchTable(
        f"Serving under write load: {records:,} base records, "
        f"{write_rounds} rounds of {write_batch} queued inserts",
        [
            "cache",
            "reads",
            "writes",
            "reads/s",
            "writes/s",
            "cache hits",
            "cache misses",
        ],
    )
    reads_per_second: dict[str, float] = {}
    variants = (
        ("on", True, None),
        ("off", False, None),
        ("on+telemetry", True, TelemetryConfig(endpoint=True)),
    )
    round_minima = {
        label: [float("inf")] * write_rounds for label, _, _ in variants
    }
    observed: dict[str, tuple[int, int, int, int]] = {}
    uncached, paired = variants[1], (variants[0], variants[2])
    for pass_index in range(max(1, repeats)):
        # Each pass runs the heavy uncached variant first (it absorbs
        # any cross-pass allocator/GC churn), then the cached pair whose
        # delta is the telemetry overhead — back to back, swapping their
        # internal order every pass so neither always enjoys the warmer
        # position.
        pair = paired if pass_index % 2 == 0 else paired[::-1]
        for label, cached, telemetry in (uncached, *pair):
            engine = RTreeAnonymizer(table, base_k=base_k)
            with AnonymizerService(
                engine, ServiceConfig(cache_releases=cached, telemetry=telemetry)
            ) as service:
                service.load(base)
                reads = writes = 0
                minima = round_minima[label]
                for round_index in range(write_rounds):
                    start = round_index * write_batch
                    with Timer() as timer:
                        service.submit_insert_batch(
                            extra[start : start + write_batch]
                        )
                        service.barrier()
                        writes += write_batch
                        for read_index in range(reads_per_round):
                            service.release(ks[read_index % len(ks)])
                            reads += 1
                    minima[round_index] = min(
                        minima[round_index], timer.elapsed
                    )
                if telemetry is not None:
                    for _ in range(write_rounds):  # deterministic scrape count
                        with urllib.request.urlopen(
                            service.telemetry_url + "/metrics", timeout=5
                        ) as response:
                            response.read()
                stats = service.cache.stats
                observed[label] = (reads, writes, stats.hits, stats.misses)
    for label, _, _ in variants:
        reads, writes, hits, misses = observed[label]
        best_elapsed = sum(round_minima[label])
        reads_per_second[label] = reads / best_elapsed
        result.add(
            label,
            reads,
            writes,
            reads / best_elapsed,
            writes / best_elapsed,
            hits,
            misses,
        )
    result.extras = {
        "telemetry_off_reads_per_s": reads_per_second["on"],
        "telemetry_on_reads_per_s": reads_per_second["on+telemetry"],
        "telemetry_overhead": 1.0
        - reads_per_second["on+telemetry"] / reads_per_second["on"],
    }
    # The serving latency sketches, in seconds (wal.fsync stays 0 here:
    # the bench service runs without a durability directory).
    for metric, short in (
        ("serve.queue_wait_seconds", "queue_wait"),
        ("serve.commit_seconds", "commit"),
        ("serve.release_seconds", "release"),
        ("wal.fsync_seconds", "wal_fsync"),
    ):
        for quantile in (0.5, 0.9, 0.99):
            result.extras[f"{short}_p{int(quantile * 100)}"] = obs.OBS.percentile(
                metric, quantile
            )
    if owns_obs:
        obs.disable()
        obs.reset()
    return result


def serve_cluster_bench(
    records: int = 8_000,
    write_rounds: int = 8,
    write_batch: int = 400,
    reads_per_round: int = 4,
    k: int = 25,
    base_k: int = 5,
    shard_counts: Sequence[int] = (1, 2, 4),
    seed: int = 1,
    repeats: int = 3,
) -> BenchTable:
    """Write-throughput scaling of the sharded serving cluster (repro.cluster).

    Drives the *same* mixed workload — ``write_rounds`` rounds of one
    routed ``write_batch`` insert group, a barrier, then
    ``reads_per_round`` ``"hilbert"``-strategy releases — against a
    shards=1 single-writer :class:`~repro.serve.AnonymizerService` and a
    :class:`~repro.cluster.ShardedCluster` at each entry of
    ``shard_counts`` beyond 1.  The single-writer applies every group on
    one thread; the cluster fans the batch out to one worker process per
    contiguous Hilbert-key range, so its group commits proceed in
    parallel.  Every variant's final release digest is cross-checked
    against the single-writer's (the ``digest`` column) — the scaling
    must not cost bit-identity.

    Timing protocol matches :func:`serve_bench`: per-round minima summed
    across interleaved repeats.  ``speedup_<n>`` extras report each
    cluster width's write throughput relative to shards=1, and
    ``cpu_count`` records how many cores the host actually had — on a
    single-core box the workers time-slice one CPU and the speedup
    ceiling is 1.0 regardless of shard count.
    """
    import os

    from repro import obs
    from repro.cluster import ClusterConfig, ShardedCluster
    from repro.serve import AnonymizerService, ServiceConfig

    owns_obs = not obs.OBS.enabled
    if owns_obs:
        obs.enable()

    table = LandsEndGenerator(seed).generate(
        records + write_rounds * write_batch
    )
    base = Table(table.schema, tuple(table.records[:records]))
    extra = table.records[records:]
    result = BenchTable(
        f"Sharded serving cluster: {records:,} base records, "
        f"{write_rounds} rounds of {write_batch} routed inserts, "
        f"k={k} releases",
        ["shards", "writes", "reads", "writes/s", "reads/s", "digest"],
    )
    round_minima = {
        shards: [float("inf")] * write_rounds for shards in shard_counts
    }
    digests: dict[int, str] = {}
    counts: dict[int, tuple[int, int]] = {}
    for pass_index in range(max(1, repeats)):
        # Rotate the starting variant so machine drift lands evenly.
        order = list(shard_counts)
        rotation = pass_index % len(order)
        order = order[rotation:] + order[:rotation]
        for shards in order:
            if shards == 1:
                service = AnonymizerService(
                    RTreeAnonymizer(table, base_k=base_k), ServiceConfig()
                )
            else:
                service = ShardedCluster(
                    base, ClusterConfig(shards=shards), base_k=base_k
                )
            try:
                service.load(base)
                reads = writes = 0
                minima = round_minima[shards]
                for round_index in range(write_rounds):
                    start = round_index * write_batch
                    with Timer() as timer:
                        service.submit_insert_batch(
                            extra[start : start + write_batch]
                        )
                        service.barrier()
                        writes += write_batch
                        for _ in range(reads_per_round):
                            service.release(k, strategy="hilbert")
                            reads += 1
                    minima[round_index] = min(
                        minima[round_index], timer.elapsed
                    )
                digests[shards] = service.release(
                    k, strategy="hilbert"
                ).digest
                counts[shards] = (writes, reads)
            finally:
                service.close()
    reference = digests[shard_counts[0]]
    writes_per_second: dict[int, float] = {}
    for shards in shard_counts:
        writes, reads = counts[shards]
        best_elapsed = sum(round_minima[shards])
        writes_per_second[shards] = writes / best_elapsed
        result.add(
            shards,
            writes,
            reads,
            writes / best_elapsed,
            reads / best_elapsed,
            "match" if digests[shards] == reference else "MISMATCH",
        )
    result.extras = {
        "cpu_count": float(os.cpu_count() or 1),
        "digests_match": float(
            all(digest == reference for digest in digests.values())
        ),
    }
    for shards in shard_counts[1:]:
        result.extras[f"speedup_{shards}"] = (
            writes_per_second[shards] / writes_per_second[shard_counts[0]]
        )
    if owns_obs:
        obs.disable()
        obs.reset()
    return result


def query_bench(
    records: int = 10_000,
    queries: int = 400,
    ks: Sequence[int] = (10, 25, 50),
    base_k: int = 5,
    reader_counts: Sequence[int] = (4, 8, 16),
    write_batch: int = 200,
    reader_batch: int = 20,
    seed: int = 1,
) -> BenchTable:
    """Serving-side query throughput and accuracy-vs-k (repro.query.engine).

    Two phases against one :class:`~repro.serve.AnonymizerService`:

    **Phase A (deterministic, metered).**  Single-threaded: for each k,
    answer the whole random-range workload through
    ``service.query`` (index pushdown), cross-check every count against
    the scalar leaf-scan oracle (the ``oracle`` column must read
    ``match``), and report the §5.4 accuracy (average normalized error
    falls as k falls) alongside the pushdown counters — ``pruned`` is the
    number of subtrees discarded without being visited and ``aggregated``
    the number answered from cached subtree totals without descending;
    both being positive is the proof the engine is *not* doing a
    disguised leaf scan.  Everything in this phase is a pure function of
    the seed, so the ``query.*`` counters sit in the bench-regression
    trail.

    **Phase B (throughput, unmetered).**  For each entry of
    ``reader_counts``, that many reader threads split the workload and
    answer it in ``reader_batch``-query calls at the largest k while one
    writer thread continuously feeds ``write_batch``-record insert groups
    through the write queue.  Each write bumps the epoch, so readers pay
    realistic snapshot recomputes and engine rebuilds mid-flight; the
    ``queries/s`` column is end-to-end wall clock.  The phase runs with
    the metrics registry *disabled*: its counter values depend on
    scheduler interleaving (how many rebuilds each reader happens to
    trigger), which would poison the deterministic trail — the same
    reasoning that keeps :func:`serve_bench`'s scrapes outside its timed
    window.
    """
    import itertools
    import threading

    from repro import obs
    from repro.query.ranges import count_anonymized_bulk
    from repro.serve import AnonymizerService, ServiceConfig

    # Counter columns need the registry; collect locally when the caller
    # (CLI without --profile) has not already enabled it.
    owns_obs = not obs.OBS.enabled
    if owns_obs:
        obs.enable()

    table = LandsEndGenerator(seed).generate(records + 8 * write_batch)
    base = Table(table.schema, tuple(table.records[:records]))
    feed = table.records[records:]
    workload = random_range_workload(base, queries, seed=seed + 100)
    original_counts = count_original_bulk(workload, base)
    result = BenchTable(
        f"Query engine: {records:,} records, {queries} range-COUNT queries, "
        f"pushdown vs live writer",
        [
            "workload",
            "queries",
            "avg error",
            "pruned",
            "aggregated",
            "oracle",
            "queries/s",
        ],
    )
    service = AnonymizerService(
        RTreeAnonymizer(table, base_k=base_k), ServiceConfig()
    )
    extras: dict[str, float] = {}
    try:
        service.load(base)
        all_match = True
        for k in ks:
            before_pruned = obs.OBS.counter_value("query.nodes_pruned")
            before_aggregated = obs.OBS.counter_value("query.subtrees_aggregated")
            answered = service.query(workload, k=k)  # cold: release + build
            with Timer() as timer:
                warm = service.query(workload, k=k)
            pruned = obs.OBS.counter_value("query.nodes_pruned") - before_pruned
            aggregated = (
                obs.OBS.counter_value("query.subtrees_aggregated")
                - before_aggregated
            )
            snapshot = service.release(k)
            oracle = count_anonymized_bulk(workload, snapshot.table)
            matches = (
                answered.digest == snapshot.digest
                and list(answered.values) == list(oracle)
                and warm.values == answered.values
            )
            all_match = all_match and matches
            errors = [
                (anonymized - original) / original
                for anonymized, original in zip(answered.values, original_counts)
            ]
            result.add(
                f"k={k} pushdown",
                len(workload),
                sum(errors) / len(errors),
                pruned,
                aggregated,
                "match" if matches else "MISMATCH",
                len(workload) / timer.elapsed,
            )
        extras["oracle_match"] = float(all_match)
        extras["nodes_pruned"] = float(obs.OBS.counter_value("query.nodes_pruned"))
        extras["engine_builds"] = float(
            obs.OBS.counter_value("query.engine_builds")
        )

        # Phase B: interleaving-dependent counters must not reach the
        # trail; switch collection off (values stay readable) and restore
        # without resetting afterwards.
        was_enabled = obs.OBS.enabled
        if was_enabled:
            obs.OBS.disable()
        try:
            top_k = ks[-1]
            rids = itertools.count(len(table))
            feed_points = itertools.cycle(feed)
            for readers in reader_counts:
                stop = threading.Event()

                def _writer() -> None:
                    while not stop.is_set():
                        batch = [
                            Record(next(rids), point.point, point.sensitive)
                            for point in itertools.islice(
                                feed_points, write_batch
                            )
                        ]
                        service.submit_insert_batch(batch)
                        service.barrier()

                per_reader = [
                    workload[index::readers] for index in range(readers)
                ]
                answered_counts = [0] * readers

                def _reader(index: int) -> None:
                    mine = per_reader[index]
                    for start in range(0, len(mine), reader_batch):
                        got = service.query(
                            mine[start : start + reader_batch], k=top_k
                        )
                        answered_counts[index] += len(got)

                writer = threading.Thread(
                    target=_writer, name="query-bench-writer", daemon=True
                )
                threads = [
                    threading.Thread(
                        target=_reader, args=(index,), daemon=True
                    )
                    for index in range(readers)
                ]
                with Timer() as timer:
                    writer.start()
                    for thread in threads:
                        thread.start()
                    for thread in threads:
                        thread.join()
                    stop.set()
                writer.join()
                answered_total = sum(answered_counts)
                throughput = answered_total / timer.elapsed
                extras[f"qps_{readers}"] = throughput
                result.add(
                    f"{readers} readers vs writer",
                    answered_total,
                    "-",
                    "-",
                    "-",
                    "-",
                    throughput,
                )
        finally:
            if was_enabled:
                obs.OBS.enable(reset=False, declare_defaults=False)
    finally:
        service.close()
    result.extras = extras
    if owns_obs:
        obs.disable()
        obs.reset()
    return result


#: Registry used by the CLI: name -> driver.
DRIVERS: dict[str, Callable[..., BenchTable]] = {
    "fig7a": fig7a_bulk_times,
    "fig7a_parallel": fig7a_parallel,
    "fig7a_kernels": fig7a_kernels,
    "fig7b": fig7b_incremental_times,
    "fig8a": fig8a_scaling,
    "fig8b": fig8b_io_costs,
    "fig9": fig9_compaction_cost,
    "fig10": fig10_quality,
    "fig11": fig11_incremental_quality,
    "fig12a": fig12a_query_error,
    "fig12b": fig12b_selectivity,
    "fig12c": fig12c_biased,
    "fig12d": fig12d_biased_selectivity,
    "ablation-bulkload": ablation_bulkload,
    "ablation-split": ablation_split,
    "ablation-gridfile": ablation_gridfile,
    "ablation-loading": ablation_loading,
    "ablation-estimator": ablation_estimator,
    "ablation-weighted": ablation_weighted_certainty,
    "ablation-indexes": ablation_index_families,
    "multigranular": multigranular_report,
    "recovery": recovery_bench,
    "serve": serve_bench,
    "serve_cluster": serve_cluster_bench,
    "query_bench": query_bench,
}
