"""The benchmark-regression trail: pinned core runs and baseline comparison.

``repro bench`` runs a pinned-seed subset of the paper figures — bulk-load
time, scaling, metered I/O, quality — with the :mod:`repro.obs`
instrumentation on, and writes one canonical JSON document
(``BENCH_core.json`` by default) holding, per figure:

* the wall-clock seconds of the run,
* the key hot-path counters (splits, flushes, page I/O, partitions) —
  deterministic under the pinned seeds, so they double as a cheap
  correctness fingerprint,
* the exact workload configuration, and

plus one environment block (interpreter, platform, timestamp, git rev) for
the whole run.  ``repro bench --compare BENCH_core.json`` re-runs the same
set and prints a per-figure regression report: wall-clock ratios against a
configurable tolerance (timings are machine-dependent, so the default is
generous) and counter drift against a tight tolerance (the counters should
not move at all unless the algorithm changed).

The committed ``BENCH_core.json`` at the repository root is the trail's
first entry; CI re-runs ``repro bench --quick`` on every push and fails
when a figure regresses beyond tolerance.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Sequence

from repro.bench.runner import Timer

#: Version stamp of the bench document; bump on any key change.
BENCH_SCHEMA_VERSION = 1

#: Default output path — the repo-root trail entry.
DEFAULT_BENCH_PATH = "BENCH_core.json"

#: Wall-clock tolerance: current may take up to (1 + tol) x baseline.
#: Generous because absolute timings move with the machine; CI passes a
#: larger value still (cross-machine comparison).
DEFAULT_TIME_TOLERANCE = 1.0

#: Counter tolerance: relative drift allowed on the deterministic counters.
DEFAULT_COUNTER_TOLERANCE = 0.02

#: The obs counters recorded per figure — deterministic under pinned seeds.
KEY_COUNTERS: tuple[str, ...] = (
    "rtree.inserts",
    "rtree.leaf_splits",
    "rtree.internal_splits",
    "buffer_tree.flushes",
    "buffer_tree.pushed_records",
    "page.reads",
    "page.writes",
    "anonymizer.releases",
    "anonymizer.partitions",
    "kernels.keyed_records",
    "kernels.decoded_pages",
    "kernels.decoded_records",
    "kernels.group_mbrs",
    "parallel.shards",
    "parallel.shard_records",
    "wal.appends",
    "wal.fsyncs",
    "checkpoint.snapshots",
    "recovery.replayed_ops",
    "recovery.discarded_ops",
    "serve.cache_hits",
    "serve.cache_misses",
    "serve.epoch_bumps",
    "serve.write_groups",
    "serve.telemetry.scrapes",
    "serve.slow_ops",
    "cluster.routed_records",
    "cluster.releases",
    "cluster.cache_misses",
    # The query-pushdown family: query_bench meters its deterministic
    # phase only (the concurrent phase runs with the registry disabled).
    "query.engine_builds",
    "query.count_queries",
    "query.nodes_pruned",
    "query.subtrees_aggregated",
    "query.leaves_scanned",
    "serve.queries",
)


def core_figures(quick: bool = False) -> list[tuple[str, dict[str, object]]]:
    """The pinned-seed core set: (figure id, driver kwargs) pairs.

    ``quick`` shrinks every workload to CI-smoke size (seconds, not
    minutes); the committed baseline is a quick run so CI compares
    like-for-like.  Both modes pin every seed and every sweep, so two runs
    of the same mode produce identical counters.
    """
    if quick:
        return [
            ("fig7a", {"records": 4_000, "ks": (5, 25, 100), "seed": 1}),
            ("fig7a_parallel", {"records": 4_000, "workers": (1, 2), "seed": 1}),
            (
                "fig7a_kernels",
                # The kernel side keeps the full million records even in
                # quick mode (it is the point of the figure and costs only
                # seconds); the scalar oracle slice shrinks instead.
                {"records": 1_000_000, "scalar_sample": 20_000, "seed": 1},
            ),
            ("fig8a", {"sizes": (2_000, 4_000), "k": 10, "seed": 3}),
            ("fig8b", {"records": 4_000, "k": 10, "seed": 3}),
            ("fig10", {"records": 4_000, "ks": (10,), "seed": 1}),
            ("recovery", {"records": 2_000, "tail_ops": (0, 200), "k": 10, "seed": 1}),
            (
                "serve",
                {
                    # Windows this short (tens of ms) sit in heavy scheduler
                    # noise; only the best-of-5 minimum resolves the
                    # telemetry-overhead delta.
                    "records": 2_000,
                    "write_rounds": 6,
                    "write_batch": 100,
                    "reads_per_round": 25,
                    "ks": (10, 25),
                    "seed": 1,
                    "repeats": 5,
                },
            ),
            (
                "serve_cluster",
                {
                    "records": 2_000,
                    "write_rounds": 4,
                    "write_batch": 100,
                    "reads_per_round": 2,
                    "k": 25,
                    "shard_counts": (1, 2),
                    "seed": 1,
                    "repeats": 3,
                },
            ),
            (
                "query_bench",
                {
                    "records": 2_000,
                    "queries": 200,
                    "ks": (10, 25),
                    "reader_counts": (4, 8, 16),
                    "write_batch": 100,
                    "seed": 1,
                },
            ),
        ]
    return [
        ("fig7a", {"records": 20_000, "ks": (5, 25, 100), "seed": 1}),
        ("fig7a_parallel", {"records": 20_000, "workers": (1, 2, 4), "seed": 1}),
        (
            "fig7a_kernels",
            {"records": 1_000_000, "scalar_sample": 100_000, "seed": 1},
        ),
        ("fig8a", {"sizes": (10_000, 20_000), "k": 10, "seed": 3}),
        ("fig8b", {"records": 20_000, "k": 10, "seed": 3}),
        ("fig10", {"records": 20_000, "ks": (10, 50), "seed": 1}),
        ("recovery", {"records": 10_000, "tail_ops": (0, 500, 2_000), "k": 10, "seed": 1}),
        (
            "serve",
            {
                "records": 10_000,
                "write_rounds": 10,
                "write_batch": 200,
                "reads_per_round": 20,
                "ks": (10, 25, 50),
                "seed": 1,
            },
        ),
        (
            "serve_cluster",
            {
                "records": 8_000,
                "write_rounds": 8,
                "write_batch": 400,
                "reads_per_round": 4,
                "k": 25,
                "shard_counts": (1, 2, 4),
                "seed": 1,
            },
        ),
        (
            "query_bench",
            {
                "records": 10_000,
                "queries": 400,
                "ks": (10, 25, 50),
                "reader_counts": (4, 8, 16),
                "write_batch": 200,
                "seed": 1,
            },
        ),
    ]


def run_core_bench(
    quick: bool = False,
    figures: Sequence[tuple[str, Mapping[str, object]]] | None = None,
) -> dict[str, object]:
    """Run the core set instrumented and return the bench document.

    Toggles the process-wide :data:`repro.obs.OBS` registry around each
    figure (each figure's counters are collected in isolation); leaves it
    disabled and reset afterwards.
    """
    from repro import obs
    from repro.bench.figures import DRIVERS

    if figures is None:
        figures = core_figures(quick)
    results: dict[str, object] = {}
    for name, config in figures:
        driver = DRIVERS[name]
        obs.enable()
        try:
            with Timer() as timer:
                table = driver(**config)  # type: ignore[arg-type]
            counters = {
                counter: obs.OBS.counter_value(counter)
                for counter in KEY_COUNTERS
            }
        finally:
            obs.disable()
            obs.reset()
        entry: dict[str, object] = {
            # Round-trip through JSON so in-memory configs (tuples) compare
            # equal to configs loaded back from a baseline file (lists).
            "config": json.loads(json.dumps(config)),
            "seconds": timer.elapsed,
            "counters": counters,
        }
        extras = getattr(table, "extras", None)
        if extras:
            # Derived scalars (e.g. the serving figure's telemetry-overhead
            # ratio) ride along for the record; compare_bench ignores keys
            # it does not know, so extras never fail a baseline.
            entry["extras"] = json.loads(json.dumps(extras))
        results[name] = entry
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "mode": "quick" if quick else "core",
        "environment": obs.environment_block(),
        "figures": results,
    }


def write_bench(document: Mapping[str, object], path: str | Path) -> Path:
    """Write a bench document as stable, diff-friendly JSON."""
    target = Path(path)
    if target.parent != Path(""):
        target.parent.mkdir(parents=True, exist_ok=True)
    with open(target, "w", encoding="utf-8") as handle:
        json.dump(document, handle, indent=2, sort_keys=True)
        handle.write("\n")
    return target


def load_bench(path: str | Path) -> dict[str, object]:
    """Load a bench document, validating its schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    version = document.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"{path} has bench schema version {version!r}, "
            f"expected {BENCH_SCHEMA_VERSION}"
        )
    return document


@dataclass
class FigureComparison:
    """One figure's verdict in a regression report."""

    name: str
    #: "ok", "regression", "missing", "config-mismatch" or "new".
    status: str
    messages: list[str] = field(default_factory=list)
    time_ratio: float | None = None

    @property
    def failed(self) -> bool:
        return self.status in ("regression", "missing", "config-mismatch")


@dataclass
class ComparisonReport:
    """The full per-figure regression report of current vs baseline."""

    figures: list[FigureComparison]
    time_tolerance: float
    counter_tolerance: float

    @property
    def ok(self) -> bool:
        return not any(figure.failed for figure in self.figures)

    @property
    def regressions(self) -> list[FigureComparison]:
        return [figure for figure in self.figures if figure.failed]

    def render(self) -> str:
        lines = [
            "== bench regression report "
            f"(time tolerance {self.time_tolerance:g}, "
            f"counter tolerance {self.counter_tolerance:g}) =="
        ]
        for figure in self.figures:
            ratio = (
                f" ({figure.time_ratio:.2f}x baseline)"
                if figure.time_ratio is not None
                else ""
            )
            lines.append(f"  {figure.name}: {figure.status}{ratio}")
            for message in figure.messages:
                lines.append(f"    - {message}")
        verdict = "PASS" if self.ok else (
            f"FAIL ({len(self.regressions)} figure(s) regressed)"
        )
        lines.append(f"  verdict: {verdict}")
        return "\n".join(lines)


def compare_bench(
    current: Mapping[str, object],
    baseline: Mapping[str, object],
    time_tolerance: float = DEFAULT_TIME_TOLERANCE,
    counter_tolerance: float = DEFAULT_COUNTER_TOLERANCE,
) -> ComparisonReport:
    """Compare a fresh bench document against a baseline, figure by figure.

    A figure fails when it vanished, its workload configuration changed
    (the runs would not be comparable — regenerate the baseline), its wall
    clock exceeded ``(1 + time_tolerance) x`` the baseline, or any key
    counter drifted by more than ``counter_tolerance`` relative.  Figures
    present only in the current run are reported as ``new`` and do not
    fail.
    """
    current_figures: Mapping[str, dict] = current.get("figures", {})  # type: ignore[assignment]
    baseline_figures: Mapping[str, dict] = baseline.get("figures", {})  # type: ignore[assignment]
    comparisons: list[FigureComparison] = []
    for name, base in baseline_figures.items():
        entry = current_figures.get(name)
        if entry is None:
            comparisons.append(
                FigureComparison(
                    name, "missing", ["figure absent from the current run"]
                )
            )
            continue
        if entry.get("config") != base.get("config"):
            comparisons.append(
                FigureComparison(
                    name,
                    "config-mismatch",
                    [
                        f"current config {entry.get('config')} != baseline "
                        f"{base.get('config')}; regenerate the baseline"
                    ],
                )
            )
            continue
        messages: list[str] = []
        base_seconds = float(base.get("seconds", 0.0))
        seconds = float(entry.get("seconds", 0.0))
        ratio = seconds / base_seconds if base_seconds > 0 else None
        if ratio is not None and ratio > 1.0 + time_tolerance:
            messages.append(
                f"wall clock {seconds:.3f}s vs baseline {base_seconds:.3f}s "
                f"exceeds {1.0 + time_tolerance:g}x tolerance"
            )
        base_counters: Mapping[str, int] = base.get("counters", {})
        counters: Mapping[str, int] = entry.get("counters", {})
        for counter, base_value in base_counters.items():
            value = counters.get(counter)
            if value is None:
                messages.append(f"counter {counter} missing from current run")
                continue
            reference = max(abs(base_value), 1)
            if abs(value - base_value) / reference > counter_tolerance:
                messages.append(
                    f"counter {counter} drifted: {value} vs baseline "
                    f"{base_value}"
                )
        comparisons.append(
            FigureComparison(
                name,
                "regression" if messages else "ok",
                messages,
                time_ratio=ratio,
            )
        )
    for name in current_figures:
        if name not in baseline_figures:
            comparisons.append(
                FigureComparison(name, "new", ["not in the baseline"])
            )
    return ComparisonReport(comparisons, time_tolerance, counter_tolerance)
