"""Timing, environment reporting and table formatting for experiments."""

from __future__ import annotations

import platform
import sys
import time
from dataclasses import dataclass, field
from typing import Callable, Sequence


class Timer:
    """A context-manager stopwatch.

    ::

        with Timer() as timer:
            expensive()
        print(timer.elapsed)
    """

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._start = 0.0

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


def best_of(runs: int, action: Callable[[], object]) -> float:
    """The fastest of ``runs`` wall-clock measurements of ``action``.

    Minimum (not mean) is the standard noise-robust statistic for
    wall-clock microbenchmarks on a shared machine.
    """
    best = float("inf")
    for _ in range(runs):
        start = time.perf_counter()
        action()
        best = min(best, time.perf_counter() - start)
    return best


@dataclass
class BenchTable:
    """A printable experiment result: headers plus rows.

    Numeric cells are formatted compactly; the table prints with aligned
    columns in the style of the paper's reported series.
    """

    title: str
    headers: Sequence[str]
    rows: list[Sequence[object]] = field(default_factory=list)
    #: Derived scalars that ride along with the table (e.g. the serving
    #: figure's telemetry-overhead ratio).  They print after the rows and
    #: flow into the bench trail, where comparisons ignore unknown keys.
    extras: dict[str, float] = field(default_factory=dict)

    def add(self, *cells: object) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"{len(cells)} cells for {len(self.headers)} columns"
            )
        self.rows.append(cells)

    @staticmethod
    def _format(cell: object) -> str:
        if isinstance(cell, float):
            if cell != cell:  # NaN
                return "-"
            if abs(cell) >= 1000:
                return f"{cell:,.0f}"
            return f"{cell:.3f}"
        if isinstance(cell, int):
            return f"{cell:,}"
        return str(cell)

    def render(self) -> str:
        formatted = [[self._format(cell) for cell in row] for row in self.rows]
        widths = [
            max(len(str(header)), *(len(row[i]) for row in formatted))
            if formatted
            else len(str(header))
            for i, header in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(str(h).rjust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
        for name, value in self.extras.items():
            lines.append(f"  {name}: {self._format(value)}")
        return "\n".join(lines)

    def show(self) -> None:
        print(self.render())
        print()


def environment_report() -> BenchTable:
    """Our equivalent of the paper's Table 1 (system configuration)."""
    table = BenchTable("Table 1: system configuration", ["Category", "Description"])
    table.add("Interpreter", f"CPython {platform.python_version()}")
    table.add("Operating system", platform.platform())
    table.add("CPU", platform.processor() or platform.machine())
    table.add("Pointer size", f"{sys.maxsize.bit_length() + 1} bit")
    import numpy

    table.add("numpy", numpy.__version__)
    return table
