"""Sharded parallel bulk anonymization.

Public surface of the tentpole engine: plan contiguous Hilbert-key shard
ranges from a sampled key-quantile pass (:mod:`repro.parallel.planner`),
scan and sort the shards in a `multiprocessing` worker pool, and stitch
the runs — with cross-seam boundary repair — into output that is
bit-for-bit identical to the serial Hilbert loaders for any worker count
(:mod:`repro.parallel.engine`).
"""

from repro.parallel.engine import (
    ShardRun,
    ShardScan,
    effective_pool_size,
    parallel_bulk_load,
    parallel_bulk_load_file,
    parallel_hilbert_partitions,
    scan_file_shards,
    scan_record_shards,
    shard_record_stream,
    stitched_chunks,
)
from repro.parallel.planner import (
    DEFAULT_SAMPLE_SIZE,
    ShardPlan,
    plan_file_shards,
    plan_from_sample,
    plan_record_shards,
    plan_uniform,
    sample_file_keys,
    sample_record_keys,
    slice_bounds,
)

__all__ = [
    "DEFAULT_SAMPLE_SIZE",
    "ShardPlan",
    "effective_pool_size",
    "ShardRun",
    "ShardScan",
    "parallel_bulk_load",
    "parallel_bulk_load_file",
    "parallel_hilbert_partitions",
    "plan_file_shards",
    "plan_from_sample",
    "plan_record_shards",
    "plan_uniform",
    "sample_file_keys",
    "sample_record_keys",
    "scan_file_shards",
    "scan_record_shards",
    "shard_record_stream",
    "slice_bounds",
    "stitched_chunks",
]
