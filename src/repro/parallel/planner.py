"""The sampled key-quantile shard planner.

The sharded bulk-anonymization engine (:mod:`repro.parallel.engine`) splits
the input into ``P`` contiguous Hilbert-key ranges.  This module decides
*where* those ranges begin and end: it samples a deterministic stride of
the input, computes the samples' Hilbert keys, and places the shard
boundaries at the sample quantiles, so every shard receives roughly the
same number of records regardless of how skewed the data is in space.

The plan is a pure function of (input, shard count, quantization): no RNG
is involved, so two plans over the same file always agree — one of the two
pillars of the engine's determinism guarantee (the other is that the
stitched output is provably independent of the boundaries themselves; see
the engine module).
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.dataset.record import Record
from repro.index.hilbert import hilbert_key, quantize

#: How many records the planner samples to estimate the key quantiles.
DEFAULT_SAMPLE_SIZE = 2_048


@dataclass(frozen=True)
class ShardPlan:
    """``P`` contiguous Hilbert-key ranges over a fixed quantization.

    ``boundaries`` holds the ``P - 1`` ascending key values separating the
    shards: shard ``i`` owns keys in ``[boundaries[i-1], boundaries[i])``
    (with open ends at the extremes).  Duplicate quantiles are allowed —
    they simply make some shards empty, which the engine tolerates.
    """

    boundaries: tuple[int, ...]
    lows: tuple[float, ...]
    highs: tuple[float, ...]
    bits: int

    @property
    def shard_count(self) -> int:
        return len(self.boundaries) + 1

    def key_of(self, point: Sequence[float]) -> int:
        """The Hilbert key of a point under this plan's quantization."""
        return hilbert_key(quantize(point, self.lows, self.highs, self.bits), self.bits)

    def shard_of(self, key: int) -> int:
        """Which shard owns a key (binary search over the boundaries)."""
        return bisect_right(self.boundaries, key)


def plan_from_sample(
    sample_keys: Sequence[int],
    shards: int,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> ShardPlan:
    """Place ``shards - 1`` boundaries at the sample's key quantiles."""
    if shards < 1:
        raise ValueError("shards must be at least 1")
    ordered = sorted(sample_keys)
    boundaries: list[int] = []
    if ordered and shards > 1:
        for rank in range(1, shards):
            boundaries.append(ordered[rank * len(ordered) // shards])
    return ShardPlan(
        tuple(boundaries), tuple(lows), tuple(highs), bits
    )


def plan_uniform(
    shards: int,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> ShardPlan:
    """Boundaries evenly spaced over the whole key space (no sample).

    The fallback when there is nothing to sample — e.g. a serving cluster
    started from a bare schema, before any record has arrived.  Balance
    is then only as good as the data is curve-uniform, but correctness
    never depends on the boundaries (the stitched output is provably
    boundary-independent), so a skewed uniform plan costs throughput, not
    fidelity.
    """
    if shards < 1:
        raise ValueError("shards must be at least 1")
    total = 1 << (bits * len(lows))
    boundaries = tuple(
        rank * total // shards for rank in range(1, shards)
    )
    return ShardPlan(boundaries, tuple(lows), tuple(highs), bits)


def sample_record_keys(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    use_kernels: bool | None = None,
) -> list[int]:
    """Stride-sample an in-memory record list and key the samples.

    Both paths return plain Python ints (the kernel keys round-trip
    through ``tolist``), so shard boundaries are identical objects either
    way and the plan stays a pure function of the input.
    """
    from repro.kernels.config import kernels_enabled

    stride = max(1, len(records) // max(1, sample_size))
    positions = range(0, len(records), stride)
    if kernels_enabled(use_kernels) and len(positions) > 0:
        import numpy as np

        from repro.kernels.hilbert import hilbert_keys_for_points

        points = np.array(
            [records[index].point for index in positions], dtype=np.float64
        )
        return hilbert_keys_for_points(points, lows, highs, bits).tolist()
    return [
        hilbert_key(quantize(records[index].point, lows, highs, bits), bits)
        for index in positions
    ]


def sample_file_keys(
    path: str | Path,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    batch_size: int = 8_192,
    use_kernels: bool | None = None,
) -> list[int]:
    """Stride-sample a record file and key the samples.

    Reads the file once in batches (cheap sequential I/O) but quantizes and
    keys only every ``stride``-th record, so planning costs ``O(sample)``
    key computations however large the file is.  The kernel path decodes
    pages columnar-wise and keys the selected rows in one batch; the
    sampled positions — and therefore the keys and the plan — are the same
    either way.
    """
    from repro.dataset.io import RecordFileReader
    from repro.kernels.config import kernels_enabled

    reader = RecordFileReader(path)
    stride = max(1, len(reader) // max(1, sample_size))
    if kernels_enabled(use_kernels):
        import numpy as np

        from repro.kernels.hilbert import hilbert_keys_for_points

        sampled: list[np.ndarray] = []
        for position, points in reader.iter_point_batches(batch_size):
            first = -position % stride
            if first < points.shape[0]:
                sampled.append(points[first::stride])
        if not sampled:
            return []
        return hilbert_keys_for_points(
            np.concatenate(sampled, axis=0), lows, highs, bits
        ).tolist()
    keys: list[int] = []
    for index, point in enumerate(reader.iter_points(batch_size)):
        if index % stride == 0:
            keys.append(hilbert_key(quantize(point, lows, highs, bits), bits))
    return keys


def plan_record_shards(
    records: Sequence[Record],
    shards: int,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    use_kernels: bool | None = None,
) -> ShardPlan:
    """A shard plan for an in-memory record list."""
    return plan_from_sample(
        sample_record_keys(records, lows, highs, bits, sample_size, use_kernels),
        shards,
        lows,
        highs,
        bits,
    )


def plan_file_shards(
    path: str | Path,
    shards: int,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    batch_size: int = 8_192,
    use_kernels: bool | None = None,
) -> ShardPlan:
    """A shard plan for a binary record file."""
    return plan_from_sample(
        sample_file_keys(
            path, lows, highs, bits, sample_size, batch_size, use_kernels
        ),
        shards,
        lows,
        highs,
        bits,
    )


def slice_bounds(total: int, slices: int) -> list[tuple[int, int]]:
    """Split ``total`` records into contiguous, near-equal (start, count) slices.

    The engine hands one slice to each worker; together the slices tile
    ``[0, total)`` exactly, in order.
    """
    if slices < 1:
        raise ValueError("slices must be at least 1")
    slices = min(slices, max(1, total))
    base, extra = divmod(total, slices)
    bounds: list[tuple[int, int]] = []
    start = 0
    for index in range(slices):
        count = base + (1 if index < extra else 0)
        bounds.append((start, count))
        start += count
    return bounds


def iter_slice(records: Sequence[Record], bounds: tuple[int, int]) -> Iterable[Record]:
    """The records of one (start, count) slice, in input order."""
    start, count = bounds
    return records[start : start + count]
