"""The sharded parallel bulk-anonymization engine.

The pipeline has three stages, mirroring the serial Hilbert loader
(:mod:`repro.index.bulk`) stage for stage:

1. **Plan** (:mod:`repro.parallel.planner`): a sampled key-quantile pass
   splits the key space into ``P`` contiguous Hilbert-key ranges.
2. **Scan** (`multiprocessing` worker pool): each worker streams one
   contiguous *file slice* through :class:`~repro.dataset.io.RecordFileReader`
   offsets (no slice is ever materialized in the parent), computes every
   record's Hilbert key, range-partitions its slice across the ``P``
   shards, and sorts each sub-run by ``(key, rid)``.  Keying and sorting —
   the per-record heavy lifting of a Hilbert bulk load — thus parallelize
   across all workers.
3. **Stitch**: the parent merges each shard's sub-runs (cheap ``O(N log P)``
   heap merge over pre-computed keys) and consumes the shards in key
   order.  For partitions, :func:`stitched_chunks` performs the
   boundary-repair pass: chunk boundaries are kept aligned to the *global*
   2k grid, so the ≤2k records straddling each shard seam are re-chunked
   across the seam and the k-floor invariant holds globally.  For a live
   index, the shards stream — in key order, shard subtree by shard
   subtree — through one :class:`~repro.index.buffer_tree.BufferTreeLoader`
   call into a shared tree.

**Determinism guarantee.**  For a fixed input and quantization the output
is bit-for-bit identical to the serial ``hilbert_bulk_load`` /
``hilbert_partitions`` baseline *regardless of the worker count or the
shard boundaries*: the merged shard runs, keyed and tie-broken by
``(key, rid)``, reconstruct exactly the one global Hilbert order the
serial path sorts into, and everything downstream (the seam-repaired
chunking, the buffer-tree replay) is a deterministic function of that
order.  This is what the serial/parallel differential suite asserts —
leaf for leaf, region for region, release for release.

Why the parent replays the tree build rather than stitching worker-built
subtrees under a shared root: Hilbert-key shard seams are not axis-aligned
(a contiguous key range is a union of curve cells, not a box), so
independently built R⁺-subtrees could never be joined by the binary-cut
machinery without violating the disjoint-region invariant — nor could they
reproduce the serial tree's cuts.  Shipping the *sorted runs* back instead
keeps the structural pass byte-identical to the serial algorithm while the
per-record work (keying, sorting — the measured majority of a pure-Python
Hilbert load) runs fan-out.
"""

from __future__ import annotations

import heapq
import time
from bisect import bisect_right
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.dataset.record import Record
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.bulk import DEFAULT_HILBERT_BITS
from repro.index.hilbert import hilbert_key, quantize
from repro.index.rtree import RPlusTree
from repro.obs import OBS, TRACE
from repro.parallel.planner import (
    DEFAULT_SAMPLE_SIZE,
    ShardPlan,
    plan_file_shards,
    plan_record_shards,
    slice_bounds,
)

#: A worker's output for one (slice, shard) cell: (key, record) pairs
#: sorted by (key, rid).
_SubRun = list[tuple[int, Record]]


@dataclass
class ShardRun:
    """One shard's records, merged across workers, in global Hilbert order."""

    index: int
    records: list[Record]

    def __len__(self) -> int:
        return len(self.records)


@dataclass
class ShardScan:
    """The full scan result: the plan, the per-shard runs, worker stats."""

    plan: ShardPlan
    runs: list[ShardRun] = field(default_factory=list)
    worker_stats: list[dict[str, object]] = field(default_factory=list)

    @property
    def total(self) -> int:
        return sum(len(run) for run in self.runs)


# -- worker side ------------------------------------------------------------


def _scan_slice(task: tuple) -> tuple[list[_SubRun], dict[str, object]]:
    """One worker's job: stream a slice, key, range-partition, sort.

    Module-level so it pickles under every multiprocessing start method.
    ``task`` is (source kind, payload, boundaries, lows, highs, bits,
    use_kernels) where a ``"file"`` payload is (path, start, count,
    first_rid, batch_size) — the worker opens its own reader and streams
    the slice by record offsets — and a ``"records"`` payload is the slice
    itself.  ``use_kernels`` arrives *resolved* (a plain bool) so the
    parent's flag governs the children under every start method.
    """
    started = time.perf_counter()
    kind, payload, boundaries, lows, highs, bits, use_kernels = task
    if use_kernels:
        buckets, scanned = _scan_slice_kernels(
            kind, payload, boundaries, lows, highs, bits
        )
    else:
        if kind == "file":
            from repro.dataset.io import RecordFileReader

            path, start, count, first_rid, batch_size = payload
            stream: Iterable[Record] = RecordFileReader(path).iter_records(
                batch_size, first_rid=first_rid, start=start, count=count
            )
        else:
            stream = payload
        buckets = [[] for _ in range(len(boundaries) + 1)]
        scanned = 0
        for record in stream:
            key = hilbert_key(quantize(record.point, lows, highs, bits), bits)
            buckets[bisect_right(boundaries, key)].append((key, record))
            scanned += 1
    for bucket in buckets:
        bucket.sort(key=lambda pair: (pair[0], pair[1].rid))
    stats: dict[str, object] = {
        "records": scanned,
        "per_shard": [len(bucket) for bucket in buckets],
        "seconds": time.perf_counter() - started,
    }
    return buckets, stats


def _scan_slice_kernels(
    kind: str,
    payload: object,
    boundaries: Sequence[int],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> tuple[list[_SubRun], int]:
    """The columnar scan: page-decode, batch-key, searchsorted bucketing.

    Produces exactly the scalar loop's buckets — the batch Hilbert kernel
    is element-wise equal to ``hilbert_key(quantize(...))``, and
    ``np.searchsorted(..., side="right")`` is ``bisect_right`` — so the
    merged shard runs are identical with the flag on or off.
    """
    import numpy as np

    from repro.kernels.hilbert import hilbert_keys_for_points

    buckets: list[_SubRun] = [[] for _ in range(len(boundaries) + 1)]
    scanned = 0

    def bucket_batch(
        points: "np.ndarray", rid_of: "list[int] | range", records: "list[Record] | None"
    ) -> None:
        nonlocal scanned
        if points.shape[0] == 0:
            return
        keys = hilbert_keys_for_points(points, lows, highs, bits)
        if boundaries:
            # Keep the comparison in exact integer arithmetic: uint64 keys
            # search uint64 boundaries; >64-bit keys (object arrays of
            # Python ints) search an object boundary array.
            if keys.dtype == np.uint64:
                edges = np.asarray(boundaries, dtype=np.uint64)
            else:
                edges = np.array(boundaries, dtype=object)
            shard_of = np.searchsorted(edges, keys, side="right").tolist()
        else:
            shard_of = [0] * points.shape[0]
        key_list = keys.tolist()
        if records is None:
            rows = points.tolist()
            for offset, (key, shard) in enumerate(zip(key_list, shard_of)):
                buckets[shard].append(
                    (key, Record(rid_of[offset], tuple(rows[offset])))
                )
        else:
            for key, shard, record in zip(key_list, shard_of, records):
                buckets[shard].append((key, record))
        scanned += points.shape[0]

    if kind == "file":
        from repro.dataset.io import RecordFileReader

        path, start, count, first_rid, batch_size = payload  # type: ignore[misc]
        reader = RecordFileReader(path)
        for position, points in reader.iter_point_batches(
            batch_size, start=start, count=count
        ):
            bucket_batch(
                points,
                range(first_rid + position, first_rid + position + points.shape[0]),
                None,
            )
    else:
        records = list(payload)  # type: ignore[arg-type]
        if records:
            points = np.array(
                [record.point for record in records], dtype=np.float64
            )
            bucket_batch(points, [], records)
    return buckets, scanned


def _mp_context():
    """Fork when the platform offers it (cheap), spawn otherwise."""
    import multiprocessing

    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-POSIX platforms
        return multiprocessing.get_context("spawn")


def effective_pool_size(workers: int, tasks: int) -> int:
    """How many worker processes to actually fork.

    Capped at the machine's CPU count: the slices are CPU-bound, so a pool
    wider than the hardware only time-shares one core and pays fork,
    pickle and scheduling overhead for nothing — ``workers`` still sets
    the slice/shard layout (and therefore nothing about the output, which
    is identical for every worker count), only the process fan-out is
    clamped.  Set ``REPRO_PARALLEL_POOL=force`` to fork one process per
    slice regardless (the test suite uses this to exercise the
    multiprocessing path even on single-CPU machines).
    """
    import os

    if os.environ.get("REPRO_PARALLEL_POOL") == "force":
        return min(workers, tasks)
    return min(workers, tasks, os.cpu_count() or 1)


def _run_slices(
    tasks: list[tuple], workers: int
) -> list[tuple[list[_SubRun], dict[str, object]]]:
    """Run the slice scans — pooled, or in-process when a pool cannot help."""
    size = effective_pool_size(workers, len(tasks))
    if size <= 1:
        return [_scan_slice(task) for task in tasks]
    with _mp_context().Pool(size) as pool:
        return pool.map(_scan_slice, tasks)


# -- parent side ------------------------------------------------------------


def _merge_and_record(
    plan: ShardPlan,
    results: list[tuple[list[_SubRun], dict[str, object]]],
    dispatched_at: float,
) -> ShardScan:
    """Merge per-worker sub-runs into shard runs; fold stats into OBS/TRACE."""
    scan = ShardScan(plan)
    for index, (_buckets, stats) in enumerate(results):
        stats["slice"] = index
        scan.worker_stats.append(stats)
        if TRACE.enabled:
            TRACE.record_span(
                "parallel.worker",
                "parallel",
                start_us=TRACE.offset_us(dispatched_at),
                duration_us=float(stats["seconds"]) * 1e6,  # type: ignore[arg-type]
                parent="parallel.scan",
                args={"slice": index, "records": stats["records"]},
            )
        if OBS.enabled:
            OBS.count("parallel.worker_records", int(stats["records"]))  # type: ignore[arg-type]
            OBS.observe(
                "parallel.worker_seconds", float(stats["seconds"])  # type: ignore[arg-type]
            )
    for shard in range(plan.shard_count):
        with TRACE.span("parallel.shard_merge", "parallel", shard=shard):
            merged = heapq.merge(
                *(buckets[shard] for buckets, _stats in results),
                key=lambda pair: (pair[0], pair[1].rid),
            )
            records = [record for _key, record in merged]
        if OBS.enabled:
            OBS.count("parallel.shards")
            OBS.count("parallel.shard_records", len(records))
        scan.runs.append(ShardRun(shard, records))
    return scan


def scan_file_shards(
    path: str | Path,
    lows: Sequence[float],
    highs: Sequence[float],
    workers: int = 1,
    shards: int | None = None,
    bits: int = DEFAULT_HILBERT_BITS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    batch_size: int = 8_192,
    first_rid: int = 0,
    plan: ShardPlan | None = None,
    use_kernels: bool | None = None,
) -> ShardScan:
    """Plan and scan a record file into sorted shard runs.

    Workers stream disjoint record-offset slices of the file themselves —
    the parent never reads the input, only the workers' sorted runs.
    """
    from repro.dataset.io import RecordFileReader
    from repro.kernels.config import kernels_enabled

    if workers < 1:
        raise ValueError("workers must be at least 1")
    kernels = kernels_enabled(use_kernels)
    reader = RecordFileReader(path)
    if plan is None:
        with OBS.span("parallel.plan"), TRACE.span(
            "parallel.plan", "parallel", shards=shards or workers
        ):
            plan = plan_file_shards(
                path,
                shards if shards is not None else workers,
                lows,
                highs,
                bits,
                sample_size,
                batch_size,
                use_kernels=kernels,
            )
    tasks = [
        (
            "file",
            (str(path), start, count, first_rid, batch_size),
            plan.boundaries,
            plan.lows,
            plan.highs,
            plan.bits,
            kernels,
        )
        for start, count in slice_bounds(len(reader), workers)
    ]
    if OBS.enabled:
        OBS.gauge("parallel.workers", workers)
    dispatched_at = time.perf_counter()
    with OBS.span("parallel.scan"), TRACE.span(
        "parallel.scan", "parallel", workers=workers, records=len(reader)
    ):
        results = _run_slices(tasks, workers)
    return _merge_and_record(plan, results, dispatched_at)


def scan_record_shards(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    workers: int = 1,
    shards: int | None = None,
    bits: int = DEFAULT_HILBERT_BITS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    plan: ShardPlan | None = None,
    use_kernels: bool | None = None,
) -> ShardScan:
    """In-memory counterpart of :func:`scan_file_shards`.

    Worker slices are shipped by pickle instead of streamed by offset; the
    output contract (and the determinism guarantee) is identical, which is
    what lets the differential suite compare against serial baselines built
    from the very same record objects.
    """
    from repro.kernels.config import kernels_enabled

    if workers < 1:
        raise ValueError("workers must be at least 1")
    kernels = kernels_enabled(use_kernels)
    if plan is None:
        with OBS.span("parallel.plan"), TRACE.span(
            "parallel.plan", "parallel", shards=shards or workers
        ):
            plan = plan_record_shards(
                records,
                shards if shards is not None else workers,
                lows,
                highs,
                bits,
                sample_size,
                use_kernels=kernels,
            )
    tasks = [
        (
            "records",
            list(records[start : start + count]),
            plan.boundaries,
            plan.lows,
            plan.highs,
            plan.bits,
            kernels,
        )
        for start, count in slice_bounds(len(records), workers)
    ]
    if OBS.enabled:
        OBS.gauge("parallel.workers", workers)
    dispatched_at = time.perf_counter()
    with OBS.span("parallel.scan"), TRACE.span(
        "parallel.scan", "parallel", workers=workers, records=len(records)
    ):
        results = _run_slices(tasks, workers)
    return _merge_and_record(plan, results, dispatched_at)


# -- stitching --------------------------------------------------------------


def shard_record_stream(runs: Iterable[ShardRun]) -> Iterator[Record]:
    """The shards flattened back into one global Hilbert-ordered stream.

    Because the shards hold contiguous, ascending key ranges, concatenating
    their merged runs *is* the global ``(key, rid)`` sort — the stream the
    serial loader would have produced.
    """
    for run in runs:
        if TRACE.enabled:
            TRACE.instant(
                "parallel.shard_stream",
                "parallel",
                shard=run.index,
                records=len(run),
            )
        yield from run.records


def stitched_chunks(
    runs: Iterable[ShardRun], k: int
) -> Iterator[list[Record]]:
    """Chunk the shard runs into ~2k groups with cross-seam boundary repair.

    Chunk boundaries stay aligned to the *global* 2k grid: the ≤2k records
    straddling each shard seam are carried across it and re-chunked
    together with the next shard's head, so the result is exactly the
    serial :func:`repro.index.bulk.chunk_with_floor` grouping of the
    concatenated runs — every group holds at least ``k`` records (the
    k-floor), with an undersized global tail merged into the final full
    group.  Raises ``ValueError`` when the whole input holds fewer than
    ``k`` records, matching the serial path.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    size = 2 * k
    held: list[Record] | None = None  # the last complete chunk, unreleased
    current: list[Record] = []
    total = 0
    for run in runs:
        straddling = len(current)
        if straddling:
            if TRACE.enabled:
                TRACE.instant(
                    "parallel.seam_repair",
                    "parallel",
                    shard=run.index,
                    straddling=straddling,
                )
            if OBS.enabled:
                OBS.count("parallel.seam_records", straddling)
        for record in run.records:
            current.append(record)
            total += 1
            if len(current) == size:
                if held is not None:
                    yield held
                held = current
                current = []
    if total < k:
        raise ValueError(
            f"cannot form k-anonymous groups: {total} records < k={k}"
        )
    if current:
        if len(current) >= k:
            if held is not None:
                yield held
            held = current
        else:
            # The global tail is under the k-floor: merge it into the last
            # full chunk (held is non-None here, else total < k above).
            held = held + current  # type: ignore[operator]
    if held is not None:
        yield held


# -- public entry points ----------------------------------------------------


def parallel_hilbert_partitions(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    k: int,
    workers: int = 1,
    shards: int | None = None,
    bits: int = DEFAULT_HILBERT_BITS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    use_kernels: bool | None = None,
) -> list[list[Record]]:
    """Sharded counterpart of :func:`repro.index.bulk.hilbert_partitions`.

    Equal to the serial grouping for any worker count (the differential
    suite asserts this record for record).
    """
    with OBS.span("parallel.partitions"), TRACE.span(
        "parallel.partitions", "parallel", records=len(records), workers=workers
    ):
        scan = scan_record_shards(
            records, lows, highs, workers, shards, bits, sample_size,
            use_kernels=use_kernels,
        )
        return list(stitched_chunks(scan.runs, k))


def parallel_bulk_load(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    k: int,
    workers: int = 1,
    shards: int | None = None,
    bits: int = DEFAULT_HILBERT_BITS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    use_kernels: bool | None = None,
    **tree_kwargs: object,
) -> RPlusTree:
    """Sharded counterpart of :func:`repro.index.bulk.hilbert_bulk_load`.

    Workers shard-sort; the parent replays the buffer-tree loader over the
    stitched stream in one call, so the resulting tree is *structurally
    identical* to the serial build — same cuts, same leaves, same regions.
    """
    with OBS.span("parallel.bulk_load"), TRACE.span(
        "parallel.bulk_load", "parallel", records=len(records), workers=workers
    ):
        scan = scan_record_shards(
            records, lows, highs, workers, shards, bits, sample_size,
            use_kernels=use_kernels,
        )
        tree = RPlusTree(len(lows), k, **tree_kwargs)  # type: ignore[arg-type]
        BufferTreeLoader(tree).load(
            shard_record_stream(scan.runs), charge_input=False
        )
        return tree


def parallel_bulk_load_file(
    path: str | Path,
    lows: Sequence[float],
    highs: Sequence[float],
    k: int,
    workers: int = 1,
    shards: int | None = None,
    bits: int = DEFAULT_HILBERT_BITS,
    sample_size: int = DEFAULT_SAMPLE_SIZE,
    batch_size: int = 8_192,
    first_rid: int = 0,
    use_kernels: bool | None = None,
    **tree_kwargs: object,
) -> RPlusTree:
    """Build an R⁺-tree from a record file with a sharded worker pool."""
    with OBS.span("parallel.bulk_load_file"), TRACE.span(
        "parallel.bulk_load_file", "parallel", path=str(path), workers=workers
    ):
        scan = scan_file_shards(
            path,
            lows,
            highs,
            workers,
            shards,
            bits,
            sample_size,
            batch_size,
            first_rid,
            use_kernels=use_kernels,
        )
        tree = RPlusTree(len(lows), k, **tree_kwargs)  # type: ignore[arg-type]
        BufferTreeLoader(tree).load(
            shard_record_stream(scan.runs), charge_input=False
        )
        return tree
