"""Command-line entry point: regenerate any paper experiment.

::

    repro list                     # what can be run
    repro table1                   # environment report (Table 1)
    repro fig10                    # Figure 10 at the default scaled size
    repro fig10 --records 50000    # bigger run
    repro all                      # every experiment, default sizes
    repro stats                    # instrumented bulk-load smoke + metrics
    repro fig8b --profile          # any experiment with hot-path metrics
    repro fig7a --profile-json p.jsonl   # machine-readable snapshot trail
    repro fig7a --trace t.json     # Chrome/Perfetto trace of the run
    repro bench                    # pinned-seed core set -> BENCH_core.json
    repro bench --compare BENCH_core.json   # regression report vs baseline
    repro anonymize --workers 4    # sharded parallel bulk anonymization
    repro anonymize --workers 4 --dataset census --records 20000 --k 10
    repro anonymize --dir state/   # durable: WAL + checkpoint in state/
    repro recover --dir state/     # rebuild after a crash, publish a release
    repro checkpoint --dir state/  # offline checkpoint (bounds replay work)
    repro serve-bench              # serving throughput, cached vs uncached
    repro query-bench              # query pushdown: accuracy + reader throughput
    repro serve-demo --port 8787   # live service with /metrics + /healthz
    repro serve-demo --shards 4    # sharded cluster: 4 worker processes
    repro top --url http://127.0.0.1:8787   # refreshing telemetry dashboard

The data-facing commands (``anonymize``, ``bench``, ``recover``,
``checkpoint``) share one option vocabulary — ``--dataset``, ``--k``,
``--out``, ``--workers``, ``--dir`` — and are all implemented on
:mod:`repro.api`, the consolidated facade (see docs/API.md).  The old
``--input`` spelling still works but warns once with a
``DeprecationWarning``; use ``--dataset-file``.

Each experiment prints the same rows the paper plots; see EXPERIMENTS.md
for the recorded paper-vs-measured comparison.  ``--profile`` switches the
:mod:`repro.obs` instrumentation on for the run and prints the collected
counters/histograms/spans afterwards; ``--profile-json`` additionally
appends the snapshot to a JSON-lines file.  ``--trace`` records structured
span events (flush sweeps, splits, page I/O, releases) and writes a
Chrome-trace JSON loadable in ``chrome://tracing`` or Perfetto.
"""

from __future__ import annotations

import argparse
import sys
import warnings
from typing import Sequence

from repro.bench.figures import DRIVERS
from repro.bench.runner import environment_report

#: Options that have already warned this process (deprecations warn once).
_warned_options: set[str] = set()


def _warn_deprecated(old: str, new: str) -> None:
    if old in _warned_options:
        return
    _warned_options.add(old)
    warnings.warn(
        f"{old} is deprecated; use {new}", DeprecationWarning, stacklevel=4
    )


class _DeprecatedAlias(argparse.Action):
    """An option spelling kept for compatibility; warns once when used."""

    def __init__(
        self, option_strings: list[str], dest: str, new_option: str = "", **kwargs: object
    ) -> None:
        self._new_option = new_option
        super().__init__(option_strings, dest, **kwargs)  # type: ignore[arg-type]

    def __call__(
        self,
        parser: argparse.ArgumentParser,
        namespace: argparse.Namespace,
        values: object,
        option_string: str | None = None,
    ) -> None:
        _warn_deprecated(option_string or self.option_strings[0], self._new_option)
        setattr(namespace, self.dest, values)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'K-Anonymization as Spatial Indexing'",
    )
    parser.add_argument(
        "experiment",
        help=(
            "experiment id: 'list', 'all', 'table1', 'stats', 'bench', "
            "or one of the figure ids"
        ),
    )
    parser.add_argument(
        "--records", type=int, default=None, help="override the record count"
    )
    parser.add_argument(
        "--k", type=int, default=None, help="override the anonymity parameter"
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override the query count"
    )
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="additionally write the result rows to a CSV file (plot-ready)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect hot-path metrics (repro.obs) and print them after the run",
    )
    parser.add_argument(
        "--profile-json",
        metavar="PATH",
        default=None,
        help="append the metrics snapshot to a JSON-lines file (implies --profile)",
    )
    parser.add_argument(
        "--trace",
        metavar="PATH",
        default=None,
        help=(
            "record structured trace events during the run and write a "
            "Chrome-trace JSON (open in chrome://tracing or Perfetto)"
        ),
    )
    shared = parser.add_argument_group(
        "data options (shared by anonymize / bench / recover / checkpoint)"
    )
    shared.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "worker processes for the sharded parallel engine "
            "(1 = the same pipeline in-process; output is identical for "
            "every worker count)"
        ),
    )
    shared.add_argument(
        "--no-kernels",
        dest="no_kernels",
        action="store_true",
        help=(
            "disable the numpy columnar kernels and run the scalar oracle "
            "paths instead (output is bit-identical; kernels are only "
            "faster — this switch exists for the differential CI jobs)"
        ),
    )
    shared.add_argument(
        "--dataset",
        choices=("landsend", "census", "agrawal"),
        default="landsend",
        help="which generator supplies the records (and the schema)",
    )
    shared.add_argument(
        "--dataset-file",
        dest="dataset_file",
        metavar="PATH",
        default=None,
        help=(
            "bulk-load this binary record file instead of generating one "
            "(must match the --dataset schema)"
        ),
    )
    shared.add_argument(
        "--input",
        dest="dataset_file",
        metavar="PATH",
        action=_DeprecatedAlias,
        new_option="--dataset-file",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,  # deprecated spelling of --dataset-file
    )
    shared.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help=(
            "output file: the bench document for 'bench' (default "
            "BENCH_core.json), the release CSV for 'anonymize'/'recover'"
        ),
    )
    shared.add_argument(
        "--dir",
        metavar="PATH",
        default=None,
        help=(
            "durability directory: 'anonymize' write-ahead-logs and "
            "checkpoints into it; 'recover' and 'checkpoint' operate on it"
        ),
    )
    bench = parser.add_argument_group("bench (repro bench ...)")
    bench.add_argument(
        "--quick",
        action="store_true",
        help="bench: shrink the core set to CI-smoke size",
    )
    bench.add_argument(
        "--compare",
        metavar="PATH",
        default=None,
        help="bench: compare against a baseline bench JSON and report regressions",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=None,
        help="bench: wall-clock tolerance for --compare (e.g. 1.0 = up to 2x baseline)",
    )
    live = parser.add_argument_group("live telemetry (repro serve-demo / repro top)")
    live.add_argument(
        "--host",
        default="127.0.0.1",
        help="serve-demo: interface for the telemetry endpoint",
    )
    live.add_argument(
        "--port",
        type=int,
        default=0,
        help="serve-demo: telemetry endpoint port (0 = ephemeral, printed at start)",
    )
    live.add_argument(
        "--duration",
        type=float,
        default=5.0,
        help="serve-demo: how long to keep the service alive under load (seconds)",
    )
    live.add_argument(
        "--seconds",
        dest="duration",
        type=float,
        action=_DeprecatedAlias,
        new_option="--duration",
        default=argparse.SUPPRESS,
        help=argparse.SUPPRESS,
    )
    live.add_argument(
        "--shards",
        type=int,
        default=1,
        help=(
            "serve-demo: number of shard worker processes (1 = the "
            "single-writer service, >1 = a sharded cluster)"
        ),
    )
    live.add_argument(
        "--slow-op-log",
        metavar="PATH",
        default=None,
        help="serve-demo: append slow operations (JSONL, with trace spans) here",
    )
    live.add_argument(
        "--slow-op-threshold",
        type=float,
        default=0.25,
        help="serve-demo: seconds above which an operation is logged as slow",
    )
    live.add_argument(
        "--url",
        default=None,
        help="top: base URL of a running telemetry endpoint (e.g. http://127.0.0.1:8787)",
    )
    live.add_argument(
        "--interval",
        type=float,
        default=2.0,
        help="top: seconds between dashboard refreshes",
    )
    live.add_argument(
        "--count",
        type=int,
        default=None,
        help="top: number of frames to render (default: until interrupted)",
    )
    live.add_argument(
        "--no-clear",
        action="store_true",
        help="top: append frames instead of clearing the screen (log-friendly)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = _build_parser().parse_args(argv)
    if getattr(arguments, "no_kernels", False):
        from repro.kernels.config import set_kernels_enabled

        set_kernels_enabled(False)
    name = arguments.experiment.lower()
    if name == "list":
        print("Available experiments:")
        print("  table1  (system configuration report)")
        print("  stats   (instrumented bulk-load smoke; implies --profile)")
        print("  bench   (pinned-seed core benchmark trail; see --compare)")
        print("  anonymize (sharded parallel bulk anonymization; see --workers)")
        print("  recover (rebuild a durable anonymizer from --dir after a crash)")
        print("  checkpoint (snapshot a durable --dir, truncating its WAL)")
        print("  serve-bench (alias of 'serve': throughput under write load)")
        print("  query-bench (alias of 'query_bench': pushdown accuracy + throughput)")
        print("  serve-demo (live service exposing /metrics and /healthz; see --port)")
        print("  top     (refreshing dashboard over a telemetry endpoint; see --url)")
        for key in DRIVERS:
            print(f"  {key}")
        print("  all     (run everything at default sizes)")
        return 0
    if name == "table1":
        environment_report().show()
        return 0
    tracing = arguments.trace is not None
    if tracing:
        from repro import obs

        obs.TRACE.enable()
    try:
        return _dispatch(name, arguments)
    finally:
        if tracing:
            from repro import obs

            obs.TRACE.export_chrome(arguments.trace)
            print(
                f"\ntrace written to {arguments.trace} "
                f"({len(obs.TRACE)} events, {obs.TRACE.dropped} dropped)"
            )
            obs.TRACE.disable()


def _dispatch(name: str, arguments: argparse.Namespace) -> int:
    """Run one experiment id (tracing, if any, is already on)."""
    profiling = arguments.profile or arguments.profile_json is not None
    if name == "serve-bench":  # the serving figure's command-line spelling
        name = "serve"
    if name == "query-bench":  # the query-pushdown figure's spelling
        name = "query_bench"
    if name == "stats":
        _stats_command(arguments)
        return 0
    if name == "bench":
        return _bench_command(arguments)
    if name == "serve-demo":
        return _serve_demo_command(arguments)
    if name == "top":
        return _top_command(arguments)
    if name == "anonymize":
        return _anonymize_command(arguments)
    if name == "recover":
        return _recover_command(arguments)
    if name == "checkpoint":
        return _checkpoint_command(arguments)
    if profiling:
        from repro import obs

        obs.enable()
    overrides = {
        key: value
        for key, value in (
            ("records", arguments.records),
            ("k", arguments.k),
            ("queries", arguments.queries),
            ("seed", arguments.seed),
        )
        if value is not None
    }
    if name == "all":
        environment_report().show()
        for key, driver in DRIVERS.items():
            applicable = _applicable(driver, overrides)
            result = driver(**applicable)
            result.show()
            if arguments.csv:
                _append_csv(result, arguments.csv, key)
        if profiling:
            _show_profile("all", arguments.profile_json)
        return 0
    driver = DRIVERS.get(name)
    if driver is None:
        print(f"unknown experiment {name!r}; try 'repro list'", file=sys.stderr)
        return 2
    result = driver(**_applicable(driver, overrides))
    result.show()
    if arguments.csv:
        _append_csv(result, arguments.csv, name)
    if profiling:
        _show_profile(name, arguments.profile_json)
    return 0


def _bench_command(arguments: argparse.Namespace) -> int:
    """``repro bench``: run the pinned core set, write/compare the trail.

    Writes the bench document (timings + key obs counters + environment)
    to ``--out`` (default ``BENCH_core.json``), and with ``--compare``
    prints the per-figure regression report against a baseline, returning
    exit code 1 when any figure regressed beyond tolerance.
    """
    from repro.bench.regression import (
        DEFAULT_BENCH_PATH,
        DEFAULT_TIME_TOLERANCE,
        compare_bench,
        load_bench,
        run_core_bench,
        write_bench,
    )

    mode = "quick" if arguments.quick else "core"
    print(f"running the {mode} bench set (pinned seeds, instrumented)...")
    document = run_core_bench(quick=arguments.quick)
    out = arguments.out if arguments.out is not None else DEFAULT_BENCH_PATH
    target = write_bench(document, out)
    for figure, entry in document["figures"].items():  # type: ignore[union-attr]
        print(f"  {figure}: {entry['seconds']:.3f}s")
    print(f"bench document written to {target}")
    if arguments.compare is None:
        return 0
    baseline = load_bench(arguments.compare)
    tolerance = (
        arguments.tolerance
        if arguments.tolerance is not None
        else DEFAULT_TIME_TOLERANCE
    )
    report = compare_bench(document, baseline, time_tolerance=tolerance)
    print()
    print(report.render())
    return 0 if report.ok else 1


def _serve_demo_command(arguments: argparse.Namespace) -> int:
    """``repro serve-demo``: a live service with its telemetry endpoint up.

    Runs a telemetry-enabled :class:`~repro.serve.AnonymizerService` under
    a steady write/release load for ``--duration`` seconds, printing the
    endpoint URL first so a scraper (CI's smoke job, ``repro top``,
    Prometheus) can attach while it runs.  ``--shards N`` (N > 1) serves
    a :class:`~repro.cluster.ShardedCluster` instead — same protocol,
    N worker processes, shard-labeled metrics on one endpoint.  With
    ``--slow-op-log`` every operation slower than ``--slow-op-threshold``
    lands in the JSONL log with its recent trace spans attached
    (single-service only; a cluster's slow-op logs live in its shards).
    """
    import time

    from repro import api, obs

    records = arguments.records if arguments.records is not None else 5_000
    k = arguments.k if arguments.k is not None else 10
    seed = arguments.seed if arguments.seed is not None else 1
    profiling = arguments.profile or arguments.profile_json is not None
    obs.enable()
    from repro.dataset.landsend import make_landsend_table

    table = make_landsend_table(records, seed=seed)
    telemetry = api.TelemetryConfig(
        endpoint=True,
        host=arguments.host,
        port=arguments.port,
        slow_op_log=arguments.slow_op_log,
        slow_op_threshold=arguments.slow_op_threshold,
    )
    shards = arguments.shards
    if shards > 1:
        service = api.serve(
            table.schema,
            shards=shards,
            cluster_config=api.ClusterConfig(shards=shards, telemetry=telemetry),
        )
    else:
        service = api.serve(
            table.schema,
            service_config=api.ServiceConfig(telemetry=telemetry),
        )
    try:
        print(f"serving telemetry at {service.telemetry_url}", flush=True)
        backend = f"{shards} shard processes" if shards > 1 else "single writer"
        print(
            f"  GET /metrics (Prometheus text)  GET /healthz (JSON); "
            f"load: {records:,} records, k={k}, "
            f"{arguments.duration:g}s, {backend}",
            flush=True,
        )
        deadline = time.monotonic() + arguments.duration
        batch = list(table.records)
        chunk = max(1, len(batch) // 20)
        offset = 0
        releases = 0
        while time.monotonic() < deadline:
            if offset < len(batch):
                service.insert_batch(batch[offset : offset + chunk])
                offset += chunk
            service.release(k=k)
            releases += 1
            time.sleep(0.05)
        health = service.health()
        print(
            f"served {releases} release(s) over {offset:,} records; "
            f"health={health['status']} epoch={health['epoch']}"
        )
        slow_op_log = getattr(service, "slow_op_log", None)
        if slow_op_log is not None:
            print(
                f"  slow ops:   {slow_op_log.recorded} recorded "
                f"in {slow_op_log.path}"
            )
        if profiling:
            _show_profile("serve-demo", arguments.profile_json)
        return 0
    finally:
        service.close()
        obs.disable()


def _top_command(arguments: argparse.Namespace) -> int:
    """``repro top``: a refreshing dashboard over a telemetry endpoint.

    Polls ``--url``'s ``/healthz`` and ``/metrics`` every ``--interval``
    seconds and renders them with
    :func:`~repro.obs.render.render_live` — health verdict, queue and
    cache gauges, and the p50/p90/p99 latency rows.  ``--count`` bounds
    the frames (for scripts); the default runs until interrupted.
    """
    import json
    import time
    import urllib.error
    import urllib.request

    from repro.obs.live import parse_prometheus_text
    from repro.obs.render import render_live

    if arguments.url is None:
        print("top requires --url (a serve-demo telemetry endpoint)", file=sys.stderr)
        return 2
    base = arguments.url.rstrip("/")
    frames = 0
    try:
        while arguments.count is None or frames < arguments.count:
            try:
                # A stalled service answers /healthz with 503 on purpose;
                # that is a frame to render, not a scrape failure.
                try:
                    response = urllib.request.urlopen(base + "/healthz", timeout=5)
                except urllib.error.HTTPError as error:
                    if error.code != 503:
                        raise
                    response = error
                with response:
                    health = json.load(response)
                with urllib.request.urlopen(base + "/metrics", timeout=5) as response:
                    samples = parse_prometheus_text(response.read().decode("utf-8"))
            except (urllib.error.URLError, OSError, ValueError) as error:
                print(f"cannot scrape {base}: {error}", file=sys.stderr)
                return 1
            if not arguments.no_clear:
                print("\x1b[2J\x1b[H", end="")
            print(render_live(health, samples), flush=True)
            frames += 1
            if arguments.count is not None and frames >= arguments.count:
                break
            time.sleep(arguments.interval)
    except KeyboardInterrupt:
        pass
    return 0


def _print_release(result, leaves: int | None = None) -> None:
    """The shared release report: summary, digest (CI greps it), audit."""
    if leaves is not None:
        print(f"  leaves:     {leaves:,}")
    print(f"  release:    {result.table.summary()}")
    print(f"  digest:     {result.digest}")
    verdict = "pass" if result.k_satisfied else "FAIL"
    audit = result.audit
    print(
        f"  audit:      {verdict} "
        f"(k={audit['k_requested']}, base_k={audit['base_k']})"
    )


def _write_release(result, out: str | None) -> None:
    if out is None:
        return
    from repro.dataset.export import write_release_csv

    rows = write_release_csv(result.table, out)
    print(f"  csv:        {rows:,} rows written to {out}")


def _anonymize_command(arguments: argparse.Namespace) -> int:
    """``repro anonymize``: one sharded bulk-anonymization run, audited.

    Generates the chosen dataset (or takes ``--dataset-file``), stages it
    as a binary record file, and runs it through the :mod:`repro.api`
    facade: :func:`repro.api.open` (durable when ``--dir`` is given),
    :meth:`~repro.api.Anonymizer.load` with ``--workers`` processes, and
    one audited :meth:`~repro.api.Anonymizer.release`.  The printed
    release digest is a sha256 over the published partitions — runs at
    different worker counts print the *same* digest (the engine's
    determinism guarantee), which is exactly what the CI differential leg
    compares, and what ``repro recover`` must reproduce after a crash.
    """
    import tempfile
    from pathlib import Path

    from repro import api, obs
    from repro.core.anonymizer import DEFAULT_BASE_K
    from repro.dataset.agrawal import make_agrawal_table
    from repro.dataset.census import make_census_table
    from repro.dataset.io import write_table
    from repro.dataset.landsend import make_landsend_table
    from repro.durability import DurabilityConfig

    makers = {
        "landsend": make_landsend_table,
        "census": make_census_table,
        "agrawal": make_agrawal_table,
    }
    records = arguments.records if arguments.records is not None else 10_000
    k = arguments.k if arguments.k is not None else DEFAULT_BASE_K
    seed = arguments.seed if arguments.seed is not None else 1
    workers = arguments.workers
    if workers < 1:
        print("--workers must be at least 1", file=sys.stderr)
        return 2
    maker = makers[arguments.dataset]
    durability = (
        DurabilityConfig(arguments.dir) if arguments.dir is not None else None
    )
    profiling = arguments.profile or arguments.profile_json is not None
    if profiling:
        obs.enable()
    obs.AUDITOR.enable(reset=True)
    try:
        with tempfile.TemporaryDirectory() as staging:
            if arguments.dataset_file is not None:
                path = arguments.dataset_file
                # The schema (domains, dimensionality) still comes from the
                # dataset generator; the file supplies only the points.
                schema_table = maker(1, seed=seed)
            else:
                schema_table = maker(records, seed=seed)
                path = str(Path(staging) / f"{arguments.dataset}.records")
                write_table(schema_table, path)
            with api.open(
                schema_table, base_k=min(DEFAULT_BASE_K, k), durability=durability
            ) as handle:
                consumed = handle.load(path, workers=workers)
                result = handle.release(k=k)
                leaves = handle.engine.leaf_count()
                if durability is not None:
                    checkpoint = handle.checkpoint()
        print(
            f"anonymized {consumed:,} {arguments.dataset} records "
            f"with {workers} worker(s) at k={k}"
        )
        _print_release(result, leaves=leaves)
        if durability is not None:
            print(
                f"  durable:    checkpoint at LSN {checkpoint.lsn} "
                f"in {checkpoint.directory}"
            )
        _write_release(result, arguments.out)
        if profiling:
            _show_profile("anonymize", arguments.profile_json)
        return 0 if result.k_satisfied else 1
    finally:
        obs.AUDITOR.disable()


def _recover_command(arguments: argparse.Namespace) -> int:
    """``repro recover``: rebuild a durable ``--dir`` and publish a release.

    Prints the same ``digest:`` line as ``repro anonymize`` so the two can
    be compared textually: a recovery is correct iff the digest equals the
    one the uninterrupted run printed.
    """
    from repro import api, obs

    if arguments.dir is None:
        print("recover requires --dir (the durability directory)", file=sys.stderr)
        return 2
    obs.AUDITOR.enable(reset=True)
    try:
        handle = api.recover(arguments.dir)
        evidence = handle.recovery
        assert evidence is not None
        print(f"recovered {len(handle):,} records from {arguments.dir}")
        print(f"  snapshot:   LSN {evidence.snapshot_lsn}")
        print(
            f"  replayed:   {evidence.replayed_ops} op(s) "
            f"({evidence.skipped_ops} skipped, "
            f"{evidence.discarded_ops} discarded)"
        )
        k = arguments.k if arguments.k is not None else handle.base_k
        result = handle.release(k=k)
        _print_release(result, leaves=handle.engine.leaf_count())
        _write_release(result, arguments.out)
        handle.close()
        return 0 if result.k_satisfied else 1
    finally:
        obs.AUDITOR.disable()


def _checkpoint_command(arguments: argparse.Namespace) -> int:
    """``repro checkpoint``: offline snapshot of a durable ``--dir``.

    Recovers the directory (validating it in the process), writes a fresh
    checkpoint, and truncates the WAL — bounding the replay work of the
    *next* recovery.
    """
    from repro import api

    if arguments.dir is None:
        print(
            "checkpoint requires --dir (the durability directory)",
            file=sys.stderr,
        )
        return 2
    handle = api.recover(arguments.dir)
    checkpoint = handle.checkpoint()
    print(f"checkpoint written at LSN {checkpoint.lsn} in {checkpoint.directory}")
    print(f"  records:    {len(handle):,}")
    handle.close()
    return 0


def _stats_command(arguments: argparse.Namespace) -> None:
    """An instrumented end-to-end smoke: metered bulk load + one release.

    This is the observability "hello world": it exercises every hook —
    index splits, buffer flushes, pool traffic, page I/O, release
    generation — on a small Lands End workload and prints the metrics
    table (writing the snapshot with ``--profile-json``).
    """
    from repro import obs
    from repro.core.anonymizer import RTreeAnonymizer
    from repro.dataset.landsend import make_landsend_table
    from repro.dataset.record import Record
    from repro.storage.buffer_pool import BufferPool
    from repro.storage.pagefile import PageFile

    records = arguments.records if arguments.records is not None else 10_000
    k = arguments.k if arguments.k is not None else 10
    seed = arguments.seed if arguments.seed is not None else 1
    table = make_landsend_table(records, seed=seed)
    obs.enable()
    pagefile: PageFile[Record] = PageFile(page_bytes=4_096, record_bytes=36)
    pool: BufferPool[Record] = BufferPool(pagefile, 256 * 1_024)
    anonymizer = RTreeAnonymizer(
        table, base_k=min(5, k), leaf_capacity=2 * min(5, k) - 1, pool=pool
    )
    consumed = anonymizer.bulk_load(table)
    release = anonymizer.anonymize(k)
    pool.flush()
    print(
        f"Instrumented smoke: {consumed:,} records bulk-loaded, "
        f"{len(release.partitions):,} partitions at k={k}\n"
    )
    _show_profile("stats", arguments.profile_json)


def _show_profile(label: str, json_path: str | None) -> None:
    """Print the collected metrics; optionally append the JSONL snapshot."""
    from repro import obs

    print(obs.render_table())
    if json_path:
        with obs.JsonLinesSink(json_path) as sink:
            obs.OBS.emit(sink, label=label)
            print(f"\nmetrics snapshot appended to {sink.path}")
    obs.disable()


def _append_csv(result, path: str, experiment: str) -> None:
    """Append one experiment's rows to a CSV file, tagged by experiment id."""
    import csv
    import os

    fresh = not os.path.exists(path)
    with open(path, "a", newline="") as handle:
        writer = csv.writer(handle)
        if fresh:
            writer.writerow(["experiment", "title", *map(str, result.headers)])
        for row in result.rows:
            writer.writerow([experiment, result.title, *row])


def _applicable(driver: object, overrides: dict[str, int]) -> dict[str, int]:
    """Keep only the overrides the driver's signature accepts."""
    import inspect

    parameters = inspect.signature(driver).parameters  # type: ignore[arg-type]
    return {key: value for key, value in overrides.items() if key in parameters}


if __name__ == "__main__":
    raise SystemExit(main())
