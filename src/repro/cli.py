"""Command-line entry point: regenerate any paper experiment.

::

    repro list                     # what can be run
    repro table1                   # environment report (Table 1)
    repro fig10                    # Figure 10 at the default scaled size
    repro fig10 --records 50000    # bigger run
    repro all                      # every experiment, default sizes

Each experiment prints the same rows the paper plots; see EXPERIMENTS.md
for the recorded paper-vs-measured comparison.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.bench.figures import DRIVERS
from repro.bench.runner import environment_report


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Regenerate the experiments of 'K-Anonymization as Spatial Indexing'",
    )
    parser.add_argument(
        "experiment",
        help="experiment id: 'list', 'all', 'table1', or one of the figure ids",
    )
    parser.add_argument(
        "--records", type=int, default=None, help="override the record count"
    )
    parser.add_argument(
        "--k", type=int, default=None, help="override the anonymity parameter"
    )
    parser.add_argument(
        "--queries", type=int, default=None, help="override the query count"
    )
    parser.add_argument("--seed", type=int, default=None, help="override the RNG seed")
    parser.add_argument(
        "--csv",
        metavar="PATH",
        default=None,
        help="additionally write the result rows to a CSV file (plot-ready)",
    )
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    arguments = _build_parser().parse_args(argv)
    name = arguments.experiment.lower()
    if name == "list":
        print("Available experiments:")
        print("  table1  (system configuration report)")
        for key in DRIVERS:
            print(f"  {key}")
        print("  all     (run everything at default sizes)")
        return 0
    if name == "table1":
        environment_report().show()
        return 0
    overrides = {
        key: value
        for key, value in (
            ("records", arguments.records),
            ("k", arguments.k),
            ("queries", arguments.queries),
            ("seed", arguments.seed),
        )
        if value is not None
    }
    if name == "all":
        environment_report().show()
        for key, driver in DRIVERS.items():
            applicable = _applicable(driver, overrides)
            result = driver(**applicable)
            result.show()
            if arguments.csv:
                _append_csv(result, arguments.csv, key)
        return 0
    driver = DRIVERS.get(name)
    if driver is None:
        print(f"unknown experiment {name!r}; try 'repro list'", file=sys.stderr)
        return 2
    result = driver(**_applicable(driver, overrides))
    result.show()
    if arguments.csv:
        _append_csv(result, arguments.csv, name)
    return 0


def _append_csv(result, path: str, experiment: str) -> None:
    """Append one experiment's rows to a CSV file, tagged by experiment id."""
    import csv
    import os

    fresh = not os.path.exists(path)
    with open(path, "a", newline="") as handle:
        writer = csv.writer(handle)
        if fresh:
            writer.writerow(["experiment", "title", *map(str, result.headers)])
        for row in result.rows:
            writer.writerow([experiment, result.title, *row])


def _applicable(driver: object, overrides: dict[str, int]) -> dict[str, int]:
    """Keep only the overrides the driver's signature accepts."""
    import inspect

    parameters = inspect.signature(driver).parameters  # type: ignore[arg-type]
    return {key: value for key, value in overrides.items() if key in parameters}


if __name__ == "__main__":
    raise SystemExit(main())
