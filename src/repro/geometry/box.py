"""Axis-aligned n-dimensional bounding boxes.

A :class:`Box` is an immutable pair of coordinate vectors ``lows`` and
``highs`` with ``lows[i] <= highs[i]`` for every dimension ``i``.  Boxes are
closed on both ends, which matches the paper's interval notation: a record
generalized to ``Age = [20 - 30]`` matches a query range that touches either
endpoint.

Degenerate (zero-width) extents are common in anonymization because leaf
partitions frequently contain identical values on some attribute.  Plain
``area`` would collapse to zero for such boxes and make "minimum area
enlargement" split heuristics useless, so :meth:`Box.margin` (the sum of
extents, i.e. half the perimeter generalized to n dimensions) is provided as
the standard tie-breaker.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence

Point = Sequence[float]


@dataclass(frozen=True, slots=True)
class Box:
    """A closed axis-aligned box ``[lows[i], highs[i]]`` in every dimension."""

    lows: tuple[float, ...]
    highs: tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.lows) != len(self.highs):
            raise ValueError(
                f"dimension mismatch: {len(self.lows)} lows vs {len(self.highs)} highs"
            )
        if not self.lows:
            raise ValueError("boxes must have at least one dimension")
        for low, high in zip(self.lows, self.highs):
            if low > high:
                raise ValueError(f"inverted extent: low {low} > high {high}")

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_point(cls, point: Point) -> "Box":
        """The degenerate box containing exactly one point."""
        coords = tuple(float(value) for value in point)
        return cls(coords, coords)

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "Box":
        """The minimum bounding box of a non-empty collection of points."""
        iterator = iter(points)
        try:
            first = next(iterator)
        except StopIteration:
            raise ValueError("cannot bound an empty collection of points") from None
        lows = [float(value) for value in first]
        highs = list(lows)
        for point in iterator:
            for index, value in enumerate(point):
                if value < lows[index]:
                    lows[index] = float(value)
                elif value > highs[index]:
                    highs[index] = float(value)
        return cls(tuple(lows), tuple(highs))

    # -- basic properties --------------------------------------------------

    @property
    def dimensions(self) -> int:
        """Number of dimensions of the box."""
        return len(self.lows)

    def extent(self, dimension: int) -> float:
        """Width of the box along one dimension (0 for degenerate extents)."""
        return self.highs[dimension] - self.lows[dimension]

    def extents(self) -> tuple[float, ...]:
        """Widths along every dimension."""
        return tuple(h - l for l, h in zip(self.lows, self.highs))

    def center(self) -> tuple[float, ...]:
        """The midpoint of the box."""
        return tuple((l + h) / 2.0 for l, h in zip(self.lows, self.highs))

    def area(self) -> float:
        """Product of extents (the n-dimensional volume).

        Zero whenever any extent is degenerate; callers that need to rank
        near-degenerate boxes should fall back to :meth:`margin`.
        """
        result = 1.0
        for low, high in zip(self.lows, self.highs):
            result *= high - low
        return result

    def margin(self) -> float:
        """Sum of extents — the n-dimensional analogue of half the perimeter.

        This is the quantity the certainty-penalty metric rewards
        ("partitions with small perimeters", Xu et al.) and the robust
        tie-breaker for split heuristics on degenerate boxes.
        """
        return sum(high - low for low, high in zip(self.lows, self.highs))

    def discrete_volume(self) -> int:
        """Number of integer lattice cells covered, ``prod(extent + 1)``.

        Quasi-identifier domains in this reproduction are integer-coded
        (the paper recodes categorical values to integers), so the natural
        cell count of ``[20, 30]`` is 11, not 10.  Used by the KL-divergence
        metric's partition-uniform density model.
        """
        result = 1
        for low, high in zip(self.lows, self.highs):
            result *= int(round(high - low)) + 1
        return result

    # -- relationships -----------------------------------------------------

    def contains_point(self, point: Point) -> bool:
        """True if the point lies inside the (closed) box."""
        return all(
            low <= value <= high
            for low, value, high in zip(self.lows, point, self.highs)
        )

    def contains_box(self, other: "Box") -> bool:
        """True if ``other`` lies entirely inside this box."""
        return all(l1 <= l2 for l1, l2 in zip(self.lows, other.lows)) and all(
            h2 <= h1 for h1, h2 in zip(self.highs, other.highs)
        )

    def intersects(self, other: "Box") -> bool:
        """True if the closed boxes share at least one point.

        This is the §5.4 match predicate: an anonymized record (a box)
        matches a range query (another box) iff they intersect on every
        attribute.
        """
        return all(
            l1 <= h2 and l2 <= h1
            for l1, h1, l2, h2 in zip(self.lows, self.highs, other.lows, other.highs)
        )

    def intersection(self, other: "Box") -> "Box | None":
        """The overlapping box, or ``None`` when the boxes are disjoint."""
        lows = tuple(max(l1, l2) for l1, l2 in zip(self.lows, other.lows))
        highs = tuple(min(h1, h2) for h1, h2 in zip(self.highs, other.highs))
        if any(low > high for low, high in zip(lows, highs)):
            return None
        return Box(lows, highs)

    def union(self, other: "Box") -> "Box":
        """The minimum box enclosing both boxes."""
        return Box(
            tuple(min(l1, l2) for l1, l2 in zip(self.lows, other.lows)),
            tuple(max(h1, h2) for h1, h2 in zip(self.highs, other.highs)),
        )

    def union_point(self, point: Point) -> "Box":
        """The minimum box enclosing this box and one extra point."""
        return Box(
            tuple(min(low, float(value)) for low, value in zip(self.lows, point)),
            tuple(max(high, float(value)) for high, value in zip(self.highs, point)),
        )

    def enlargement(self, point: Point) -> float:
        """Margin increase needed to absorb ``point``.

        Margin (not area) based, so the heuristic stays informative on the
        degenerate boxes that dominate early index construction.
        """
        total = 0.0
        for low, high, value in zip(self.lows, self.highs, point):
            if value < low:
                total += low - value
            elif value > high:
                total += value - high
        return total

    # -- iteration & display -------------------------------------------------

    def intervals(self) -> Iterator[tuple[float, float]]:
        """Iterate ``(low, high)`` pairs per dimension."""
        return zip(self.lows, self.highs)

    def __str__(self) -> str:
        parts = ", ".join(
            f"[{low:g}, {high:g}]" for low, high in zip(self.lows, self.highs)
        )
        return f"Box({parts})"


def bounding_box(points: Iterable[Point]) -> Box:
    """Minimum bounding box of a non-empty collection of points."""
    return Box.from_points(points)


def union_all(boxes: Iterable[Box]) -> Box:
    """The minimum box enclosing every box in a non-empty collection."""
    iterator = iter(boxes)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("cannot union an empty collection of boxes") from None
    for box in iterator:
        result = result.union(box)
    return result
