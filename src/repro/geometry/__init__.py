"""n-dimensional axis-aligned geometry used by the spatial index.

The anonymization machinery treats every record as a point in the
quasi-identifier space and every partition (index node, equivalence class)
as an axis-aligned box.  :class:`~repro.geometry.box.Box` is the single
geometric primitive shared by the R+-tree, the Mondrian baseline, the
compaction procedure, the quality metrics and the query machinery.
"""

from repro.geometry.box import Box, bounding_box, union_all

__all__ = ["Box", "bounding_box", "union_all"]
