"""The compaction procedure (§4).

Compaction regenerates each partition's published generalization as the
*minimum bounding box* of its member records: numeric intervals shrink to
the observed min/max, categorical value sets shrink to the values that
actually occur (or, under a generalization hierarchy, to the lowest common
ancestor).  The result "leaves gaps in the domain" — an adversary learns
that no record sits in a gap — but never weakens k-anonymity, because the
partition membership is untouched; this is the information/utility tension
the paper discusses at length.

Compaction is algorithm-agnostic: it applies to partitions produced by the
R+-tree (where it is a no-op — the tree already publishes MBRs), by
Mondrian (where it is the difference between Figures 10(b)/(c)'s
"top-down" and "top-down compacted" curves), or by any other partitioner.
"""

from __future__ import annotations

from typing import Hashable, Sequence

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.schema import AttributeKind, Schema
from repro.hierarchy.tree import GeneralizationHierarchy, HierarchyNode


def compact_partitions(partitions: Sequence[Partition]) -> list[Partition]:
    """Shrink every partition's box to the MBR of its records.

    A single pass over each partition (min/max per attribute), matching the
    paper's claim that compaction cost is small relative to anonymization
    cost (Figure 9).
    """
    return [
        Partition.trusted(partition.records, partition.mbr())
        for partition in partitions
    ]


def compact_table(table: AnonymizedTable) -> AnonymizedTable:
    """The compacted version of an anonymized table (partitions preserved)."""
    return AnonymizedTable(table.schema, compact_partitions(table.partitions))


def compact_categorical(
    values: Sequence[Hashable], hierarchy: GeneralizationHierarchy
) -> HierarchyNode:
    """Compaction's categorical branch: the LCA of the occurring values.

    "Where generalization hierarchies are used in place of sets, the
    procedure chooses the lowest common ancestor in the hierarchy for all
    the values in P."
    """
    return hierarchy.lowest_common_ancestor(values)


def compact_value_set(values: Sequence[Hashable]) -> frozenset[Hashable]:
    """Compaction's set branch: drop every value that does not occur.

    "For each categorical attribute, the procedure removes all values from
    the set that do not occur in P."
    """
    if not values:
        raise ValueError("cannot compact an empty value set")
    return frozenset(values)


def describe_partition(
    partition: Partition, schema: Schema
) -> list[str]:
    """Human-readable generalized values, using hierarchies when available.

    Numeric attributes render as ``[low - high]`` (or the exact value when
    degenerate); categorical attributes with a hierarchy render as the LCA
    label of the covered codes — the display format of Figure 1(b).
    """
    rendered: list[str] = []
    for dimension, attribute in enumerate(schema.quasi_identifiers):
        low = partition.box.lows[dimension]
        high = partition.box.highs[dimension]
        if (
            attribute.kind is AttributeKind.CATEGORICAL
            and attribute.hierarchy is not None
        ):
            node = attribute.hierarchy.decode_interval(int(low), int(high))
            rendered.append(str(node.label))
        elif low == high:
            rendered.append(f"{low:g}")
        else:
            rendered.append(f"[{low:g} - {high:g}]")
    return rendered
