"""Partitions and anonymized tables.

A :class:`Partition` is one equivalence class of a k-anonymous release: a
group of records that all publish the same generalized quasi-identifier
``box``.  An :class:`AnonymizedTable` is an ordered collection of partitions
plus the schema; it is what every quality metric, query evaluator and
privacy verifier consumes, regardless of which algorithm (R+-tree,
Mondrian, compacted or not) produced it.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.dataset.record import Record
from repro.dataset.schema import Schema
from repro.geometry.box import Box


@dataclass(frozen=True)
class Partition:
    """One equivalence class: records plus their published generalization.

    ``box`` is what the data recipient sees for every record in the group —
    a closed interval per quasi-identifier attribute.  Invariant: the box
    contains every member record's point (the box may be *looser* than the
    minimum bounding box; compaction is what tightens it).
    """

    records: tuple[Record, ...]
    box: Box

    def __post_init__(self) -> None:
        if not self.records:
            raise ValueError("a partition must contain at least one record")
        for record in self.records:
            if not self.box.contains_point(record.point):
                raise ValueError(
                    f"partition box {self.box} does not contain record "
                    f"{record.rid} at {record.point}"
                )

    @classmethod
    def trusted(cls, records: tuple[Record, ...], box: Box) -> "Partition":
        """Construct without the containment check.

        For internal callers whose box is *derived from the records* (an
        MBR, a region that routed them, a union of their leaves' boxes), so
        containment holds by construction.  External callers should use the
        validating constructor.
        """
        partition = object.__new__(cls)
        object.__setattr__(partition, "records", records)
        object.__setattr__(partition, "box", box)
        return partition

    def __len__(self) -> int:
        return len(self.records)

    @property
    def size(self) -> int:
        return len(self.records)

    def mbr(self) -> Box:
        """The minimum bounding box of the member records (the compacted box)."""
        return Box.from_points(record.point for record in self.records)

    def with_box(self, box: Box) -> "Partition":
        """A copy of this partition publishing a different box."""
        return Partition(self.records, box)

    def rids(self) -> frozenset[int]:
        """Member record ids (used by the multi-release attack simulator)."""
        return frozenset(record.rid for record in self.records)


class AnonymizedTable:
    """An ordered set of partitions — one k-anonymous release of a table."""

    def __init__(self, schema: Schema, partitions: Sequence[Partition]) -> None:
        if not partitions:
            raise ValueError("an anonymized table needs at least one partition")
        expected = schema.dimensions
        for partition in partitions:
            if partition.box.dimensions != expected:
                raise ValueError(
                    f"partition box has {partition.box.dimensions} dimensions, "
                    f"schema expects {expected}"
                )
        self._schema = schema
        self._partitions = tuple(partitions)

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def partitions(self) -> tuple[Partition, ...]:
        return self._partitions

    def __len__(self) -> int:
        """Number of partitions (use :attr:`record_count` for records)."""
        return len(self._partitions)

    def __iter__(self) -> Iterator[Partition]:
        return iter(self._partitions)

    @property
    def record_count(self) -> int:
        return sum(len(partition) for partition in self._partitions)

    @property
    def k_effective(self) -> int:
        """The smallest partition size — the strongest k this table satisfies."""
        return min(len(partition) for partition in self._partitions)

    def partition_of(self, rid: int) -> Partition:
        """The partition containing a record id (KeyError when absent)."""
        for partition in self._partitions:
            for record in partition.records:
                if record.rid == rid:
                    return partition
        raise KeyError(rid)

    def rid_to_partition(self) -> dict[int, int]:
        """Map record id -> partition index, for bulk correlation analyses."""
        mapping: dict[int, int] = {}
        for index, partition in enumerate(self._partitions):
            for record in partition.records:
                mapping[record.rid] = index
        return mapping

    def rows(self) -> Iterator[tuple[Box, tuple[object, ...]]]:
        """The published rows: each record's generalized box plus sensitive values.

        This is the release format of Figure 1(b): quasi-identifiers
        replaced by intervals, sensitive attributes passed through.
        """
        for partition in self._partitions:
            for record in partition.records:
                yield partition.box, record.sensitive

    def summary(self) -> str:
        """A short human-readable description (for examples and the CLI)."""
        sizes = [len(partition) for partition in self._partitions]
        return (
            f"{self.record_count} records in {len(self._partitions)} partitions, "
            f"sizes {min(sizes)}..{max(sizes)} (k-effective {self.k_effective})"
        )


def release_digest(table: AnonymizedTable) -> str:
    """A sha256 fingerprint of a release's published content.

    Hashes every partition's box (repr of the low/high tuples) and sorted
    member rids, in partition order.  Two releases digest equal iff they
    publish the same partitions with the same boxes in the same order —
    the property the parallel engine's determinism guarantee promises and
    the serial/parallel differential checks (`repro anonymize` prints this
    digest so CI can compare runs across worker counts textually).
    """
    hasher = hashlib.sha256()
    for partition in table.partitions:
        box = partition.box
        hasher.update(repr((tuple(box.lows), tuple(box.highs))).encode())
        hasher.update(repr(sorted(partition.rids())).encode())
    return hasher.hexdigest()
