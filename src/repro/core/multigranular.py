"""Multi-granular anonymized releases (§3).

A data owner may hand a 5-anonymous table to a trusted research group and a
50-anonymous one to the open Internet.  Releasing several anonymizations of
the *same* table invites intersection attacks, so §3 develops the k-bound
condition (Definition 2): a record is k-bound when some fixed group of at
least k records accompanies it into every partition of every release; when
every record is k-bound, k-anonymity survives arbitrary collusion
(Lemma 1).

Two generators satisfy the condition by construction on an R+-tree, since
both only ever publish unions of whole leaves:

* :func:`hierarchical_release` — each partition is one node at a chosen
  tree level (granularities limited to the occupancy products down the
  tree, §3.1);
* the leaf-scan releases of
  :meth:`repro.core.anonymizer.RTreeAnonymizer.anonymize` — any
  granularity ``k1 >= k`` (§3.2).

:func:`verify_k_bound` checks the condition *empirically* over any set of
releases (from any algorithm) by intersecting each record's partitions —
this is also the adversary's best strategy, so the check doubles as an
attack simulation (see :mod:`repro.privacy.attack`).
"""

from __future__ import annotations

from typing import Sequence

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.schema import Schema
from repro.geometry.box import Box
from repro.index.node import LeafNode, Node
from repro.index.rtree import RPlusTree


def hierarchical_release(
    tree: RPlusTree, level: int, schema: Schema
) -> AnonymizedTable:
    """The §3.1 release: one partition per node at the given tree level.

    Level 0 publishes the leaves themselves (granularity = base k); higher
    levels publish whole subtrees, multiplying the guaranteed occupancy by
    the minimum fanout per level climbed.
    """
    nodes = tree.nodes_at_level(level)
    if not nodes:
        raise ValueError(f"tree has no nodes at level {level}")
    partitions = []
    for node in nodes:
        records = tuple(_records_under(node))
        if not records:
            continue
        partitions.append(
            Partition.trusted(records, Box.from_points(r.point for r in records))
        )
    return AnonymizedTable(schema, partitions)


def hierarchical_granularities(tree: RPlusTree) -> list[tuple[int, int]]:
    """``(level, guaranteed granularity)`` pairs available from the tree.

    The guaranteed granularity of a level is the *smallest* record count of
    any node at that level — the k the release provably satisfies.
    """
    result: list[tuple[int, int]] = []
    for level in range(tree.height + 1):
        nodes = tree.nodes_at_level(level)
        if not nodes:
            continue
        result.append((level, min(node.record_count() for node in nodes)))
    return result


def verify_k_bound(releases: Sequence[AnonymizedTable], k: int) -> bool:
    """Check Lemma 1's premise over a set of releases of one table.

    For every record appearing in the releases, intersect the member sets
    of the partitions that contain it; the record is k-bound over this set
    of releases iff the intersection holds at least ``k`` records.  Returns
    ``True`` when every record passes.
    """
    return min_candidate_set_size(releases) >= k


def min_candidate_set_size(releases: Sequence[AnonymizedTable]) -> int:
    """The smallest per-record candidate set an intersecting adversary gets.

    This is the quantity an intersection attack drives down: the adversary
    who holds every release can narrow a record's company to exactly the
    intersection of its partitions.  k-anonymity over the set of releases
    holds iff this minimum is at least k.
    """
    if not releases:
        raise ValueError("need at least one release")
    candidate: dict[int, frozenset[int]] = {}
    for release in releases:
        for partition in release.partitions:
            members = partition.rids()
            for rid in members:
                existing = candidate.get(rid)
                candidate[rid] = members if existing is None else existing & members
    return min(len(group) for group in candidate.values())


def _records_under(node: Node):
    if isinstance(node, LeafNode):
        yield from node.records
    else:
        for child in node.children():  # type: ignore[union-attr]
            yield from _records_under(child)
