"""The leaf-scan algorithm (Figure 5, §3.2).

Given the spatially ordered leaf nodes of the index (each already holding
at least the base ``k`` records) and a requested granularity ``k1``, scan
the leaves in order and concatenate *whole leaves* into partitions until
each partition holds at least ``k1`` records; fold a too-small tail into the
final partition.

Because every partition is a union of whole leaves, every record stays
"bound" (Definition 2) to its leaf-mates, so any collection of leaf-scan
releases at different granularities preserves the base k-anonymity
(Lemma 1).  And because the scan is a single pass over the leaves, its cost
is independent of ``k1`` — which is why the R+-tree curve in Figure 7(a)
is flat across anonymity levels.

An optional ``constraint`` predicate generalizes the stopping rule: a
partition closes only once it holds ``k1`` records *and* satisfies the
constraint (e.g. distinct l-diversity), implementing the paper's remark
that "the R-tree splitting routine can incorporate, for example,
(α,k)-anonymity or l-diversity just as easily as vanilla k-anonymity".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Sequence

from repro.dataset.record import Record
from repro.index.node import Cut, InternalNode, LeafNode

if TYPE_CHECKING:
    from repro.index.rtree import RPlusTree

#: A partition-acceptance predicate (e.g. an l-diversity check).
Constraint = Callable[[Sequence[Record]], bool]


def leaf_scan(
    leaf_groups: Sequence[Sequence[Record]],
    k1: int,
    constraint: Constraint | None = None,
) -> list[list[Record]]:
    """Regroup ordered leaf record groups into partitions of at least ``k1``.

    ``leaf_groups`` must be the index leaves in sequential (spatial) order;
    each group is consumed whole.  Raises ``ValueError`` when the total
    record count cannot support a single partition of ``k1`` records, or
    when the constraint cannot be satisfied even by the union of everything.
    """
    if k1 < 1:
        raise ValueError("granularity k1 must be at least 1")
    total = sum(len(group) for group in leaf_groups)
    if total < k1:
        raise ValueError(
            f"cannot form a {k1}-anonymous release from {total} records"
        )

    def satisfied(records: list[Record]) -> bool:
        if len(records) < k1:
            return False
        return constraint is None or constraint(records)

    partitions: list[list[Record]] = []
    current: list[Record] = []
    remaining = total
    for group in leaf_groups:
        current.extend(group)
        remaining -= len(group)
        if satisfied(current):
            # LS4: if the leftover tail cannot form its own partition, keep
            # absorbing it into this (final) one instead of closing now.
            if 0 < remaining < k1:
                continue
            partitions.append(current)
            current = []
    if current:
        if satisfied(current):
            partitions.append(current)
        elif partitions:
            partitions[-1].extend(current)
        else:
            raise ValueError(
                "the constraint cannot be satisfied even by a single "
                "partition holding every record"
            )
    return partitions


def subtree_scan(
    tree: "RPlusTree",
    k1: int,
    constraint: Constraint | None = None,
) -> list[list[Record]]:
    """Regroup leaves into partitions of at least ``k1``, aligned with the cuts.

    A quality-improving refinement of :func:`leaf_scan` with the identical
    privacy guarantee: partitions are still unions of whole leaves taken in
    the tree's sequential order, so every record stays bound to its
    leaf-mates (Lemma 1 applies unchanged).  The difference is *where* group
    boundaries fall — on the boundaries of the binary cut hierarchy whenever
    possible, so that a group's records span a contiguous axis-aligned
    region and its minimum bounding box stays disjoint from its neighbours'.
    The purely sequential Figure 5 scan can chain leaves across cut
    boundaries, producing L-shaped unions whose bounding boxes overlap and
    measurably inflate COUNT-query error (see the ablation bench).

    The rule: walk the global cut hierarchy depth-first; emit any subtree
    whose record count (plus any carried small remainder) lands in
    ``[k1, 2*k1)`` and satisfies the constraint; recurse into larger
    subtrees; carry smaller ones into the next group.
    """
    if k1 < 1:
        raise ValueError("granularity k1 must be at least 1")
    if tree.root is None or len(tree) < k1:
        raise ValueError(
            f"cannot form a {k1}-anonymous release from {len(tree)} records"
        )

    def satisfied(records: list[Record]) -> bool:
        if len(records) < k1:
            return False
        return constraint is None or constraint(records)

    groups: list[list[Record]] = []
    carry: list[Record] = []

    def records_under(item: object) -> list[Record]:
        if isinstance(item, LeafNode):
            return list(item.records)
        if isinstance(item, InternalNode):
            return records_under(item.cuts.inner)
        assert isinstance(item, Cut)
        return records_under(item.left.inner) + records_under(item.right.inner)

    def count_under(item: object) -> int:
        if isinstance(item, LeafNode):
            return len(item.records)
        if isinstance(item, InternalNode):
            return count_under(item.cuts.inner)
        assert isinstance(item, Cut)
        return count_under(item.left.inner) + count_under(item.right.inner)

    def walk(item: object) -> None:
        nonlocal carry
        if isinstance(item, InternalNode):
            walk(item.cuts.inner)
            return
        if isinstance(item, LeafNode):
            candidate = carry + list(item.records)
            if satisfied(candidate):
                groups.append(candidate)
                carry = []
            else:
                carry = candidate
            return
        assert isinstance(item, Cut)
        total = len(carry) + count_under(item)
        if total < k1:
            carry.extend(records_under(item))
            return
        if total < 2 * k1:
            candidate = carry + records_under(item)
            if satisfied(candidate):
                groups.append(candidate)
                carry = []
            else:
                carry = candidate
            return
        walk(item.left.inner)
        walk(item.right.inner)

    walk(tree.root)
    if carry:
        if satisfied(carry):
            groups.append(carry)
        elif groups:
            groups[-1].extend(carry)
        else:
            raise ValueError(
                "the constraint cannot be satisfied even by a single "
                "partition holding every record"
            )
    return groups
