"""The paper's primary contribution: index-based k-anonymization.

:class:`~repro.core.anonymizer.RTreeAnonymizer` wraps the R+-tree into an
anonymization service: bulk-load a table (buffer-tree, §2.1), insert or
delete records incrementally (§2.2), and emit k-anonymous tables at any
granularity ``k1 >= base k`` via the leaf-scan algorithm (§3.2) — all while
the tree's occupancy invariant keeps every emitted partition at least
``k`` strong.  The compaction procedure (§4) and the multi-granular release
machinery (§3) live here too.
"""

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_partitions, compact_table
from repro.core.leafscan import leaf_scan
from repro.core.multigranular import (
    hierarchical_granularities,
    hierarchical_release,
    verify_k_bound,
)
from repro.core.partition import AnonymizedTable, Partition

__all__ = [
    "AnonymizedTable",
    "Partition",
    "RTreeAnonymizer",
    "compact_partitions",
    "compact_table",
    "hierarchical_granularities",
    "hierarchical_release",
    "leaf_scan",
    "verify_k_bound",
]
