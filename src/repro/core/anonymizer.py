"""The R+-tree anonymizer — the paper's system, assembled.

:class:`RTreeAnonymizer` owns one R+-tree built at a *base* anonymity level
(the paper uses base k = 5) and serves three jobs:

* **bulk anonymization** (§2.1): load a whole table through the buffer-tree
  loader;
* **incremental anonymization** (§2.2): insert/delete records or batches at
  any time — index maintenance keeps the leaf partitioning k-anonymous;
* **release generation** (§3.2): emit a k1-anonymous table for any
  ``k1 >= base k`` by leaf-scanning, optionally under an extra per-partition
  constraint (l-diversity etc.), with boxes either compacted (MBRs — the
  index's native output) or uncompacted (the leaves' region boxes).

Because every release is built from whole leaves, any collection of
releases at different granularities preserves base-k anonymity under
collusion (Lemma 1) — verified empirically by
:func:`repro.privacy.attack.intersection_attack`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.core.leafscan import Constraint, leaf_scan, subtree_scan
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.durability.manager import DurabilityConfig, DurabilityManager
from repro.geometry.box import Box
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.leaf_store import PagedLeafStore
from repro.index.node import Cut, Node, Slot
from repro.index.rtree import (
    DEFAULT_CAPACITY_FACTOR,
    DEFAULT_MAX_FANOUT,
    RPlusTree,
)
from repro.index.split import SplitPolicy
from repro.obs import AUDITOR, OBS, TRACE
from repro.storage.buffer_pool import BufferPool

#: The paper's base anonymity level for bulk loads (§5.1).
DEFAULT_BASE_K = 5


def build_compacted_partitions(
    groups: Sequence[Sequence[Record]], use_kernels: bool | None = None
) -> list[Partition]:
    """Each record group as a partition under its minimum bounding box.

    The one shared publish path for compacted releases: both
    :meth:`RTreeAnonymizer._emit_release` and the sharded serving
    cluster's seam assembly (:mod:`repro.cluster.seams`) build their
    partitions here, so a cluster release and a single-writer release
    over the same groups are the same objects box for box.  With kernels
    on, one ``reduceat`` pair over all groups' points replaces the
    per-group per-record Python MBR folds; the resulting boxes are
    bit-identical on integer-coded data (see :mod:`repro.kernels.boxes`
    on signed zeros).
    """
    from repro.kernels.config import kernels_enabled

    if kernels_enabled(use_kernels) and groups:
        import numpy as np

        from repro.kernels.boxes import group_mbrs

        starts: list[int] = []
        offset = 0
        for group in groups:
            starts.append(offset)
            offset += len(group)
        flat = np.array(
            [r.point for group in groups for r in group],
            dtype=np.float64,
        )
        boxes = group_mbrs(flat, starts)
        if OBS.enabled:
            OBS.count("kernels.group_mbrs", len(boxes))
        return [
            Partition.trusted(tuple(group), box)
            for group, box in zip(groups, boxes)
        ]
    return [
        Partition.trusted(
            tuple(group), Box.from_points(r.point for r in group)
        )
        for group in groups
    ]


def _kernel_record_stream(
    reader, batch_size: int, first_rid: int  # noqa: ANN001 - RecordFileReader
) -> Iterable[Record]:
    """File-order record stream via the columnar page decoder.

    Yields exactly the records of ``reader.iter_records`` — same rids
    (file position + ``first_rid``), same float points (int32 → float64 is
    exact either way) — but pages are decoded with one ``frombuffer`` each
    instead of per-record ``struct`` unpacking.
    """
    from repro.obs import OBS as _OBS

    for position, points in reader.iter_point_batches(batch_size):
        if _OBS.enabled:
            _OBS.count("kernels.decoded_pages")
            _OBS.count("kernels.decoded_records", points.shape[0])
        rid = first_rid + position
        for row in points.tolist():
            yield Record(rid, tuple(row))
            rid += 1


class RTreeAnonymizer:
    """Scalable, incremental k-anonymization via a spatial index."""

    def __init__(
        self,
        schema_table: Table,
        base_k: int = DEFAULT_BASE_K,
        capacity_factor: int = DEFAULT_CAPACITY_FACTOR,
        max_fanout: int = DEFAULT_MAX_FANOUT,
        split_policy: SplitPolicy | None = None,
        pool: BufferPool[Record] | None = None,
        leaf_capacity: int | None = None,
        durability: DurabilityConfig | None = None,
    ) -> None:
        """Create an anonymizer for a table's schema (no records loaded yet).

        ``schema_table`` supplies the schema and the attribute domains used
        to normalize split decisions; pass the actual data table and then
        call :meth:`bulk_load` (or construct via :meth:`anonymize_table`).
        ``pool`` attaches the simulated storage layer for I/O accounting.
        ``durability`` opts into crash safety: every acknowledged mutation
        is written ahead to a log in ``durability.dir`` and
        :meth:`checkpoint`/:func:`repro.durability.recovery.recover` bound
        the replay work (see docs/API.md).  The directory must be fresh —
        recover existing state instead of re-opening it blind.
        """
        self._schema = schema_table.schema
        domain_extents = [
            attribute.domain_extent for attribute in self._schema.quasi_identifiers
        ]
        leaf_store = PagedLeafStore(pool) if pool is not None else None
        self._tree = RPlusTree(
            dimensions=self._schema.dimensions,
            k=base_k,
            capacity_factor=capacity_factor,
            max_fanout=max_fanout,
            split_policy=split_policy,
            domain_extents=domain_extents,
            leaf_store=leaf_store,
            leaf_capacity=leaf_capacity,
        )
        self._pool = pool
        self._loader = BufferTreeLoader(self._tree, pool=pool)
        self._durability: DurabilityManager | None = None
        if durability is not None:
            self._durability = DurabilityManager.create(
                durability,
                self._tree,
                self._schema,
                io_stats=self.io_stats(),
            )

    # -- construction shortcuts ------------------------------------------------

    @classmethod
    def _from_restored(
        cls,
        schema: Schema,
        tree: RPlusTree,
        pool: BufferPool[Record] | None = None,
    ) -> "RTreeAnonymizer":
        """Assemble an anonymizer around an already-built tree (recovery).

        Bypasses tree construction entirely; the durability manager (if
        any) is attached afterwards by the recovery driver via
        :meth:`_attach_durability`.
        """
        anonymizer = cls.__new__(cls)
        anonymizer._schema = schema
        anonymizer._pool = pool
        anonymizer._tree = tree
        if pool is not None:
            tree.adopt_leaf_store(PagedLeafStore(pool))
        anonymizer._loader = BufferTreeLoader(tree, pool=pool)
        anonymizer._durability = None
        return anonymizer

    def _attach_durability(self, manager: DurabilityManager) -> None:
        self._durability = manager

    @classmethod
    def anonymize_table(
        cls,
        table: Table,
        k: int,
        base_k: int = DEFAULT_BASE_K,
        **kwargs: object,
    ) -> AnonymizedTable:
        """One-shot: bulk-load a table and emit its k-anonymous release."""
        anonymizer = cls(table, base_k=min(base_k, k), **kwargs)  # type: ignore[arg-type]
        anonymizer.bulk_load(table)
        return anonymizer.anonymize(k)

    # -- data ingestion -------------------------------------------------------------

    def bulk_load(self, records: Iterable[Record] | Table) -> int:
        """Bulk-anonymize a record stream via the buffer-tree loader (§2.1).

        Returns the number of records the loader consumed.
        """
        stream = records.records if isinstance(records, Table) else records
        with OBS.span("anonymizer.bulk_load"), TRACE.span(
            "anonymizer.bulk_load", "anonymizer"
        ):
            if self._durability is None:
                return self._loader.load(stream)
            # A bulk load is one WAL batch: members are logged as the
            # loader consumes them and become durable only at the final
            # batch-commit — a crash mid-load discards the whole
            # (unacknowledged) load rather than half of it.
            self._durability.begin_batch()
            try:
                consumed = self._loader.load(self._log_batch_members(stream))
            except BaseException:
                self._durability.abort_batch()
                raise
            self._durability.commit_batch()
            return consumed

    def _log_batch_members(self, stream: Iterable[Record]) -> Iterable[Record]:
        assert self._durability is not None
        for record in stream:
            self._durability.log_batched_insert(record)
            yield record

    def bulk_load_file(
        self,
        path: str,
        batch_size: int = 8_192,
        first_rid: int = 0,
        workers: int | None = None,
        use_kernels: bool | None = None,
    ) -> int:
        """Bulk-anonymize straight from a binary record file (§5.2).

        Streams the file through the buffer-tree loader in ``batch_size``
        chunks — the staging input is never materialized as a table, which
        is how the paper's larger-than-memory runs feed the loader.
        Returns the number of records the loader actually consumed (which
        the file's header may misreport on a short read).

        ``workers`` switches on the sharded parallel engine
        (:mod:`repro.parallel`): the file is split into contiguous
        Hilbert-key shard ranges, a worker pool keys and sorts each shard
        from its own slice of the file, and the loader replays the stitched
        Hilbert-ordered stream.  The resulting index is bit-for-bit
        identical for *every* worker count (``workers=1`` runs the same
        pipeline in-process and is the serial reference).  Note the sharded
        path loads in Hilbert order, not file order, so ``workers=None``
        (the legacy file-order stream) builds a different — equally valid —
        tree than ``workers=1``.
        """
        from repro.dataset.io import RecordFileReader

        reader = RecordFileReader(path)
        if reader.dimensions != self._schema.dimensions:
            raise ValueError(
                f"{path} holds {reader.dimensions}-dimensional records, "
                f"schema expects {self._schema.dimensions}"
            )
        with OBS.span("anonymizer.bulk_load_file"), TRACE.span(
            "anonymizer.bulk_load_file",
            "anonymizer",
            path=path,
            workers=workers or 0,
        ):
            if workers is None:
                from repro.kernels.config import kernels_enabled

                if kernels_enabled(use_kernels):
                    stream: Iterable[Record] = _kernel_record_stream(
                        reader, batch_size, first_rid
                    )
                else:
                    stream = reader.iter_records(batch_size, first_rid=first_rid)
            else:
                from repro.parallel import scan_file_shards, shard_record_stream

                scan = scan_file_shards(
                    path,
                    self._schema.domain_lows(),
                    self._schema.domain_highs(),
                    workers=workers,
                    batch_size=batch_size,
                    first_rid=first_rid,
                    use_kernels=use_kernels,
                )
                stream = shard_record_stream(scan.runs)
            if self._durability is None:
                return self._loader.load(stream)
            self._durability.begin_batch()
            try:
                consumed = self._loader.load(self._log_batch_members(stream))
            except BaseException:
                self._durability.abort_batch()
                raise
            self._durability.commit_batch()
            return consumed

    def insert_batch(self, records: Iterable[Record] | Table) -> int:
        """Incrementally anonymize a new batch (§2.2, Figure 7(b)).

        Uses the same buffered path as the bulk load so batch cost is
        amortized; drains before returning so the partitioning immediately
        reflects the batch.
        """
        stream = records.records if isinstance(records, Table) else records
        if self._durability is None:
            consumed = self._loader.insert_batch(stream)
            self._loader.drain()
            return consumed
        self._durability.begin_batch()
        try:
            consumed = self._loader.insert_batch(self._log_batch_members(stream))
            self._loader.drain()
        except BaseException:
            self._durability.abort_batch()
            raise
        self._durability.commit_batch()
        return consumed

    def insert(self, record: Record) -> None:
        """Insert one record through the ordinary index-maintenance path.

        Apply-then-log, with compensation: if the write-ahead log append
        fails (disk full, I/O error) the in-memory insert is rolled back
        before the exception propagates, so memory and the WAL never
        diverge — a checkpoint after the failure would otherwise persist an
        operation that a recovery from the *previous* checkpoint replays
        without.
        """
        self._tree.insert(record)
        if self._durability is not None:
            try:
                self._durability.log_insert(record)
            except BaseException:
                self._tree.delete(record.rid, record.point)
                raise

    def delete(self, rid: int, point: Sequence[float]) -> Record:
        """Delete one record; the occupancy floor is restored before returning.

        Compensates like :meth:`insert`: a failed WAL append reinserts the
        removed record so the acknowledged state equals the logged state.
        """
        removed = self._tree.delete(rid, point)
        if self._durability is not None:
            try:
                self._durability.log_delete(rid, point)
            except BaseException:
                self._tree.insert(removed)
                raise
        return removed

    def update(
        self, rid: int, old_point: Sequence[float], record: Record
    ) -> Record:
        """Update a record's quasi-identifiers (a move between leaves).

        Compensates like :meth:`insert`: a failed WAL append reverses the
        move (the new record comes out, the replaced one goes back in).
        """
        replaced = self._tree.update(rid, old_point, record)
        if self._durability is not None:
            try:
                self._durability.log_update(rid, old_point, record)
            except BaseException:
                self._tree.update(record.rid, record.point, replaced)
                raise
        return replaced

    # -- releases ------------------------------------------------------------------

    def anonymize(
        self,
        k: int,
        compacted: bool = True,
        constraint: Constraint | None = None,
        strategy: str = "subtree",
        use_kernels: bool | None = None,
    ) -> AnonymizedTable:
        """Emit a k-anonymous release at granularity ``k`` (leaf scan, §3.2).

        ``k`` must be at least the tree's base k.  ``compacted=True``
        publishes each partition's minimum bounding box (the index's native
        MBR output); ``compacted=False`` publishes the union of the member
        leaves' *region* boxes — the "uncompacted" shape a gap-free
        partitioner would emit, kept for apples-to-apples metric studies.

        ``strategy`` selects how whole leaves are grouped into partitions:
        ``"subtree"`` (default) aligns group boundaries with the cut
        hierarchy so partition boxes stay disjoint;
        ``"sequential"`` is the literal Figure 5 scan.  Both carry the same
        Lemma 1 multi-release guarantee (whole leaves, sequential order).
        ``"hilbert"`` instead sorts every record by ``(Hilbert key, rid)``
        and chunks the global order — a *tree-shape-independent* release
        (two indexes holding the same records publish identical output),
        which is what the sharded serving cluster reproduces shard by
        shard; it requires ``compacted=True`` and no constraint.
        """
        if k < self._tree.k:
            raise ValueError(
                f"requested granularity {k} is below the base k "
                f"{self._tree.k} the index was built with"
            )
        # A release must reflect every record handed to this anonymizer:
        # records parked in loader buffers (a caller used the loader without
        # drain()) would silently be missing from the "k-anonymous" output,
        # and a tree still in bulk mode may hold over-full, unsplit leaves.
        if self._loader.buffered_records:
            self._loader.drain()
        elif self._tree.in_bulk_mode:
            self._tree.finish_bulk()
        if len(self._tree) < k:
            raise ValueError(
                f"cannot emit a {k}-anonymous release from {len(self._tree)} records"
            )
        with OBS.span("anonymizer.anonymize"), TRACE.span(
            "anonymizer.release", "anonymizer", k=k, strategy=strategy
        ):
            return self._emit_release(
                k, compacted, constraint, strategy, use_kernels
            )

    def _emit_release(
        self,
        k: int,
        compacted: bool,
        constraint: Constraint | None,
        strategy: str,
        use_kernels: bool | None = None,
    ) -> AnonymizedTable:
        leaves = self._tree.leaves()
        if strategy == "subtree":
            groups = subtree_scan(self._tree, k, constraint)
        elif strategy == "sequential":
            groups = leaf_scan([leaf.records for leaf in leaves], k, constraint)
        elif strategy == "hilbert":
            # The order-based strategy: sort *all* records by (Hilbert
            # key, rid) over the schema's domain box and chunk the global
            # order with the k-floor.  Unlike the leaf-aligned strategies
            # the output is a pure function of the record set — two trees
            # holding the same records release identically however they
            # were built.  That tree-shape independence is what lets the
            # sharded serving cluster (repro.cluster) reproduce this exact
            # release from per-shard runs stitched at the seams.
            if constraint is not None:
                raise ValueError(
                    "the 'hilbert' strategy does not support per-partition "
                    "constraints; use 'subtree' or 'sequential'"
                )
            if not compacted:
                raise ValueError(
                    "the 'hilbert' strategy groups a global record order, "
                    "not whole leaves, so it has no leaf regions to "
                    "publish; use compacted=True"
                )
            from repro.index.bulk import chunk_with_floor, hilbert_ordered

            records = [
                record for leaf in leaves for record in leaf.records
            ]
            ordered = hilbert_ordered(
                records,
                self._schema.domain_lows(),
                self._schema.domain_highs(),
                use_kernels=use_kernels,
            )
            groups = chunk_with_floor(ordered, k)
        else:
            raise ValueError(f"unknown grouping strategy {strategy!r}")
        if compacted:
            partitions = build_compacted_partitions(groups, use_kernels)
        else:
            regions = self.leaf_regions()
            partitions = []
            cursor = 0
            for group in groups:
                # Union the regions of the leaves this group consumed.
                consumed = 0
                boxes: list[Box] = []
                while consumed < len(group):
                    boxes.append(regions[cursor])
                    consumed += len(leaves[cursor].records)
                    cursor += 1
                box = boxes[0]
                for extra in boxes[1:]:
                    box = box.union(extra)
                partitions.append(Partition.trusted(tuple(group), box))
        if OBS.enabled:
            OBS.count("anonymizer.releases")
            OBS.count("anonymizer.partitions", len(partitions))
        release = AnonymizedTable(self._schema, partitions)
        # Every publish runs through the release auditor when it is on: the
        # audit record (k verdict, occupancy/volume distributions, quality
        # metrics) is the per-release evidence trail, and strict mode turns
        # a failed audit into an exception at this very publish site.
        if AUDITOR.enabled:
            AUDITOR.on_release(release, k, base_k=self._tree.k)
        return release

    def leaf_regions(self) -> list[Box]:
        """The leaves' disjoint region boxes, in leaf order.

        Regions are reconstructed by pushing the schema's domain box down
        through the cut trees; they tile the domain exactly (tested by the
        property suite) and are what "uncompacted" releases publish.
        """
        root = self._tree.root
        if root is None:
            return []
        domain = Box(self._schema.domain_lows(), self._schema.domain_highs())
        regions: list[Box] = []
        self._collect_regions(root, domain, regions)
        return regions

    def _collect_regions(self, node: Node, region: Box, out: list[Box]) -> None:
        if node.is_leaf:
            out.append(region)
            return
        self._collect_cut_regions(node.cuts, region, out)  # type: ignore[union-attr]

    def _collect_cut_regions(self, slot: Slot, region: Box, out: list[Box]) -> None:
        item = slot.inner
        if isinstance(item, Cut):
            dimension, value = item.dimension, item.value
            left_highs = list(region.highs)
            left_highs[dimension] = min(value, region.highs[dimension])
            right_lows = list(region.lows)
            right_lows[dimension] = max(value, region.lows[dimension])
            self._collect_cut_regions(
                item.left, Box(region.lows, tuple(left_highs)), out
            )
            self._collect_cut_regions(
                item.right, Box(tuple(right_lows), region.highs), out
            )
        else:
            self._collect_regions(item, region, out)

    # -- durability --------------------------------------------------------------------

    @property
    def durability(self) -> DurabilityManager | None:
        """The durability manager, or ``None`` for an in-memory anonymizer."""
        return self._durability

    def checkpoint(self) -> int:
        """Snapshot the tree and truncate the WAL there; returns the LSN.

        Drains any buffered loader records first so the snapshot captures
        exactly the acknowledged state, then delegates to
        :meth:`repro.durability.manager.DurabilityManager.checkpoint`.
        """
        if self._durability is None:
            raise ValueError(
                "this anonymizer has no durability configured; pass "
                "durability=DurabilityConfig(dir=...) at construction"
            )
        if self._loader.buffered_records:
            self._loader.drain()
        elif self._tree.in_bulk_mode:
            self._tree.finish_bulk()
        with OBS.span("anonymizer.checkpoint"), TRACE.span(
            "anonymizer.checkpoint", "anonymizer"
        ):
            return self._durability.checkpoint(self._tree, self._schema)

    def close(self) -> None:
        """Flush and close the durability layer (no-op when not durable)."""
        if self._durability is not None:
            self._durability.close()

    # -- introspection ----------------------------------------------------------------

    @property
    def tree(self) -> RPlusTree:
        """The underlying index (for multi-granular releases and inspection)."""
        return self._tree

    @property
    def loader(self) -> BufferTreeLoader:
        """The buffer-tree loader.

        Callers streaming through it directly should ``drain()`` when done;
        :meth:`anonymize` drains on their behalf if they forget.
        """
        return self._loader

    @property
    def schema(self):  # noqa: ANN201 - Schema import kept light
        return self._schema

    @property
    def base_k(self) -> int:
        return self._tree.k

    def __len__(self) -> int:
        return len(self._tree)

    def leaf_count(self) -> int:
        return sum(1 for _leaf in self._tree.iter_leaves())

    def io_stats(self):  # noqa: ANN201
        """The simulated I/O counters (None when no pool is attached)."""
        if self._pool is None:
            return None
        return self._pool.pagefile.stats
