"""Batch MBR arithmetic over ``(N, 2 * dims)`` box arrays.

The columnar box layout is ``[lows | highs]``: row ``i`` holds box ``i``'s
``dims`` low coordinates followed by its ``dims`` high coordinates.  The
scalar oracle is :mod:`repro.geometry.box`; every kernel here is proven
element-wise equal to the corresponding ``Box`` fold by the property
suite.

Bit-identity notes:

* ``volumes`` and ``margins`` reduce along the dimension axis, which for
  the quasi-identifier counts in play (<= 9) numpy evaluates strictly
  left-to-right — the same association order as the scalar ``area()`` /
  ``margin()`` folds, so the floats match bit for bit.
* Signed zeros: ``np.minimum``/``np.maximum`` keep the *second* operand on
  ties while the scalar folds keep the *first*, so an input mixing ``0.0``
  and ``-0.0`` on one axis can differ from the scalar fold in the sign bit
  of a zero (never in value).  Integer-coded record data cannot produce
  ``-0.0``, so releases are unaffected; the edge-case suite pins this down
  as defined behavior.
* Empty batches are a defined refusal: ``mbr_of_points`` and
  ``union_all_boxes`` raise the same ``ValueError`` messages as the scalar
  ``Box.from_points`` / ``union_all`` so callers cannot tell the paths
  apart even in the failure direction.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.geometry.box import Box


def boxes_to_array(boxes: Sequence[Box]) -> np.ndarray:
    """Pack boxes into the columnar ``(N, 2 * dims)`` ``[lows | highs]`` layout."""
    if not boxes:
        raise ValueError("cannot union an empty collection of boxes")
    return np.array(
        [box.lows + box.highs for box in boxes], dtype=np.float64
    )


def array_to_boxes(array: np.ndarray) -> list[Box]:
    """Unpack a ``(N, 2 * dims)`` array back into :class:`Box` objects."""
    rows = np.ascontiguousarray(array, dtype=np.float64)
    dims = rows.shape[1] // 2
    return [
        Box(tuple(row[:dims]), tuple(row[dims:]))
        for row in rows.tolist()
    ]


def mbr_of_points(points: np.ndarray) -> Box:
    """Minimum bounding box of an ``(N, dims)`` point array.

    Equal to ``Box.from_points`` on the same rows (up to zero-sign, see
    the module docstring); raises the scalar path's exact message on an
    empty batch.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (N, dims), got shape {pts.shape}")
    if pts.shape[0] == 0:
        raise ValueError("cannot bound an empty collection of points")
    lows = pts.min(axis=0)
    highs = pts.max(axis=0)
    return Box(tuple(lows.tolist()), tuple(highs.tolist()))


def group_mbrs(points: np.ndarray, starts: Sequence[int]) -> list[Box]:
    """MBRs of contiguous groups of an ``(N, dims)`` point array.

    ``starts`` are the group start offsets (``starts[0]`` must be 0 and
    groups must be non-empty); group ``g`` spans rows
    ``[starts[g], starts[g + 1])`` with the last group running to the end.
    One ``minimum.reduceat``/``maximum.reduceat`` pair replaces the
    per-group per-record Python folds in release emission.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (N, dims), got shape {pts.shape}")
    offsets = list(starts)
    if not offsets:
        return []
    if offsets[0] != 0:
        raise ValueError("group starts must begin at 0")
    bounds = offsets + [pts.shape[0]]
    for left, right in zip(bounds, bounds[1:]):
        if right <= left:
            raise ValueError("cannot bound an empty collection of points")
    index = np.asarray(offsets, dtype=np.intp)
    lows = np.minimum.reduceat(pts, index, axis=0)
    highs = np.maximum.reduceat(pts, index, axis=0)
    return [
        Box(tuple(low), tuple(high))
        for low, high in zip(lows.tolist(), highs.tolist())
    ]


def union_all_boxes(boxes: Iterable[Box]) -> Box:
    """The minimum box enclosing every box — the ``union_all`` kernel."""
    array = boxes_to_array(list(boxes))
    dims = array.shape[1] // 2
    lows = array[:, :dims].min(axis=0)
    highs = array[:, dims:].max(axis=0)
    return Box(tuple(lows.tolist()), tuple(highs.tolist()))


def union_arrays(array: np.ndarray) -> np.ndarray:
    """Column-wise union of an ``(N, 2 * dims)`` box array → ``(2 * dims,)``."""
    rows = np.ascontiguousarray(array, dtype=np.float64)
    if rows.shape[0] == 0:
        raise ValueError("cannot union an empty collection of boxes")
    dims = rows.shape[1] // 2
    return np.concatenate(
        [rows[:, :dims].min(axis=0), rows[:, dims:].max(axis=0)]
    )


def volumes(array: np.ndarray) -> np.ndarray:
    """Per-box volume of an ``(N, 2 * dims)`` array — the ``area()`` kernel.

    The product accumulates dimension by dimension in the scalar fold's
    left-to-right order, so each float equals ``Box.area()`` exactly,
    including dims=1 degenerate boxes (a single zero-width extent).
    """
    rows = np.ascontiguousarray(array, dtype=np.float64)
    dims = rows.shape[1] // 2
    result = np.ones(rows.shape[0], dtype=np.float64)
    for dimension in range(dims):
        result = result * (rows[:, dims + dimension] - rows[:, dimension])
    return result


def margins(array: np.ndarray) -> np.ndarray:
    """Per-box margin (sum of extents) — the ``margin()`` kernel."""
    rows = np.ascontiguousarray(array, dtype=np.float64)
    dims = rows.shape[1] // 2
    result = np.zeros(rows.shape[0], dtype=np.float64)
    for dimension in range(dims):
        result = result + (rows[:, dims + dimension] - rows[:, dimension])
    return result


def intersect_masks(array: np.ndarray, probe: Box) -> np.ndarray:
    """Which boxes of an ``(N, 2 * dims)`` array intersect ``probe``.

    The closed-box §5.4 match predicate, vectorized: box ``i`` matches iff
    on every axis ``low_i <= probe.high and probe.low <= high_i``.
    """
    rows = np.ascontiguousarray(array, dtype=np.float64)
    dims = rows.shape[1] // 2
    probe_lows = np.asarray(probe.lows, dtype=np.float64)
    probe_highs = np.asarray(probe.highs, dtype=np.float64)
    return np.logical_and(
        (rows[:, :dims] <= probe_highs).all(axis=1),
        (probe_lows <= rows[:, dims:]).all(axis=1),
    )


def intersections(array: np.ndarray, probe: Box) -> list[Box | None]:
    """Per-box intersection with ``probe`` (``None`` where disjoint)."""
    rows = np.ascontiguousarray(array, dtype=np.float64)
    dims = rows.shape[1] // 2
    probe_lows = np.asarray(probe.lows, dtype=np.float64)
    probe_highs = np.asarray(probe.highs, dtype=np.float64)
    lows = np.maximum(rows[:, :dims], probe_lows)
    highs = np.minimum(rows[:, dims:], probe_highs)
    overlap = (lows <= highs).all(axis=1)
    results: list[Box | None] = []
    for hit, low, high in zip(
        overlap.tolist(), lows.tolist(), highs.tolist()
    ):
        results.append(Box(tuple(low), tuple(high)) if hit else None)
    return results
