"""Vectorized record codec: one buffer op per page, not one struct per row.

The on-disk format (``repro.dataset.io``) is rows of little-endian int32
quasi-identifier values.  The scalar oracle packs and unpacks them one
record at a time through the ``struct`` module; these kernels move whole
pages through ``np.frombuffer``/``ndarray.tobytes``, which is byte-exact
because a C-contiguous ``(N, dims)`` ``<i4`` array *is* the page layout.

Bit-identity notes:

* Decode: ``int32 -> float64`` is exact for every int32 value, so decoded
  points equal the scalar ``tuple(float(v) for v in values)`` rows.
* Encode: ``np.rint`` rounds half-to-even exactly like Python ``round``,
  so the written bytes equal ``struct.pack("<i", int(round(value)))``
  per coordinate.  Values that round outside int32 raise ``ValueError``
  (the scalar path raises ``struct.error``) instead of numpy's silent
  wraparound — a defined divergence trap, same refusal either way.
* Zero-record pages are well-defined in both directions: an empty bytes
  object decodes to a ``(0, dims)`` array and a ``(0, dims)`` array
  encodes to ``b""``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

_INT32_MIN = -(1 << 31)
_INT32_MAX = (1 << 31) - 1

#: The on-disk cell type: little-endian int32, as in ``struct "<i"``.
RECORD_DTYPE = np.dtype("<i4")


def decode_points(chunk: bytes, dimensions: int) -> np.ndarray:
    """Decode a page of packed records into an ``(N, dims)`` float64 array.

    ``chunk`` must hold a whole number of records; the scalar reader
    enforces that with its short-read check, and this kernel re-checks so
    a direct caller cannot silently drop a torn tail.
    """
    if dimensions <= 0:
        raise ValueError("dimensions must be positive")
    record_bytes = dimensions * RECORD_DTYPE.itemsize
    if len(chunk) % record_bytes:
        raise ValueError(
            f"page of {len(chunk)} bytes is not a whole number of "
            f"{record_bytes}-byte records"
        )
    cells = np.frombuffer(chunk, dtype=RECORD_DTYPE)
    return cells.reshape(-1, dimensions).astype(np.float64)


def encode_points(points: np.ndarray | Sequence[Sequence[float]]) -> bytes:
    """Encode an ``(N, dims)`` point array into packed record bytes.

    Byte-for-byte equal to the scalar writer's per-record
    ``struct.pack("<{dims}i", *(int(round(v)) for v in point))`` stream.
    """
    values = np.ascontiguousarray(points, dtype=np.float64)
    if values.ndim != 2:
        raise ValueError(f"points must be (N, dims), got shape {values.shape}")
    if values.shape[0] == 0:
        return b""
    if not np.isfinite(values).all():
        raise ValueError("cannot encode non-finite coordinates")
    rounded = np.rint(values)
    if bool((rounded < _INT32_MIN).any() or (rounded > _INT32_MAX).any()):
        raise ValueError("coordinate rounds outside the int32 record range")
    return np.ascontiguousarray(
        rounded.astype(RECORD_DTYPE)
    ).tobytes()


def points_to_tuples(points: np.ndarray) -> list[tuple[float, ...]]:
    """Materialize an ``(N, dims)`` array as the scalar reader's row tuples."""
    return [tuple(row) for row in points.tolist()]
