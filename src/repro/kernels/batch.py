"""``RecordBatch``: the columnar unit the kernels operate on.

A batch is an ``(N, dims)`` float64 point matrix plus a parallel rid
vector.  It is a *transport* type: the scan and load paths decode pages
straight into batches, run the keying/MBR kernels on the matrix, and only
materialize per-row :class:`repro.dataset.record.Record` objects at the
boundary where the tree (which stores records) takes over.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.dataset.record import Record
from repro.geometry.box import Box

from repro.kernels.boxes import mbr_of_points
from repro.kernels.hilbert import hilbert_keys_for_points


@dataclass(frozen=True)
class RecordBatch:
    """A column-oriented slab of records: points ``(N, dims)``, rids ``(N,)``."""

    points: np.ndarray
    rids: np.ndarray

    def __post_init__(self) -> None:
        if self.points.ndim != 2:
            raise ValueError(
                f"points must be (N, dims), got shape {self.points.shape}"
            )
        if self.rids.shape != (self.points.shape[0],):
            raise ValueError(
                f"{self.rids.shape[0] if self.rids.ndim == 1 else self.rids.shape} "
                f"rids for {self.points.shape[0]} points"
            )

    @classmethod
    def from_records(cls, records: Sequence[Record]) -> "RecordBatch":
        """Column-ize in-memory records (an empty batch has 0 dimensions)."""
        if not records:
            return cls(
                np.empty((0, 0), dtype=np.float64),
                np.empty(0, dtype=np.int64),
            )
        points = np.array([record.point for record in records], dtype=np.float64)
        rids = np.array([record.rid for record in records], dtype=np.int64)
        return cls(points, rids)

    @classmethod
    def from_points(
        cls, points: np.ndarray, first_rid: int = 0
    ) -> "RecordBatch":
        """Wrap a decoded page with file-position rids starting at ``first_rid``."""
        count = points.shape[0]
        return cls(
            np.ascontiguousarray(points, dtype=np.float64),
            np.arange(first_rid, first_rid + count, dtype=np.int64),
        )

    def __len__(self) -> int:
        return self.points.shape[0]

    @property
    def dimensions(self) -> int:
        return self.points.shape[1]

    def to_records(self) -> list[Record]:
        """Materialize per-row records — the boundary back to the tree."""
        return [
            Record(rid, tuple(point))
            for rid, point in zip(self.rids.tolist(), self.points.tolist())
        ]

    def iter_records(self) -> Iterable[Record]:
        for rid, point in zip(self.rids.tolist(), self.points.tolist()):
            yield Record(rid, tuple(point))

    def mbr(self) -> Box:
        """Minimum bounding box of the batch (raises on an empty batch)."""
        return mbr_of_points(self.points)

    def hilbert_keys(
        self,
        lows: Sequence[float],
        highs: Sequence[float],
        bits: int,
    ) -> np.ndarray:
        """Quantized Hilbert keys of every row, via the batch kernels."""
        return hilbert_keys_for_points(self.points, lows, highs, bits)
