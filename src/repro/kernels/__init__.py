"""Numpy-backed columnar kernels for the anonymizer's hot paths.

Every kernel here has a scalar twin elsewhere in the tree — the original
pure-Python code, which stays in place as the *differential oracle*: the
property suite proves element-wise equality, and the differential grid
proves whole-pipeline releases are bit-identical with kernels on or off.

The ``use_kernels`` flag (default on, ``REPRO_KERNELS=0`` or the CLI's
``--no-kernels`` to disable) selects the path at the call sites; see
``docs/KERNELS.md`` for the layout, the oracle-testing pattern, and the
checklist for adding a kernel.
"""

from repro.kernels.batch import RecordBatch
from repro.kernels.boxes import (
    array_to_boxes,
    boxes_to_array,
    group_mbrs,
    intersect_masks,
    intersections,
    margins,
    mbr_of_points,
    union_all_boxes,
    union_arrays,
    volumes,
)
from repro.kernels.codec import (
    RECORD_DTYPE,
    decode_points,
    encode_points,
    points_to_tuples,
)
from repro.kernels.config import (
    kernels_enabled,
    scoped_kernels,
    set_kernels_enabled,
)
from repro.kernels.hilbert import (
    hilbert_keys,
    hilbert_keys_for_points,
    quantize_batch,
)
from repro.kernels.split import (
    best_threshold_batch,
    candidate_thresholds_batch,
)

__all__ = [
    "RecordBatch",
    "RECORD_DTYPE",
    "array_to_boxes",
    "best_threshold_batch",
    "boxes_to_array",
    "candidate_thresholds_batch",
    "decode_points",
    "encode_points",
    "group_mbrs",
    "hilbert_keys",
    "hilbert_keys_for_points",
    "intersect_masks",
    "intersections",
    "kernels_enabled",
    "margins",
    "mbr_of_points",
    "points_to_tuples",
    "quantize_batch",
    "scoped_kernels",
    "set_kernels_enabled",
    "union_all_boxes",
    "union_arrays",
    "volumes",
]
