"""The ``use_kernels`` switch: one process-wide default, overridable per call.

Every kernel-accelerated call site takes ``use_kernels: bool | None``;
``None`` defers to the process default, which starts from the
``REPRO_KERNELS`` environment variable (any value but ``"0"`` — or unset —
means *on*).  The scalar code paths are never deleted: they are the
differential oracle the test suite holds the kernels against, and flipping
the default off must reproduce every release bit for bit.

The default is deliberately plain module state, not thread-local: the
serving layer's single-writer discipline means bulk loads and releases run
on one thread, and the differential suites flip the flag only around whole
pipelines.  Worker processes of the sharded engine receive the *resolved*
flag inside their task tuples, so a parent's override always propagates
regardless of the multiprocessing start method.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Iterator

_default_enabled = os.environ.get("REPRO_KERNELS", "1") != "0"


def kernels_enabled(override: bool | None = None) -> bool:
    """Resolve a per-call ``use_kernels`` value against the process default."""
    if override is None:
        return _default_enabled
    return bool(override)


def set_kernels_enabled(enabled: bool) -> bool:
    """Set the process-wide default (the CLI's ``--no-kernels`` calls this).

    Returns the previous default so callers can restore it.
    """
    global _default_enabled
    previous = _default_enabled
    _default_enabled = bool(enabled)
    return previous


@contextmanager
def scoped_kernels(enabled: bool) -> Iterator[None]:
    """Temporarily force the process default — the differential suites' tool."""
    global _default_enabled
    previous = _default_enabled
    _default_enabled = bool(enabled)
    try:
        yield
    finally:
        _default_enabled = previous
