"""Batch Hilbert keying: Skilling's transform over coordinate columns.

The scalar oracle is :mod:`repro.index.hilbert`, which walks one record at
a time.  This module runs the same three passes — inverse-undo, Gray
decode, bit interleave — over ``(N, dims)`` cell arrays, so the per-bit
work is ``dims * bits`` vector operations instead of ``N`` Python loops.

Bit-identity notes (each is covered by a property test):

* ``quantize_batch`` mirrors the scalar ``quantize`` operation order
  exactly — ``(value - low) / extent * top`` in float64, truncate toward
  zero, clamp into ``[0, top]`` — because ``np.trunc`` matches ``int()``
  and clamp-after-truncate equals the scalar ``min(max(int(x), 0), top)``
  for every finite input.  Non-finite inputs raise ``ValueError`` where the
  scalar path raises ``ValueError``/``OverflowError`` per coordinate; the
  kernel rejects the whole batch up front (a defined divergence: same
  refusal, one exception type).
* Keys wider than 64 bits (``dims * bits > 64`` — census and agrawal at
  the default 10 bits are 90-bit keys) are accumulated MSB-first into
  uint64 words and combined into arbitrary-precision Python ints via an
  object array, so the returned keys equal the scalar keys as integers,
  not merely modulo ``2**64``.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def quantize_batch(
    points: np.ndarray,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> np.ndarray:
    """Scale an ``(N, dims)`` float array into the ``bits``-bit grid.

    Returns an ``(N, dims)`` uint64 cell array; element-wise equal to the
    scalar ``repro.index.hilbert.quantize`` on every finite input.
    """
    pts = np.ascontiguousarray(points, dtype=np.float64)
    if pts.ndim != 2:
        raise ValueError(f"points must be (N, dims), got shape {pts.shape}")
    if not np.isfinite(pts).all():
        raise ValueError("cannot quantize non-finite coordinates")
    low = np.asarray(lows, dtype=np.float64)
    high = np.asarray(highs, dtype=np.float64)
    top = (1 << bits) - 1
    extent = high - low
    positive = extent > 0
    scaled = (pts - low) / np.where(positive, extent, 1.0) * top
    if not np.isfinite(scaled).all():
        raise ValueError("quantization overflowed float range")
    cells = np.clip(np.trunc(scaled), 0.0, float(top))
    cells = np.where(positive, cells, 0.0)
    return cells.astype(np.uint64)


def hilbert_keys(cells: np.ndarray, bits: int) -> np.ndarray:
    """Hilbert keys of an ``(N, dims)`` uint64 cell array.

    Element-wise equal to ``repro.index.hilbert.hilbert_key`` on each row.
    Returns a uint64 vector when ``dims * bits <= 64``, else an object
    vector of Python ints (the keys only feed sorting and bisection, both
    of which compare uint64 and int interchangeably).
    """
    grid = np.ascontiguousarray(cells, dtype=np.uint64)
    if grid.ndim != 2:
        raise ValueError(f"cells must be (N, dims), got shape {grid.shape}")
    n, dimensions = grid.shape
    if dimensions == 0:
        raise ValueError("need at least one coordinate")
    if bits < 64 and bool((grid >> np.uint64(bits)).any()):
        raise ValueError(f"coordinate does not fit in {bits} bits")
    if dimensions == 1:
        return grid[:, 0].copy()
    # Column-major views: x[i] is the i-th coordinate over all records.
    x = [grid[:, i].copy() for i in range(dimensions)]
    # Skilling's inverse-undo pass.  i == 0 only ever takes the mask branch
    # (the swap with itself is a no-op), so it collapses to one where().
    q = 1 << (bits - 1)
    while q > 1:
        p = q - 1
        x[0] = np.where((x[0] & q) != 0, x[0] ^ p, x[0])
        for i in range(1, dimensions):
            mask = (x[i] & q) != 0
            t = (x[0] ^ x[i]) & p
            x[0] = np.where(mask, x[0] ^ p, x[0] ^ t)
            x[i] = np.where(mask, x[i], x[i] ^ t)
        q >>= 1
    # Gray encode.
    for i in range(1, dimensions):
        x[i] = x[i] ^ x[i - 1]
    t = np.zeros(n, dtype=np.uint64)
    q = 1 << (bits - 1)
    while q > 1:
        t = np.where((x[dimensions - 1] & q) != 0, t ^ (q - 1), t)
        q >>= 1
    for i in range(dimensions):
        x[i] = x[i] ^ t
    return _interleave_columns(x, bits, n)


def _interleave_columns(
    x: list[np.ndarray], bits: int, n: int
) -> np.ndarray:
    """Interleave column vectors MSB-first, spilling into 64-bit words."""
    words: list[tuple[np.ndarray, int]] = []
    current = np.zeros(n, dtype=np.uint64)
    width = 0
    one = np.uint64(1)
    for bit in range(bits - 1, -1, -1):
        shift = np.uint64(bit)
        for column in x:
            current = (current << one) | ((column >> shift) & one)
            width += 1
            if width == 64:
                words.append((current, 64))
                current = np.zeros(n, dtype=np.uint64)
                width = 0
    if width or not words:
        words.append((current, width))
    if len(words) == 1:
        return words[0][0]
    result = words[0][0].astype(object)
    for word, word_width in words[1:]:
        result = result * (1 << word_width) + word.astype(object)
    return result


def hilbert_keys_for_points(
    points: np.ndarray,
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> np.ndarray:
    """Quantize and key an ``(N, dims)`` point batch in one call.

    The fused form the bulk-load and shard-scan call sites use; equal to
    ``hilbert_key(quantize(point, lows, highs, bits), bits)`` row-wise.
    """
    return hilbert_keys(quantize_batch(points, lows, highs, bits), bits)
