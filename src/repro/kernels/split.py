"""Vectorized split-threshold selection via cumulative run statistics.

The scalar oracle is ``repro.index.split.candidate_thresholds``: one linear
sweep over the sorted values that tracks the most balanced legal boundary
(first strict improvement wins) and the widest-gap boundary (likewise).
This kernel computes the same two winners from the sorted array's distinct
value runs with ``argmin``/``argmax`` — numpy's "first occurrence on ties"
matches the scalar sweep's strict-inequality updates exactly, so the
returned ``(threshold, left_count)`` pairs are identical, including the
order (balanced first) and the dedup rule.

Single-record and empty inputs fall out naturally (``total < 2 *
min_count`` refuses them, as in the oracle); a run of one distinct value
yields no legal boundary on either path.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np


def candidate_thresholds_batch(
    values: Sequence[float] | np.ndarray, min_count: int
) -> list[tuple[float, int]]:
    """Promising legal thresholds along one dimension, vectorized.

    Same contract and same results as the scalar
    ``repro.index.split.candidate_thresholds``.
    """
    data = np.asarray(values, dtype=np.float64)
    total = int(data.size)
    if total < 2 * min_count:
        return []
    ordered = np.sort(data, kind="stable")
    # Boundary i sits between ordered[i] and ordered[i + 1]; a boundary is
    # a candidate only at the *last* occurrence of a distinct value.
    ends = np.nonzero(ordered[:-1] != ordered[1:])[0]
    if ends.size == 0:
        return []
    left_counts = ends + 1
    legal = (left_counts >= min_count) & (total - left_counts >= min_count)
    ends = ends[legal]
    left_counts = left_counts[legal]
    if ends.size == 0:
        return []
    target = total / 2.0
    distances = np.abs(left_counts - target)
    balanced_at = int(distances.argmin())
    balanced = (
        float(ordered[ends[balanced_at]]),
        int(left_counts[balanced_at]),
    )
    gaps = ordered[ends + 1] - ordered[ends]
    widest_at = int(gaps.argmax())
    widest = (float(ordered[ends[widest_at]]), int(left_counts[widest_at]))
    candidates = [balanced]
    if widest != balanced:
        candidates.append(widest)
    return candidates


def best_threshold_batch(
    values: Sequence[float] | np.ndarray, min_count: int
) -> tuple[float, int] | None:
    """The most balanced legal threshold — kernel twin of ``best_threshold``."""
    candidates = candidate_thresholds_batch(values, min_count)
    return candidates[0] if candidates else None
