"""Leaf split policies.

When a leaf exceeds its capacity the tree must choose an axis-aligned cut
``(dimension, value)`` that divides the records into two groups, each at
least ``min_count`` strong (the k-anonymity floor).  *Which* dimension gets
cut is the policy decision the paper leans on twice:

* the default R-tree behaviour "splits by trying to minimize the area of
  the resulting partitions" (§5.3) — :class:`MinMarginSplitPolicy`;
* workload awareness (§2.4) comes from *biasing* the choice toward a
  preferred attribute subset (:class:`BiasedSplitPolicy`, used for the
  Figure 12(c)/(d) zipcode experiment) or from weighting attributes in a
  certainty-penalty-like objective (:class:`WeightedSplitPolicy`).

All margin-driven policies score a candidate cut with the *size-weighted
normalized margin* of the two resulting MBRs,
``|L| * NCP(mbr(L)) + |R| * NCP(mbr(R))`` — exactly the certainty-penalty
contribution (Definition 4) the new partitions will incur, so split-time
greed directly optimizes the quality metric the evaluation reports.

A policy may return ``None`` when no legal cut exists — e.g. every record
identical, or duplicates so heavy that no boundary leaves ``min_count`` on
both sides.  The tree then leaves the node over-full, which never violates
k-anonymity (only the *minimum* occupancy matters for privacy).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

from repro.dataset.record import Record


@dataclass(frozen=True)
class SplitDecision:
    """A chosen cut: records with ``point[dimension] <= value`` go left."""

    dimension: int
    value: float
    left_count: int
    right_count: int


def best_threshold(
    values: Sequence[float], min_count: int, use_kernels: bool | None = None
) -> tuple[float, int] | None:
    """The most balanced legal threshold along one dimension.

    Candidate thresholds sit between consecutive *distinct* sorted values;
    the one whose left-group size is closest to ``len(values) / 2`` wins,
    subject to both sides holding at least ``min_count`` items.  Returns
    ``(threshold, left_count)`` or ``None`` when no boundary qualifies
    (single distinct value, or duplicates too concentrated).
    """
    candidates = candidate_thresholds(values, min_count, use_kernels)
    return candidates[0] if candidates else None


def candidate_thresholds(
    values: Sequence[float], min_count: int, use_kernels: bool | None = None
) -> list[tuple[float, int]]:
    """Promising legal thresholds along one dimension.

    Two candidates per dimension, deduplicated:

    * the **most balanced** boundary (closest to the median) — minimizes
      tree imbalance, the B-tree instinct (always first in the result);
    * the **widest gap** boundary — maximizes the empty space between the
      two resulting MBRs, the R-tree instinct that buys compaction (a cut
      through a gap leaves both sides' extents strictly smaller).

    Each is returned as ``(threshold, left_count)`` and is legal: at least
    ``min_count`` values on both sides.  Empty when no boundary is legal.

    With kernels on (the default) the sweep runs vectorized over the
    sorted array's distinct-value runs; :func:`candidate_thresholds_scalar`
    is the linear-sweep oracle it is proven identical to.
    """
    from repro.kernels.config import kernels_enabled

    if kernels_enabled(use_kernels):
        from repro.kernels.split import candidate_thresholds_batch

        return candidate_thresholds_batch(values, min_count)
    return candidate_thresholds_scalar(values, min_count)


def candidate_thresholds_scalar(
    values: Sequence[float], min_count: int
) -> list[tuple[float, int]]:
    """The original linear sweep — the kernel's differential oracle."""
    total = len(values)
    if total < 2 * min_count:
        return []
    ordered = sorted(values)
    target = total / 2.0
    balanced: tuple[float, int] | None = None
    balanced_distance = float("inf")
    widest: tuple[float, int] | None = None
    widest_gap = -1.0
    index = 0
    while index < total:
        value = ordered[index]
        # Advance to the last occurrence of this distinct value.
        while index + 1 < total and ordered[index + 1] == value:
            index += 1
        left_count = index + 1
        right_count = total - left_count
        if right_count == 0:
            break
        if left_count >= min_count and right_count >= min_count:
            distance = abs(left_count - target)
            if distance < balanced_distance:
                balanced_distance = distance
                balanced = (value, left_count)
            gap = ordered[index + 1] - value
            if gap > widest_gap:
                widest_gap = gap
                widest = (value, left_count)
        index += 1
    candidates: list[tuple[float, int]] = []
    if balanced is not None:
        candidates.append(balanced)
    if widest is not None and widest != balanced:
        candidates.append(widest)
    return candidates


def partition_records(
    records: Sequence[Record], dimension: int, value: float
) -> tuple[list[Record], list[Record]]:
    """Split records by the cut predicate ``point[dimension] <= value``."""
    left: list[Record] = []
    right: list[Record] = []
    for record in records:
        if record.point[dimension] <= value:
            left.append(record)
        else:
            right.append(record)
    return left, right


class SplitPolicy(abc.ABC):
    """Chooses the cut dimension and threshold for an overflowing leaf."""

    @abc.abstractmethod
    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        """Pick a legal cut, or ``None`` when no legal cut exists.

        ``domain_extents`` are the full attribute ranges used to normalize
        extents so that attributes on different scales compete fairly.
        """


class MinMarginSplitPolicy(SplitPolicy):
    """Minimize the size-weighted normalized margin of the resulting MBRs.

    This is the R-tree instinct the paper credits for its quality edge:
    "the R-tree splits by trying to minimize the area of the resulting
    partitions".  Engineering choices on top of the plain idea:

    * *margin* (sum of normalized extents) rather than raw area, so that
      degenerate extents — ubiquitous with duplicated attribute values —
      do not zero out the objective;
    * each side's margin is *weighted by its record count*, which makes the
      score exactly the certainty-penalty contribution the new partitions
      will incur (Definition 4) and keeps wide-gap but lopsided cuts from
      gaming an unweighted sum with sliver groups;
    * axis preselection in the R*-tree spirit: only the ``max_dimensions``
      dimensions with the widest normalized data extent are searched
      (``None`` searches all), since narrow dimensions almost never host
      the winning cut — the ablation bench quantifies the (tiny) quality
      cost and the (sizable) speed gain of the default of 3.

    Within each candidate dimension every legal boundary is scored via the
    vectorized exhaustive search.
    """

    def __init__(self, max_dimensions: int | None = 3) -> None:
        if max_dimensions is not None and max_dimensions < 1:
            raise ValueError("max_dimensions must be at least 1 (or None)")
        self._max_dimensions = max_dimensions

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        if len(records) < 2 * min_count:
            return None
        count = len(domain_extents)
        if self._max_dimensions is None or self._max_dimensions >= count:
            dimensions: Sequence[int] = range(count)
        else:
            dimensions = widest_dimensions(
                records, domain_extents, self._max_dimensions
            )
        return exhaustive_ncp_split(
            records, min_count, domain_extents, None, dimensions
        )


def widest_dimensions(
    records: Sequence[Record],
    domain_extents: Sequence[float],
    how_many: int,
) -> list[int]:
    """The ``how_many`` dimensions with the widest normalized data extent."""
    count = len(domain_extents)
    mins = list(records[0].point)
    maxs = list(records[0].point)
    for record in records:
        for dimension, value in enumerate(record.point):
            if value < mins[dimension]:
                mins[dimension] = value
            elif value > maxs[dimension]:
                maxs[dimension] = value
    def normalized_width(dimension: int) -> float:
        extent = domain_extents[dimension]
        if extent <= 0:
            return 0.0
        return (maxs[dimension] - mins[dimension]) / extent
    ranked = sorted(range(count), key=normalized_width, reverse=True)
    return ranked[:how_many]


class ExhaustiveSplitPolicy(SplitPolicy):
    """Evaluate *every* legal boundary on every dimension, vectorized.

    For each dimension the records are sorted once and prefix/suffix minima
    and maxima over all attributes are accumulated with numpy, after which
    every legal boundary's size-weighted NCP score costs O(d) to evaluate.
    Slightly better certainty penalty than the two-candidate default, at a
    modest load-time premium — see ``benchmarks/bench_ablation_split.py``.
    """

    def __init__(self, weights: Sequence[float] | None = None) -> None:
        self._weights = tuple(weights) if weights is not None else None

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        return exhaustive_ncp_split(
            records,
            min_count,
            domain_extents,
            self._weights,
            range(len(domain_extents)),
        )


class MidpointSplitPolicy(SplitPolicy):
    """Cut the dimension with the widest normalized data extent.

    The single-attribute analogue of Mondrian's choose-widest heuristic,
    provided as an ablation point against :class:`MinMarginSplitPolicy`.
    """

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        # Too few records cannot split legally — and an empty group would
        # crash the max()/min() width scan below, a latent trap the other
        # policies already guard via their size checks.
        if len(records) < 2 * min_count:
            return None
        widths: list[tuple[float, int]] = []
        for dimension, domain_extent in enumerate(domain_extents):
            values = [record.point[dimension] for record in records]
            extent = max(values) - min(values)
            normalized = extent / domain_extent if domain_extent > 0 else 0.0
            widths.append((normalized, dimension))
        widths.sort(reverse=True)
        for _normalized, dimension in widths:
            found = best_threshold(
                [record.point[dimension] for record in records], min_count
            )
            if found is not None:
                value, left_count = found
                return SplitDecision(
                    dimension, value, left_count, len(records) - left_count
                )
        return None


class BiasedSplitPolicy(SplitPolicy):
    """Always cut a preferred attribute subset when legally possible.

    "The biased splitting algorithm selects the Zipcode attribute as the
    splitting attribute for every split" (§5.4).  When every preferred
    dimension is unusable (too many duplicates), the fallback policy decides
    among the remaining dimensions so the tree can always make progress.
    """

    def __init__(
        self,
        preferred_dimensions: Sequence[int],
        fallback: SplitPolicy | None = None,
    ) -> None:
        if not preferred_dimensions:
            raise ValueError("biased policy needs at least one preferred dimension")
        self._preferred = tuple(preferred_dimensions)
        self._fallback = fallback if fallback is not None else MinMarginSplitPolicy()

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        chosen = exhaustive_ncp_split(
            records, min_count, domain_extents, None, self._preferred
        )
        if chosen is not None:
            return chosen
        return self._fallback.choose_split(records, min_count, domain_extents)


class WeightedSplitPolicy(SplitPolicy):
    """Minimize the *attribute-weighted* normalized margin of the MBRs.

    The §2.4 suggestion drawn from the weighted certainty penalty: "it
    benefits the spatial index to split the more important attributes...
    to arrive at a lower penalty score for the new partitions."  Weights
    above 1 make an attribute more attractive to split (its residual extent
    costs more); a weight of 1 everywhere recovers
    :class:`MinMarginSplitPolicy` exactly.
    """

    def __init__(self, weights: Sequence[float]) -> None:
        if any(weight < 0 for weight in weights):
            raise ValueError("weights must be non-negative")
        self._weights = tuple(weights)

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        if len(self._weights) != len(domain_extents):
            raise ValueError(
                f"{len(self._weights)} weights for {len(domain_extents)} dimensions"
            )
        return exhaustive_ncp_split(
            records,
            min_count,
            domain_extents,
            self._weights,
            range(len(domain_extents)),
        )


def group_margin(
    records: Sequence[Record],
    domain_extents: Sequence[float],
    weights: Sequence[float] | None = None,
) -> float:
    """Normalized (optionally weighted) margin of a record group's MBR.

    This is the per-record NCP the certainty metric charges (Definition 4),
    which is why minimizing it at split time directly buys quality.  A
    single pass over the records computes the extents on every dimension.
    """
    if not records:
        return 0.0
    first = records[0].point
    mins = list(first)
    maxs = list(first)
    for record in records:
        for dimension, value in enumerate(record.point):
            if value < mins[dimension]:
                mins[dimension] = value
            elif value > maxs[dimension]:
                maxs[dimension] = value
    total = 0.0
    for dimension, domain_extent in enumerate(domain_extents):
        if domain_extent <= 0:
            continue
        extent = (maxs[dimension] - mins[dimension]) / domain_extent
        if weights is not None:
            extent *= weights[dimension]
        total += extent
    return total


def exhaustive_ncp_split(
    records: Sequence[Record],
    min_count: int,
    domain_extents: Sequence[float],
    weights: Sequence[float] | None,
    dimensions: Sequence[int],
) -> SplitDecision | None:
    """Evaluate every legal boundary on the given dimensions, vectorized.

    For each candidate dimension the records are sorted once and prefix /
    suffix minima and maxima over **all** attributes are accumulated, after
    which every legal boundary's score —
    ``|L| * NCP(mbr(L)) + |R| * NCP(mbr(R))`` — costs O(d) to evaluate.
    """
    import numpy as np

    total = len(records)
    if total < 2 * min_count:
        return None
    points = np.array([record.point for record in records], dtype=np.float64)
    inverse = np.array(
        [1.0 / extent if extent > 0 else 0.0 for extent in domain_extents]
    )
    if weights is not None:
        inverse = inverse * np.asarray(weights, dtype=np.float64)
    best: SplitDecision | None = None
    best_score = float("inf")
    boundary_positions = np.arange(min_count - 1, total - min_count)
    for dimension in dimensions:
        order = np.argsort(points[:, dimension], kind="stable")
        ordered = points[order]
        values = ordered[:, dimension]
        legal = boundary_positions[
            values[boundary_positions] < values[boundary_positions + 1]
        ]
        if legal.size == 0:
            continue
        prefix_min = np.minimum.accumulate(ordered, axis=0)
        prefix_max = np.maximum.accumulate(ordered, axis=0)
        suffix_min = np.minimum.accumulate(ordered[::-1], axis=0)[::-1]
        suffix_max = np.maximum.accumulate(ordered[::-1], axis=0)[::-1]
        left_margin = ((prefix_max[legal] - prefix_min[legal]) * inverse).sum(axis=1)
        right_margin = (
            (suffix_max[legal + 1] - suffix_min[legal + 1]) * inverse
        ).sum(axis=1)
        sizes_left = legal + 1
        scores = sizes_left * left_margin + (total - sizes_left) * right_margin
        at = int(scores.argmin())
        if scores[at] < best_score:
            best_score = float(scores[at])
            left_count = int(sizes_left[at])
            best = SplitDecision(
                dimension, float(values[legal[at]]), left_count, total - left_count
            )
    return best


def exhaustive_ncp_split_small(
    records: Sequence[Record],
    min_count: int,
    domain_extents: Sequence[float],
    weights: Sequence[float] | None,
    dimensions: Sequence[int],
) -> SplitDecision | None:
    """Pure-Python exhaustive boundary search for small record groups.

    Same objective and same result set as :func:`exhaustive_ncp_split`,
    but built for the minimum-size splits that dominate index maintenance:
    per dimension, one sort plus two incremental sweeps maintain the
    prefix / suffix normalized margins in O(n·d), so every legal boundary
    is scored without numpy's per-call overhead.
    """
    total = len(records)
    if total < 2 * min_count:
        return None
    points = [record.point for record in records]
    inverse = [
        1.0 / extent if extent > 0 else 0.0 for extent in domain_extents
    ]
    if weights is not None:
        inverse = [i * w for i, w in zip(inverse, weights)]
    best: SplitDecision | None = None
    best_score = float("inf")
    for dimension in dimensions:
        order = sorted(range(total), key=lambda i: points[i][dimension])
        values = [points[i][dimension] for i in order]
        if values[0] == values[-1]:
            continue
        prefix = _running_margins(points, order, inverse)
        suffix = _running_margins(points, order[::-1], inverse)[::-1]
        for boundary in range(min_count - 1, total - min_count):
            if values[boundary] == values[boundary + 1]:
                continue
            left_count = boundary + 1
            score = left_count * prefix[boundary] + (total - left_count) * suffix[
                boundary + 1
            ]
            if score < best_score:
                best_score = score
                best = SplitDecision(
                    dimension, values[boundary], left_count, total - left_count
                )
    return best


def _running_margins(
    points: Sequence[Sequence[float]],
    order: Sequence[int],
    inverse: Sequence[float],
) -> list[float]:
    """``out[i]`` = normalized margin of the MBR of ``points[order[:i+1]]``.

    Maintains per-dimension minima/maxima and the running margin sum,
    updating only the dimensions a new point actually extends.
    """
    first = points[order[0]]
    mins = list(first)
    maxs = list(first)
    margin = 0.0
    out = [0.0] * len(order)
    for position in range(1, len(order)):
        point = points[order[position]]
        for dimension, value in enumerate(point):
            if value < mins[dimension]:
                margin += (mins[dimension] - value) * inverse[dimension]
                mins[dimension] = value
            elif value > maxs[dimension]:
                margin += (value - maxs[dimension]) * inverse[dimension]
                maxs[dimension] = value
        out[position] = margin
    return out
