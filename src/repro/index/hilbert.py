"""Hilbert space-filling curve keys.

§2.1 notes that sort-based bulk-loading "based on space-filling curves
(e.g., the Hilbert curve or Z-ordering)" was tried before settling on the
buffer tree.  This module provides those orderings so the ablation bench
can reproduce the comparison.

The Hilbert mapping uses Skilling's transpose algorithm ("Programming the
Hilbert curve", AIP 2004): coordinates are converted in place to the
transposed Hilbert index, then the bits are interleaved into a single
integer key.  Z-ordering (Morton keys) is plain bit interleaving.
"""

from __future__ import annotations

from typing import Sequence


def hilbert_key(coordinates: Sequence[int], bits: int) -> int:
    """The Hilbert curve index of an integer point.

    ``coordinates`` must each fit in ``bits`` bits.  Points close on the
    returned key are close in space, with better locality than Morton order
    — which is exactly why Hilbert-sorted packing was a plausible loader.
    """
    dimensions = len(coordinates)
    if dimensions == 0:
        raise ValueError("need at least one coordinate")
    x = list(coordinates)
    for value in x:
        if value < 0 or value >> bits:
            raise ValueError(f"coordinate {value} does not fit in {bits} bits")
    if dimensions == 1:
        return x[0]
    # Skilling's inverse-undo pass.
    q = 1 << (bits - 1)
    while q > 1:
        p = q - 1
        for i in range(dimensions):
            if x[i] & q:
                x[0] ^= p
            else:
                t = (x[0] ^ x[i]) & p
                x[0] ^= t
                x[i] ^= t
        q >>= 1
    # Gray encode.
    for i in range(1, dimensions):
        x[i] ^= x[i - 1]
    t = 0
    q = 1 << (bits - 1)
    while q > 1:
        if x[dimensions - 1] & q:
            t ^= q - 1
        q >>= 1
    for i in range(dimensions):
        x[i] ^= t
    return _interleave(x, bits)


def morton_key(coordinates: Sequence[int], bits: int) -> int:
    """The Z-order (Morton) index: straight bit interleaving."""
    for value in coordinates:
        if value < 0 or value >> bits:
            raise ValueError(f"coordinate {value} does not fit in {bits} bits")
    return _interleave(list(coordinates), bits)


def _interleave(values: list[int], bits: int) -> int:
    key = 0
    for bit in range(bits - 1, -1, -1):
        for value in values:
            key = (key << 1) | ((value >> bit) & 1)
    return key


def key_bits(dimensions: int, bits: int) -> int:
    """How many bits a Hilbert/Morton key spans: ``dimensions * bits``."""
    return dimensions * bits


def dequantize(
    cells: Sequence[int],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> list[float]:
    """Map grid cells back to domain values (each cell's center).

    The inverse direction of :func:`quantize` up to quantization error:
    re-quantizing the returned point lands in the same cells, and each
    coordinate is within one cell width of any point that quantizes there
    (the round-trip property the test suite checks).
    """
    top = (1 << bits) - 1
    values: list[float] = []
    for cell, low, high in zip(cells, lows, highs):
        extent = high - low
        if extent <= 0:
            values.append(low)
            continue
        center = low + (min(max(cell, 0), top) + 0.5) * extent / top
        values.append(min(center, high))
    return values


def quantize(
    point: Sequence[float],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int,
) -> list[int]:
    """Scale a real-valued point into the ``bits``-bit integer grid."""
    top = (1 << bits) - 1
    quantized: list[int] = []
    for value, low, high in zip(point, lows, highs):
        extent = high - low
        if extent <= 0:
            quantized.append(0)
            continue
        cell = int((value - low) / extent * top)
        quantized.append(min(max(cell, 0), top))
    return quantized
