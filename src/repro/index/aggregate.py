"""A packed static aggregate R-tree over partition MBRs (index pushdown).

The serving-side query engine answers §5.4 COUNT queries against a
release *through the index* instead of scanning every partition.  A
release is a flat sequence of partitions; this module packs their MBRs
into a static aggregate tree (Lazaridis & Mehrotra's aggregate R-tree,
restricted to bulk construction) whose every node caches the integer
totals of its subtree.  Descent then has three outcomes per node:

* the query box is **disjoint** from the node MBR — prune the whole
  subtree (nothing below can intersect);
* the query box **contains** the node MBR — add the cached subtree total
  without descending (every entry box lies inside the node MBR, hence
  inside the query, hence intersects it);
* otherwise — recurse, scanning entry boxes only at partially-overlapped
  leaves.

Because entries are packed in release order into contiguous slices, every
node covers a contiguous entry range, totals are plain integer sums, and
the result is bit-identical to the leaf-scan oracle
(:func:`repro.query.ranges.count_anonymized`) by construction: the three
cases partition the entry set into "all excluded", "all included", and
"decided individually", with no floating-point arithmetic anywhere.

Entries carry a vector of integer weights so one tree serves several
aggregates: weight 0 is the partition's record count (range-COUNT),
weight 1 its "owned" flag (distinct partition count — on a sharded
cluster exactly one shard owns each partition, so owned-sums merge into
an exact global distinct count).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.geometry.box import Box

#: Children per internal node and entries per leaf.  Pushdown cost is not
#: sensitive to modest fanout changes; 16 keeps trees shallow (a million
#: partitions is five levels) while leaves stay cache-friendly.
DEFAULT_FANOUT = 16

#: Index of the record-count weight in every entry's weight vector.
WEIGHT_RECORDS = 0
#: Index of the owned-partition weight (1 on the owning shard, else 0).
WEIGHT_OWNED = 1


@dataclass
class PushdownStats:
    """Per-query descent counters (mirrored into ``query.*`` obs metrics)."""

    nodes_visited: int = 0
    nodes_pruned: int = 0
    subtrees_aggregated: int = 0
    leaves_scanned: int = 0
    entries_scanned: int = 0

    def merge(self, other: "PushdownStats") -> None:
        self.nodes_visited += other.nodes_visited
        self.nodes_pruned += other.nodes_pruned
        self.subtrees_aggregated += other.subtrees_aggregated
        self.leaves_scanned += other.leaves_scanned
        self.entries_scanned += other.entries_scanned


@dataclass(frozen=True)
class _Node:
    """One packed tree node covering the contiguous entry range
    ``[start, stop)``; ``children`` is ``None`` at leaves."""

    box: Box
    start: int
    stop: int
    totals: tuple[int, ...]
    children: tuple["_Node", ...] | None = field(default=None)


def _union(boxes: Sequence[Box]) -> Box:
    lows = list(boxes[0].lows)
    highs = list(boxes[0].highs)
    for box in boxes[1:]:
        for index, (low, high) in enumerate(zip(box.lows, box.highs)):
            if low < lows[index]:
                lows[index] = low
            if high > highs[index]:
                highs[index] = high
    return Box(tuple(lows), tuple(highs))


class AggregateTree:
    """A static aggregate R-tree over ``(box, weights)`` entries.

    Entries keep their input order (release order is already spatially
    coherent — partitions come off a Hilbert-ordered or R⁺-tree
    traversal), so construction is a single bottom-up packing pass with
    no sorting and the tree is a pure function of the entry sequence.
    """

    def __init__(
        self,
        boxes: Sequence[Box],
        weights: Sequence[Sequence[int]],
        fanout: int = DEFAULT_FANOUT,
    ) -> None:
        if fanout < 2:
            raise ValueError("fanout must be at least 2")
        if len(weights) != len(boxes):
            raise ValueError(
                f"weight rows ({len(weights)}) must match boxes ({len(boxes)})"
            )
        self._boxes = tuple(boxes)
        self._weights = tuple(tuple(int(w) for w in row) for row in weights)
        widths = {len(row) for row in self._weights}
        if len(widths) > 1:
            raise ValueError("all weight rows must have the same width")
        self._width = widths.pop() if widths else 0
        self._fanout = fanout
        self._root = self._build()

    # -- construction --------------------------------------------------------

    def _build(self) -> _Node | None:
        count = len(self._boxes)
        if count == 0:
            return None
        level: list[_Node] = []
        for start in range(0, count, self._fanout):
            stop = min(start + self._fanout, count)
            totals = tuple(
                sum(self._weights[i][w] for i in range(start, stop))
                for w in range(self._width)
            )
            level.append(
                _Node(
                    box=_union(self._boxes[start:stop]),
                    start=start,
                    stop=stop,
                    totals=totals,
                )
            )
        while len(level) > 1:
            parents: list[_Node] = []
            for start in range(0, len(level), self._fanout):
                group = level[start : start + self._fanout]
                totals = tuple(
                    sum(node.totals[w] for node in group)
                    for w in range(self._width)
                )
                parents.append(
                    _Node(
                        box=_union([node.box for node in group]),
                        start=group[0].start,
                        stop=group[-1].stop,
                        totals=totals,
                        children=tuple(group),
                    )
                )
            level = parents
        return level[0]

    # -- properties ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._boxes)

    @property
    def bounds(self) -> Box | None:
        """The MBR of every entry (``None`` for an empty tree)."""
        return self._root.box if self._root is not None else None

    @property
    def height(self) -> int:
        """Tree height in levels (0 for an empty tree, 1 for one leaf)."""
        height = 0
        node = self._root
        while node is not None:
            height += 1
            node = node.children[0] if node.children else None
        return height

    def total(self, weight: int = WEIGHT_RECORDS) -> int:
        """The whole-tree total of one weight column."""
        return self._root.totals[weight] if self._root is not None else 0

    # -- pushdown ------------------------------------------------------------

    def aggregate(
        self,
        query: Box,
        weight: int = WEIGHT_RECORDS,
        stats: PushdownStats | None = None,
    ) -> int:
        """Sum one weight column over every entry whose box intersects
        ``query`` — exactly the §5.4 anonymized-table match predicate,
        answered through the index."""
        if self._root is None:
            return 0
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
            if not query.intersects(node.box):
                if stats is not None:
                    stats.nodes_pruned += 1
                continue
            if query.contains_box(node.box):
                if stats is not None:
                    stats.subtrees_aggregated += 1
                total += node.totals[weight]
                continue
            if node.children is None:
                if stats is not None:
                    stats.leaves_scanned += 1
                    stats.entries_scanned += node.stop - node.start
                for index in range(node.start, node.stop):
                    if query.intersects(self._boxes[index]):
                        total += self._weights[index][weight]
            else:
                stack.extend(node.children)
        return total

    def matching(
        self, query: Box, stats: PushdownStats | None = None
    ) -> Iterator[int]:
        """Indices of every entry whose box intersects ``query``, ascending.

        The same three-way descent as :meth:`aggregate`; fully-contained
        subtrees yield their contiguous entry range without being walked.
        """
        if self._root is None:
            return
        # Depth-first with children pushed in reverse keeps output ascending.
        stack = [self._root]
        while stack:
            node = stack.pop()
            if stats is not None:
                stats.nodes_visited += 1
            if not query.intersects(node.box):
                if stats is not None:
                    stats.nodes_pruned += 1
                continue
            if query.contains_box(node.box):
                if stats is not None:
                    stats.subtrees_aggregated += 1
                yield from range(node.start, node.stop)
                continue
            if node.children is None:
                if stats is not None:
                    stats.leaves_scanned += 1
                    stats.entries_scanned += node.stop - node.start
                for index in range(node.start, node.stop):
                    if query.intersects(self._boxes[index]):
                        yield index
            else:
                stack.extend(reversed(node.children))
