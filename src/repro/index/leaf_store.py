"""Paged backing storage for leaf records.

When an :class:`~repro.index.rtree.RPlusTree` is given a
:class:`PagedLeafStore`, every mutation of a leaf's record set is mirrored
onto pages owned by the simulated buffer pool, so the page-I/O counters
reflect what a disk-resident tree would have done: appends touch the leaf's
last page, splits read the old leaf's pages and write the two new leaves'
pages, deletions rewrite the leaf.

The tree's in-memory record lists remain authoritative — this layer is a
*metering mirror*, not a constrained executor (see DESIGN.md): the measured
quantity of the Figure 8(b) experiment is the count of explicit page I/Os,
which depends only on the access pattern and the buffer-pool budget, both of
which are faithfully simulated.
"""

from __future__ import annotations

from repro.dataset.record import Record
from repro.index.node import LeafNode
from repro.storage.buffer_pool import BufferPool


class LeafStore:
    """No-op default store: purely in-memory leaves, no I/O accounting."""

    def on_append(self, leaf: LeafNode, record: Record) -> None:
        """A record was appended to a leaf."""

    def on_create(self, leaf: LeafNode) -> None:
        """A leaf was created with its records already populated."""

    def on_split(self, old: LeafNode, left: LeafNode, right: LeafNode) -> None:
        """A leaf split into two new leaves."""

    def on_rewrite(self, leaf: LeafNode) -> None:
        """A leaf's record list changed in place (deletion path)."""

    def on_dissolve(self, leaf: LeafNode) -> None:
        """A leaf was removed from the tree."""


class PagedLeafStore(LeafStore):
    """Mirror leaf record sets onto buffer-pool pages for I/O accounting."""

    def __init__(self, pool: BufferPool[Record]) -> None:
        self._pool = pool
        self._pages: dict[int, list[int]] = {}

    @property
    def pool(self) -> BufferPool[Record]:
        return self._pool

    def pages_of(self, leaf: LeafNode) -> list[int]:
        """Page ids currently backing a leaf."""
        return list(self._pages.get(leaf.node_id, ()))

    def on_append(self, leaf: LeafNode, record: Record) -> None:
        page_ids = self._pages.setdefault(leaf.node_id, [])
        if page_ids:
            last = self._pool.get(page_ids[-1], for_write=True)
            if not last.is_full:
                last.append(record)
                return
        page = self._pool.new_page()
        page.append(record)
        page_ids.append(page.page_id)

    def on_create(self, leaf: LeafNode) -> None:
        self._write_out(leaf)

    def on_split(self, old: LeafNode, left: LeafNode, right: LeafNode) -> None:
        # Reading the overflowing leaf is what a disk-resident split costs;
        # the new leaves are written out page by page.
        for page_id in self._pages.pop(old.node_id, ()):  # noqa: B007
            self._pool.get(page_id)
            self._pool.free(page_id)
        self._write_out(left)
        self._write_out(right)

    def on_rewrite(self, leaf: LeafNode) -> None:
        for page_id in self._pages.pop(leaf.node_id, ()):
            self._pool.get(page_id)
            self._pool.free(page_id)
        self._write_out(leaf)

    def on_dissolve(self, leaf: LeafNode) -> None:
        for page_id in self._pages.pop(leaf.node_id, ()):
            self._pool.get(page_id)
            self._pool.free(page_id)

    def _write_out(self, leaf: LeafNode) -> None:
        page_ids: list[int] = []
        page = None
        for record in leaf.records:
            if page is None or page.is_full:
                page = self._pool.new_page()
                page_ids.append(page.page_id)
            page.append(record)
        self._pages[leaf.node_id] = page_ids
