"""Sort-based bulk loading: Hilbert ordering and Sort-Tile-Recursive packing.

These are the §2.1 alternatives the paper's authors "experimented with"
before adopting the buffer tree — reproduced here so the ablation bench can
compare the three loaders on time and on the quality of the partitions they
produce.

* :func:`hilbert_partitions` / :func:`hilbert_bulk_load` — sort records
  along the Hilbert curve (Kamel & Faloutsos packing), then cut the sorted
  run into consecutive groups of about ``2k`` records.
* :func:`str_partitions` / :func:`str_bulk_load` — Sort-Tile-Recursive:
  recursively slice the data with balanced axis cuts, cycling through the
  dimensions, until groups fit in a leaf.

Both functions can return bare partitions (ordered record groups — the
anonymization-relevant output) or a full :class:`~repro.index.rtree.RPlusTree`
built by feeding the spatially-ordered stream through the buffer-tree
loader, which packs well because consecutive records land in the same
leaves.
"""

from __future__ import annotations

from typing import Sequence

from repro.dataset.record import Record
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.hilbert import hilbert_key, quantize
from repro.index.rtree import RPlusTree
from repro.index.split import best_threshold
from repro.kernels.config import kernels_enabled
from repro.obs import OBS, TRACE

#: Grid resolution for Hilbert quantization.
DEFAULT_HILBERT_BITS = 10


def hilbert_sorted(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int = DEFAULT_HILBERT_BITS,
    use_kernels: bool | None = None,
) -> list[Record]:
    """Records sorted by their Hilbert key over the given domain box.

    With kernels on (the default), keys come from the batch Hilbert kernel
    and ordering falls to one stable index sort over Python-int keys — the
    same keys and the same tie order as the scalar ``sorted(key=...)``
    path, which stays available as the differential oracle.
    """
    with TRACE.span("bulk.hilbert_sort", "bulk", records=len(records)):
        if kernels_enabled(use_kernels) and len(records) > 1:
            import numpy as np

            from repro.kernels.hilbert import hilbert_keys_for_points

            points = np.array(
                [record.point for record in records], dtype=np.float64
            )
            keys = hilbert_keys_for_points(points, lows, highs, bits).tolist()
            if OBS.enabled:
                OBS.count("kernels.keyed_records", len(keys))
            order = sorted(range(len(records)), key=keys.__getitem__)
            return [records[index] for index in order]
        return sorted(
            records,
            key=lambda record: hilbert_key(
                quantize(record.point, lows, highs, bits), bits
            ),
        )


def hilbert_ordered(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    bits: int = DEFAULT_HILBERT_BITS,
    use_kernels: bool | None = None,
) -> list[Record]:
    """Records sorted by ``(hilbert key, rid)`` over the given domain box.

    Unlike :func:`hilbert_sorted` — whose stable sort preserves *input*
    order between equal keys — the rid tie-break makes this order a pure
    function of the record **set**, independent of how the records arrive.
    That is the property the sharded serving cluster relies on: each shard
    sorts its own records by ``(key, rid)`` and, because shards own
    contiguous ascending key ranges, concatenating the per-shard runs
    reconstructs exactly this global order.  The single-writer ``hilbert``
    release strategy sorts with the same function, which is what makes the
    two backends' releases bit-identical.
    """
    with TRACE.span("bulk.hilbert_order", "bulk", records=len(records)):
        if kernels_enabled(use_kernels) and len(records) > 1:
            import numpy as np

            from repro.kernels.hilbert import hilbert_keys_for_points

            points = np.array(
                [record.point for record in records], dtype=np.float64
            )
            keys = hilbert_keys_for_points(points, lows, highs, bits).tolist()
            if OBS.enabled:
                OBS.count("kernels.keyed_records", len(keys))
            order = sorted(
                range(len(records)),
                key=lambda index: (keys[index], records[index].rid),
            )
            return [records[index] for index in order]
        return sorted(
            records,
            key=lambda record: (
                hilbert_key(quantize(record.point, lows, highs, bits), bits),
                record.rid,
            ),
        )


def hilbert_partitions(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    k: int,
    bits: int = DEFAULT_HILBERT_BITS,
    use_kernels: bool | None = None,
) -> list[list[Record]]:
    """Consecutive groups of ~2k records along the Hilbert curve.

    Every group holds at least ``k`` records (the final remainder is merged
    into the last full group), so the grouping is k-anonymous.  Raises
    ``ValueError`` when the input holds fewer than ``k`` records in total.
    """
    ordered = hilbert_sorted(records, lows, highs, bits, use_kernels)
    return chunk_with_floor(ordered, k)


def str_partitions(
    records: Sequence[Record], dimensions: int, k: int
) -> list[list[Record]]:
    """Sort-Tile-Recursive grouping: balanced axis cuts, cycling dimensions.

    Greedily cuts the widest remaining group with a balanced threshold on
    the cycling dimension (skipping dimensions made unusable by duplicates)
    until every group holds at most ``2k`` records, with ``k`` as the hard
    floor on both sides of every cut.
    """
    with TRACE.span("bulk.str_partition", "bulk", records=len(records)):
        return _str_partitions_inner(records, dimensions, k)


def _str_partitions_inner(
    records: Sequence[Record], dimensions: int, k: int
) -> list[list[Record]]:
    target = 2 * k
    result: list[list[Record]] = []
    stack: list[tuple[list[Record], int]] = [(list(records), 0)]
    while stack:
        group, start_dimension = stack.pop()
        if len(group) <= target:
            result.append(group)
            continue
        cut = None
        for offset in range(dimensions):
            dimension = (start_dimension + offset) % dimensions
            found = best_threshold([r.point[dimension] for r in group], k)
            if found is not None:
                cut = (dimension, found[0])
                break
        if cut is None:
            # Duplicates block every dimension: the group stays whole.
            result.append(group)
            continue
        dimension, value = cut
        left = [r for r in group if r.point[dimension] <= value]
        right = [r for r in group if r.point[dimension] > value]
        stack.append((right, dimension + 1))
        stack.append((left, dimension + 1))
    return result


def hilbert_bulk_load(
    records: Sequence[Record],
    lows: Sequence[float],
    highs: Sequence[float],
    k: int,
    bits: int = DEFAULT_HILBERT_BITS,
    use_kernels: bool | None = None,
    **tree_kwargs: object,
) -> RPlusTree:
    """Build an R+-tree by buffer-loading the Hilbert-sorted stream."""
    with TRACE.span("bulk.hilbert_load", "bulk", records=len(records)):
        ordered = hilbert_sorted(records, lows, highs, bits, use_kernels)
        tree = RPlusTree(len(lows), k, **tree_kwargs)  # type: ignore[arg-type]
        BufferTreeLoader(tree).load(ordered, charge_input=False)
        return tree


def str_bulk_load(
    records: Sequence[Record],
    dimensions: int,
    k: int,
    **tree_kwargs: object,
) -> RPlusTree:
    """Build an R+-tree by buffer-loading the STR-ordered stream."""
    with TRACE.span("bulk.str_load", "bulk", records=len(records)):
        ordered = [
            record
            for group in str_partitions(records, dimensions, k)
            for record in group
        ]
        tree = RPlusTree(dimensions, k, **tree_kwargs)  # type: ignore[arg-type]
        BufferTreeLoader(tree).load(ordered, charge_input=False)
        return tree


def chunk_with_floor(ordered: Sequence[Record], k: int) -> list[list[Record]]:
    """Consecutive chunks of 2k records with a k-record floor on the tail.

    Raises ``ValueError`` when the input holds fewer than ``k`` records:
    no k-anonymous grouping exists then, and silently emitting one
    undersized group (the old behavior) would publish a partition below
    the paper's k-floor.  Both the serial loaders and the sharded parallel
    engine enforce the same rule.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if len(ordered) < k:
        raise ValueError(
            f"cannot form k-anonymous groups: {len(ordered)} records < k={k}"
        )
    size = 2 * k
    groups: list[list[Record]] = []
    for start in range(0, len(ordered), size):
        groups.append(list(ordered[start : start + size]))
    if len(groups) > 1 and len(groups[-1]) < k:
        tail = groups.pop()
        groups[-1].extend(tail)
    return groups


#: Backwards-compatible private alias (pre-parallel callers imported this).
_chunk_with_floor = chunk_with_floor
