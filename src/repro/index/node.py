"""Tree nodes and the binary cut structure that keeps regions disjoint.

An :class:`InternalNode` does not store a flat child list.  Instead it keeps
the *history of binary splits* that produced its children as a small binary
tree of :class:`Cut` objects whose leaf positions hold the child nodes.
This is the kd-B-tree / R+-tree trick that makes everything non-overlapping
for free:

* routing a point means walking the cut tree (``coord <= cut.value`` goes
  left), so exactly one child can ever receive a given point;
* splitting an overflowing internal node means promoting its *root* cut —
  the two cut subtrees become the two new nodes and the parent inherits the
  promoted cut, so sibling regions remain an exact tiling at every level.

Every position in a cut tree is a mutable :class:`Slot` box holding either
a :class:`Node` or a :class:`Cut`.  The indirection is load-bearing: the
buffer-tree loader routes records from node references captured *before*
splits restructure the tree, and because all structural updates mutate
shared ``Slot``/``Cut`` objects in place (never rebind a private
attribute), those stale references keep routing correctly — the split
subtrees are shared between the old and new nodes, not copied.

Each node additionally caches its minimum bounding rectangle (the *MBR*,
what the anonymizer publishes).  The MBR is always contained in the node's
implicit region and shrink-wraps the actual data — this gap between region
and MBR is precisely the paper's "compaction" effect (§4) arising naturally
from R-tree bookkeeping.
"""

from __future__ import annotations

import itertools
from typing import Iterator, Sequence, Union

from repro.dataset.record import Record
from repro.geometry.box import Box

_node_ids = itertools.count()


class Node:
    """Common base: identity, parent link, level (0 = leaf)."""

    __slots__ = ("node_id", "parent", "level", "mbr")

    def __init__(self, level: int) -> None:
        self.node_id: int = next(_node_ids)
        self.parent: InternalNode | None = None
        self.level = level
        self.mbr: Box | None = None

    @property
    def is_leaf(self) -> bool:
        return self.level == 0

    def record_count(self) -> int:
        raise NotImplementedError


class LeafNode(Node):
    """A leaf: the records of one k-anonymous partition."""

    __slots__ = ("records",)

    def __init__(self) -> None:
        super().__init__(level=0)
        self.records: list[Record] = []

    def record_count(self) -> int:
        return len(self.records)

    def recompute_mbr(self) -> None:
        """Shrink-wrap the MBR to the current records."""
        if self.records:
            self.mbr = Box.from_points(record.point for record in self.records)
        else:
            self.mbr = None


class Slot:
    """A mutable box in a cut tree, holding either a child node or a cut.

    All structural edits go through slots so that every view of a shared
    subtree — including stale node references held across splits — observes
    the same current structure.
    """

    __slots__ = ("inner",)

    def __init__(self, inner: "Node | Cut") -> None:
        self.inner = inner

    def __repr__(self) -> str:
        return f"Slot({self.inner!r})"


class Cut:
    """A binary split: points with ``point[dimension] <= value`` go left."""

    __slots__ = ("dimension", "value", "left", "right")

    def __init__(self, dimension: int, value: float, left: Slot, right: Slot) -> None:
        self.dimension = dimension
        self.value = value
        self.left = left
        self.right = right

    def __repr__(self) -> str:
        return f"Cut(dim={self.dimension}, value={self.value:g})"


def make_cut(
    dimension: int, value: float, left: "Node | Cut", right: "Node | Cut"
) -> Cut:
    """Build a cut over two fresh slots."""
    return Cut(dimension, value, Slot(left), Slot(right))


def iter_cut_children(slot: Slot) -> Iterator[Node]:
    """Yield the child nodes under a cut tree, left to right.

    The left-to-right order is the "sequential ordering of nodes on the
    same tree level" that the leaf-scan algorithm (§3.2) relies on: adjacent
    children are spatially adjacent because they came from the same cuts.
    """
    stack: list[Slot] = [slot]
    while stack:
        item = stack.pop().inner
        if isinstance(item, Cut):
            stack.append(item.right)
            stack.append(item.left)
        else:
            yield item


def count_cut_children(slot: Slot) -> int:
    """Number of child nodes under a cut tree."""
    return sum(1 for _child in iter_cut_children(slot))


def route_cut(slot: Slot, point: Sequence[float]) -> Node:
    """Follow the cuts to the unique child whose region contains the point."""
    item = slot.inner
    while isinstance(item, Cut):
        item = (item.left if point[item.dimension] <= item.value else item.right).inner
    return item


def find_slot(slot: Slot, target: Node) -> Slot | None:
    """The slot currently holding ``target``, or ``None`` if absent."""
    stack: list[Slot] = [slot]
    while stack:
        candidate = stack.pop()
        item = candidate.inner
        if item is target:
            return candidate
        if isinstance(item, Cut):
            stack.append(item.left)
            stack.append(item.right)
    return None


class InternalNode(Node):
    """An internal node: a cut tree over its children plus cached metadata."""

    __slots__ = ("cuts", "fanout")

    def __init__(self, level: int, cuts: Slot) -> None:
        super().__init__(level)
        self.cuts = cuts
        self.fanout = count_cut_children(cuts)

    def children(self) -> Iterator[Node]:
        """Children left to right (spatial order)."""
        return iter_cut_children(self.cuts)

    def route(self, point: Sequence[float]) -> Node:
        """The unique child whose region contains the point."""
        return route_cut(self.cuts, point)

    def replace_child(self, old: Node, replacement: "Node | Cut", added: int) -> None:
        """Swap a child for a node or cut, in place, adjusting the fanout.

        The mutation happens inside the shared :class:`Slot`, so every
        stale view of this subtree sees it immediately.
        """
        slot = find_slot(self.cuts, old)
        if slot is None:
            raise KeyError(f"node {old.node_id} is not a child of node {self.node_id}")
        slot.inner = replacement
        self.fanout += added

    def remove_child(self, old: Node) -> None:
        """Drop a child, promoting its cut sibling into the parent cut's slot."""
        if self.cuts.inner is old:
            raise ValueError(
                f"cannot remove the only child of internal node {self.node_id}"
            )
        stack: list[Slot] = [self.cuts]
        while stack:
            slot = stack.pop()
            item = slot.inner
            if not isinstance(item, Cut):
                continue
            if item.left.inner is old:
                slot.inner = item.right.inner
                self.fanout -= 1
                return
            if item.right.inner is old:
                slot.inner = item.left.inner
                self.fanout -= 1
                return
            stack.append(item.left)
            stack.append(item.right)
        raise KeyError(f"node {old.node_id} is not a child of node {self.node_id}")

    def record_count(self) -> int:
        return sum(child.record_count() for child in self.children())

    def recompute_mbr(self) -> None:
        """Union the children's MBRs (children with no data contribute nothing)."""
        boxes = [child.mbr for child in self.children() if child.mbr is not None]
        if boxes:
            mbr = boxes[0]
            for box in boxes[1:]:
                mbr = mbr.union(box)
            self.mbr = mbr
        else:
            self.mbr = None


#: Legacy alias kept for type annotations elsewhere.
CutTree = Union[Node, Cut, Slot]
