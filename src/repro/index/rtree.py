"""The dynamic, non-overlapping R+-tree over point data.

This is the index whose occupancy invariant is the paper's central insight:
**every leaf holds between ``k`` and ``c*k`` records**, so the leaf-level
partitioning of the data is k-anonymous by construction, and every standard
index operation — one-record insert, delete, range search — doubles as an
anonymization-maintenance operation.

Structural model (see :mod:`repro.index.node`): internal nodes remember the
binary cuts that produced their children, so sibling regions are disjoint
and tile the parent region, points route deterministically, and splitting an
overflowing internal node is just promoting its root cut.  Leaf depth is
uniform (all leaves are level 0 and grow/shrink in lockstep with the root),
which the multi-granular release machinery (§3) relies on.

Occupancy corner cases, all k-anonymity-safe:

* a **root leaf** may hold fewer than ``k`` records while the whole data set
  is smaller than ``k`` (no k-anonymous release exists then anyway — the
  anonymizer refuses to emit);
* a leaf may exceed ``c*k`` records when *no legal cut exists* — e.g. all
  records share one point, or duplicates are so heavy that no boundary
  leaves ``k`` on both sides.  Over-full is privacy-safe; only the minimum
  matters.
"""

from __future__ import annotations

from typing import Iterable, Iterator, Sequence

from repro.dataset.record import Record
from repro.geometry.box import Box
from repro.index.leaf_store import LeafStore
from repro.index.node import Cut, InternalNode, LeafNode, Node, Slot, make_cut
from repro.index.split import (
    MinMarginSplitPolicy,
    SplitPolicy,
    partition_records,
)
from repro.obs import OBS, TRACE

#: Default leaf capacity multiplier: leaves hold between k and DEFAULT_CAPACITY_FACTOR * k.
DEFAULT_CAPACITY_FACTOR = 3

#: Default maximum internal fanout (the ``m`` of §3).
DEFAULT_MAX_FANOUT = 8


class RPlusTree:
    """A non-overlapping multidimensional index with a k-anonymity occupancy floor.

    Parameters
    ----------
    dimensions:
        Number of quasi-identifier attributes.
    k:
        Minimum records per leaf — the anonymity parameter (the paper's
        "base k" for bulk loads).
    capacity_factor:
        Leaves split when they exceed ``capacity_factor * k`` records
        (the ``c`` of §3's "between k and ck records").
    max_fanout:
        Internal nodes split when they exceed this many children.
    split_policy:
        How overflowing leaves choose their cut; defaults to the R-tree-like
        :class:`~repro.index.split.MinMarginSplitPolicy`.
    domain_extents:
        Full per-attribute ranges, used by split policies to normalize.
        Defaults to all-ones (unnormalized) when omitted.
    leaf_store:
        Optional paged mirror for I/O accounting
        (:class:`~repro.index.leaf_store.PagedLeafStore`).
    """

    def __init__(
        self,
        dimensions: int,
        k: int,
        capacity_factor: int = DEFAULT_CAPACITY_FACTOR,
        max_fanout: int = DEFAULT_MAX_FANOUT,
        split_policy: SplitPolicy | None = None,
        domain_extents: Sequence[float] | None = None,
        leaf_store: LeafStore | None = None,
        leaf_capacity: int | None = None,
    ) -> None:
        if dimensions < 1:
            raise ValueError("dimensions must be at least 1")
        if k < 1:
            raise ValueError("k must be at least 1")
        if capacity_factor < 2:
            raise ValueError(
                "capacity_factor must be at least 2 so splits can satisfy "
                "the k-record minimum on both sides"
            )
        if max_fanout < 2:
            raise ValueError("max_fanout must be at least 2")
        if leaf_capacity is not None and leaf_capacity < 2 * k - 1:
            raise ValueError(
                f"leaf_capacity {leaf_capacity} cannot split into two "
                f"k={k} halves"
            )
        self._dimensions = dimensions
        self._k = k
        self._leaf_capacity = (
            leaf_capacity if leaf_capacity is not None else capacity_factor * k
        )
        self._max_fanout = max_fanout
        self._policy = split_policy if split_policy is not None else MinMarginSplitPolicy()
        if domain_extents is None:
            self._domain_extents: tuple[float, ...] = (1.0,) * dimensions
        else:
            if len(domain_extents) != dimensions:
                raise ValueError(
                    f"{len(domain_extents)} domain extents for {dimensions} dimensions"
                )
            self._domain_extents = tuple(float(extent) for extent in domain_extents)
        self._store = leaf_store if leaf_store is not None else LeafStore()
        self._root: Node | None = None
        self._count = 0
        self._split_trigger = self._leaf_capacity

    # -- basic accessors -----------------------------------------------------

    @property
    def k(self) -> int:
        """The anonymity floor: minimum records per leaf."""
        return self._k

    @property
    def leaf_capacity(self) -> int:
        """The split trigger: maximum records per leaf (``c * k``)."""
        return self._leaf_capacity

    @property
    def max_fanout(self) -> int:
        return self._max_fanout

    @property
    def dimensions(self) -> int:
        return self._dimensions

    @property
    def root(self) -> Node | None:
        return self._root

    @property
    def domain_extents(self) -> tuple[float, ...]:
        return self._domain_extents

    def __len__(self) -> int:
        return self._count

    def adopt_leaf_store(self, store: LeafStore) -> None:
        """Attach ``store`` and register every existing leaf with it.

        Used after snapshot restore, where the tree is rebuilt in memory
        first and the paged backing store is reattached afterwards.
        """
        self._store = store
        for leaf in self.iter_leaves():
            store.on_create(leaf)

    @property
    def height(self) -> int:
        """Levels above the leaves (0 for a root leaf, -1 when empty)."""
        if self._root is None:
            return -1
        return self._root.level

    # -- insertion -------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Insert one record, splitting along the path as needed.

        This is the incremental-anonymization primitive of §2.2: after the
        call the leaf partitioning is again k-anonymous (given the tree held
        at least ``k`` records before, or holds fewer than ``k`` in total).
        """
        if len(record.point) != self._dimensions:
            raise ValueError(
                f"record {record.rid} has {len(record.point)} dimensions, "
                f"tree expects {self._dimensions}"
            )
        if self._root is None:
            self._root = LeafNode()
        self.insert_descending(self._root, record)

    def insert_descending(self, node: Node, record: Record) -> None:
        """Insert by routing downward from ``node`` (normally the root).

        The buffer-tree loader uses this to deliver records that have
        already been routed partway down through node buffers; ``node`` must
        be an ancestor of the record's destination leaf (any node whose
        region contains the point qualifies, by construction of the cuts).
        """
        depth = 0
        while not node.is_leaf:
            node = node.route(record.point)  # type: ignore[union-attr]
            depth += 1
        if OBS.enabled:
            OBS.count("rtree.inserts")
            OBS.observe("rtree.routing_depth", depth)
        leaf: LeafNode = node  # type: ignore[assignment]
        leaf.records.append(record)
        self._store.on_append(leaf, record)
        self._count += 1
        self._grow_mbrs(leaf, record.point)
        if len(leaf.records) > self._split_trigger:
            self._split_leaf(leaf)

    def insert_all(self, records: Iterable[Record]) -> None:
        """Insert records one by one (the paper's "tuple-loading" baseline)."""
        for record in records:
            self.insert(record)

    def begin_bulk(self, trigger: int | None = None) -> None:
        """Enter bulk mode: defer fine-grained leaf splits.

        During a bulk load leaves are allowed to grow to ``trigger`` records
        (default ``max(leaf_capacity, 64 * k)``) before splitting, so that
        when :meth:`finish_bulk` splits them down to the occupancy invariant
        the split search runs over large record sets — which the vectorized
        exhaustive evaluator handles at C speed — instead of thousands of
        tiny increments.  The k-anonymity floor is unaffected (deferral can
        only make leaves larger), but the ``<= leaf_capacity`` invariant
        holds only after :meth:`finish_bulk`.
        """
        if trigger is None:
            trigger = max(self._leaf_capacity, 64 * self._k)
        self._split_trigger = max(trigger, self._leaf_capacity)

    def finish_bulk(self) -> None:
        """Leave bulk mode: split every over-capacity leaf down to size."""
        self._split_trigger = self._leaf_capacity
        with TRACE.span("rtree.finish_bulk", "index"):
            for leaf in list(self.iter_leaves()):
                if len(leaf.records) > self._leaf_capacity:
                    self._split_leaf(leaf)

    @property
    def in_bulk_mode(self) -> bool:
        return self._split_trigger != self._leaf_capacity

    def bulk_insert_descending(self, node: Node, records: Sequence[Record]) -> None:
        """Deliver a batch below ``node``, grouping per destination leaf.

        The buffer-tree flush path: route every record first (cheap — a few
        comparisons), then mutate each touched leaf once, so MBR maintenance
        and split checks are paid per leaf-batch instead of per record.
        """
        if node.is_leaf:
            for record in records:
                self.insert_descending(node, record)
            return
        groups: dict[int, tuple[LeafNode, list[Record]]] = {}
        for record in records:
            target = node
            while not target.is_leaf:
                target = target.route(record.point)  # type: ignore[union-attr]
            entry = groups.get(target.node_id)
            if entry is None:
                groups[target.node_id] = (target, [record])  # type: ignore[assignment]
            else:
                entry[1].append(record)
        for leaf, batch in groups.values():
            self._bulk_leaf_insert(leaf, batch)

    def _bulk_leaf_insert(self, leaf: LeafNode, records: list[Record]) -> None:
        if OBS.enabled:
            OBS.count("rtree.inserts", len(records))
        leaf.records.extend(records)
        for record in records:
            self._store.on_append(leaf, record)
        self._count += len(records)
        self._grow_mbrs_box(leaf, Box.from_points(r.point for r in records))
        if len(leaf.records) > self._split_trigger:
            self._split_leaf(leaf)

    def _grow_mbrs(self, leaf: LeafNode, point: Sequence[float]) -> None:
        node: Node | None = leaf
        while node is not None:
            if node.mbr is None:
                node.mbr = Box.from_point(point)
            elif node.mbr.contains_point(point):
                # Ancestor MBRs contain this one, so they contain the point.
                break
            else:
                node.mbr = node.mbr.union_point(point)
            node = node.parent

    def _grow_mbrs_box(self, leaf: LeafNode, box: Box) -> None:
        node: Node | None = leaf
        while node is not None:
            if node.mbr is None:
                node.mbr = box
            elif node.mbr.contains_box(box):
                break
            else:
                node.mbr = node.mbr.union(box)
            node = node.parent

    # -- splitting ---------------------------------------------------------------

    def _split_leaf(self, leaf: LeafNode) -> None:
        if not TRACE.enabled:
            return self._split_leaf_inner(leaf)
        with TRACE.span("rtree.leaf_split", "index", records=len(leaf.records)):
            return self._split_leaf_inner(leaf)

    def _split_leaf_inner(self, leaf: LeafNode) -> None:
        decision = self._policy.choose_split(
            leaf.records, self._k, self._domain_extents
        )
        if decision is None:
            # No legal cut: the leaf stays over-full, which is privacy-safe.
            if OBS.enabled:
                OBS.count("rtree.split_refusals")
            if TRACE.enabled:
                TRACE.instant(
                    "rtree.split_refusal", "index", records=len(leaf.records)
                )
            return
        if OBS.enabled:
            OBS.count("rtree.leaf_splits")
            OBS.count("rtree.mbr_recomputations", 2)
        left_records, right_records = partition_records(
            leaf.records, decision.dimension, decision.value
        )
        left = LeafNode()
        left.records = left_records
        left.recompute_mbr()
        right = LeafNode()
        right.records = right_records
        right.recompute_mbr()
        self._store.on_split(leaf, left, right)
        cut = make_cut(decision.dimension, decision.value, left, right)
        self._replace_with_cut(leaf, cut, left, right)
        # Bulk insertion can leave a leaf far above capacity; keep splitting
        # until every piece fits (or no legal cut remains).
        if len(left.records) > self._split_trigger:
            self._split_leaf(left)
        if len(right.records) > self._split_trigger:
            self._split_leaf(right)

    def _split_internal(self, node: InternalNode) -> None:
        if OBS.enabled:
            OBS.count("rtree.internal_splits")
            OBS.count("rtree.mbr_recomputations", 2)
        if TRACE.enabled:
            TRACE.instant("rtree.internal_split", "index", level=node.level)
        cut_root = node.cuts.inner
        if not isinstance(cut_root, Cut):
            raise AssertionError("an overflowing internal node must hold a cut")
        # The promoted cut's two slot subtrees become the new nodes' cut
        # trees; they are shared, not copied, so stale views keep routing.
        left = InternalNode(node.level, cut_root.left)
        right = InternalNode(node.level, cut_root.right)
        for child in left.children():
            child.parent = left
        for child in right.children():
            child.parent = right
        left.recompute_mbr()
        right.recompute_mbr()
        cut = make_cut(cut_root.dimension, cut_root.value, left, right)
        self._replace_with_cut(node, cut, left, right)

    def _replace_with_cut(
        self, old: Node, cut: Cut, left: Node, right: Node
    ) -> None:
        parent = old.parent
        if parent is None:
            new_root = InternalNode(old.level + 1, Slot(cut))
            left.parent = new_root
            right.parent = new_root
            new_root.recompute_mbr()
            self._root = new_root
            return
        parent.replace_child(old, cut, added=1)
        left.parent = parent
        right.parent = parent
        if parent.fanout > self._max_fanout:
            self._split_internal(parent)

    # -- deletion -----------------------------------------------------------------

    def delete(self, rid: int, point: Sequence[float]) -> Record:
        """Remove the record with the given id, preserving the occupancy floor.

        An underflowing leaf is dissolved and its remaining records are
        reinserted (the classic R-tree treatment), so the invariant holds
        again on return.  Raises ``KeyError`` when no such record exists.
        """
        if self._root is None:
            raise KeyError(rid)
        node = self._root
        while not node.is_leaf:
            node = node.route(point)  # type: ignore[union-attr]
        leaf: LeafNode = node  # type: ignore[assignment]
        for index, record in enumerate(leaf.records):
            if record.rid == rid:
                removed = leaf.records.pop(index)
                break
        else:
            raise KeyError(rid)
        if OBS.enabled:
            OBS.count("rtree.deletes")
        self._count -= 1
        if leaf is self._root:
            leaf.recompute_mbr()
            self._store.on_rewrite(leaf)
            return removed
        if len(leaf.records) >= self._k:
            self._store.on_rewrite(leaf)
            self._shrink_mbrs(leaf)
            return removed
        # Underflow: dissolve the leaf and reinsert the orphans.
        orphans = list(leaf.records)
        if OBS.enabled:
            OBS.count("rtree.dissolves")
            OBS.count("rtree.reinserted_orphans", len(orphans))
        if TRACE.enabled:
            TRACE.instant(
                "rtree.underflow_dissolve", "index", orphans=len(orphans)
            )
        leaf.records = []
        self._dissolve_leaf(leaf)
        self._count -= len(orphans)
        reinserted = 0
        try:
            for orphan in orphans:
                self.insert(orphan)
                reinserted += 1
        except BaseException:
            # The leaf is already dissolved and the counts decremented; a
            # failed reinsert (split-policy error, leaf-store I/O fault)
            # must not vanish the remaining orphans, and delete() raising
            # means the caller's record stays too.  Restore everything
            # through a fail-safe path that cannot itself raise.
            self._restore_records(orphans[reinserted:])
            self._restore_records([removed])
            raise
        return removed

    def _restore_records(self, records: Sequence[Record]) -> None:
        """Put records back into the tree without any fallible machinery.

        The underflow-recovery path: routes each record to its leaf and
        appends in memory only — no split (a leaf left over-capacity is
        privacy-safe; only the k-floor matters) and best-effort store
        mirroring (the paged store is a metering layer and may be the very
        thing that failed).
        """
        touched: dict[int, LeafNode] = {}
        for record in records:
            node = self._root
            if node is None:
                node = self._root = LeafNode()
            while not node.is_leaf:
                node = node.route(record.point)  # type: ignore[union-attr]
            leaf: LeafNode = node  # type: ignore[assignment]
            leaf.records.append(record)
            self._count += 1
            self._grow_mbrs(leaf, record.point)
            touched[leaf.node_id] = leaf
            try:
                self._store.on_append(leaf, record)
            except Exception:
                pass  # metering only; the in-memory tree stays authoritative
        for leaf in touched.values():
            if len(leaf.records) > self._split_trigger:
                try:
                    self._split_leaf(leaf)
                except Exception:
                    pass  # over-full is privacy-safe; splitting is optional here

    def _shrink_mbrs(self, leaf: LeafNode) -> None:
        leaf.recompute_mbr()
        recomputed = 1
        node = leaf.parent
        while node is not None:
            node.recompute_mbr()
            recomputed += 1
            node = node.parent
        if OBS.enabled:
            OBS.count("rtree.mbr_recomputations", recomputed)

    def _dissolve_leaf(self, leaf: LeafNode) -> None:
        self._store.on_dissolve(leaf)
        node: Node = leaf
        parent = node.parent
        # Unwind any single-child chain above the disappearing leaf.
        while parent is not None and parent.fanout == 1:
            node = parent
            parent = node.parent
        if parent is None:
            # The whole tree is draining away.
            self._root = None
            return
        parent.remove_child(node)
        self._shrink_mbrs_from(parent)
        # A root with a single child loses a level.
        root = self._root
        while (
            isinstance(root, InternalNode)
            and root.fanout == 1
        ):
            only_child = next(root.children())
            only_child.parent = None
            self._root = only_child
            root = only_child

    def _shrink_mbrs_from(self, node: Node | None) -> None:
        recomputed = 0
        while node is not None:
            node.recompute_mbr()
            recomputed += 1
            node = node.parent
        if OBS.enabled and recomputed:
            OBS.count("rtree.mbr_recomputations", recomputed)

    def update(self, rid: int, old_point: Sequence[float], record: Record) -> Record:
        """Update a record's quasi-identifiers: delete + reinsert.

        §1 lists updates alongside insertions and deletions as what
        database indexes are designed for; with disjoint regions an update
        is exactly a move between leaves.  Returns the record that was
        replaced; raises ``KeyError`` when no record with ``rid`` exists at
        ``old_point``.

        The operation is atomic: the new record is validated before the old
        one is removed, and if the insert fails anyway the removed record
        is put back, so a failed update never loses data.
        """
        if len(record.point) != self._dimensions:
            raise ValueError(
                f"record {record.rid} has {len(record.point)} dimensions, "
                f"tree expects {self._dimensions}"
            )
        removed = self.delete(rid, old_point)
        try:
            self.insert(record)
        except Exception:
            self.insert(removed)
            raise
        if OBS.enabled:
            OBS.count("rtree.updates")
        return removed

    # -- search ----------------------------------------------------------------

    def search(self, box: Box) -> list[Record]:
        """All records whose points fall inside the query box."""
        results: list[Record] = []
        if self._root is None:
            return results
        stack: list[Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    record
                    for record in node.records  # type: ignore[union-attr]
                    if box.contains_point(record.point)
                )
            else:
                stack.extend(node.children())  # type: ignore[union-attr]
        return results

    def matching_leaves(self, box: Box) -> list[LeafNode]:
        """Leaves whose MBR intersects the box — the §2.3 candidate set ``W``.

        Thanks to MBRs this set is smaller than the set of leaves whose
        *regions* intersect the box, which is exactly the precision benefit
        the paper attributes to minimum bounding rectangles.
        """
        matches: list[LeafNode] = []
        if self._root is None:
            return matches
        stack: list[Node] = [self._root]
        while stack:
            node = stack.pop()
            if node.mbr is None or not node.mbr.intersects(box):
                continue
            if node.is_leaf:
                matches.append(node)  # type: ignore[arg-type]
            else:
                stack.extend(node.children())  # type: ignore[union-attr]
        return matches

    def locate_leaf(self, point: Sequence[float]) -> LeafNode | None:
        """The unique leaf whose region contains the point."""
        if self._root is None:
            return None
        node = self._root
        while not node.is_leaf:
            node = node.route(point)  # type: ignore[union-attr]
        return node  # type: ignore[return-value]

    # -- traversal ----------------------------------------------------------------

    def leaves(self) -> list[LeafNode]:
        """All leaves in left-to-right (spatially sequential) order."""
        return list(self.iter_leaves())

    def iter_leaves(self) -> Iterator[LeafNode]:
        if self._root is None:
            return
        yield from self._iter_leaves(self._root)

    def _iter_leaves(self, node: Node) -> Iterator[LeafNode]:
        if node.is_leaf:
            yield node  # type: ignore[misc]
            return
        for child in node.children():  # type: ignore[union-attr]
            yield from self._iter_leaves(child)

    def nodes_at_level(self, level: int) -> list[Node]:
        """All nodes at a tree level, left to right (for hierarchical releases)."""
        if self._root is None or level > self._root.level or level < 0:
            return []
        found: list[Node] = []

        def visit(node: Node) -> None:
            if node.level == level:
                found.append(node)
                return
            if not node.is_leaf:
                for child in node.children():  # type: ignore[union-attr]
                    visit(child)

        visit(self._root)
        return found

    def leaf_groups(self) -> list[list[Record]]:
        """Record groups per leaf, in leaf order — the raw k-anonymous partitions."""
        return [list(leaf.records) for leaf in self.iter_leaves()]

    # -- statistics ---------------------------------------------------------------

    def stats(self) -> dict[str, object]:
        """Structural statistics: node counts, occupancy, fanout per level.

        A diagnostic snapshot (used by tests and the examples) — not part
        of any paper experiment, but indispensable when tuning capacity
        factors and fanout against a new workload.
        """
        leaves = self.leaves()
        leaf_sizes = [len(leaf.records) for leaf in leaves]
        per_level: dict[int, int] = {}
        fanouts: list[int] = []
        if self._root is not None:
            stack: list[Node] = [self._root]
            while stack:
                node = stack.pop()
                per_level[node.level] = per_level.get(node.level, 0) + 1
                if not node.is_leaf:
                    internal: InternalNode = node  # type: ignore[assignment]
                    fanouts.append(internal.fanout)
                    stack.extend(internal.children())
        return {
            "records": self._count,
            "height": self.height,
            "leaves": len(leaves),
            "nodes_per_level": dict(sorted(per_level.items())),
            "leaf_occupancy_min": min(leaf_sizes) if leaf_sizes else 0,
            "leaf_occupancy_max": max(leaf_sizes) if leaf_sizes else 0,
            "leaf_occupancy_mean": (
                sum(leaf_sizes) / len(leaf_sizes) if leaf_sizes else 0.0
            ),
            "mean_fanout": sum(fanouts) / len(fanouts) if fanouts else 0.0,
        }

    # -- invariants ---------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify every structural invariant; raises ``AssertionError`` on any breach.

        Checked: record count, uniform leaf depth, parent pointers, fanout
        bounds, leaf occupancy (k-floor with the documented exemptions), MBR
        exactness, and cut separation (every record in a cut's left subtree
        lies at or below the cut value; every record on the right lies
        strictly above — i.e. sibling regions are genuinely disjoint).
        """
        if self._root is None:
            assert self._count == 0, "empty tree with a nonzero record count"
            return
        assert self._root.parent is None, "root must not have a parent"
        total = self._check_node(self._root)
        assert total == self._count, (
            f"record count mismatch: counted {total}, tracked {self._count}"
        )

    def _check_node(self, node: Node) -> int:
        if node.is_leaf:
            leaf: LeafNode = node  # type: ignore[assignment]
            count = len(leaf.records)
            if node is not self._root:
                assert count >= self._k, (
                    f"leaf {node.node_id} holds {count} < k={self._k} records"
                )
            if count > self._leaf_capacity:
                decision = self._policy.choose_split(
                    leaf.records, self._k, self._domain_extents
                )
                assert decision is None, (
                    f"leaf {node.node_id} is over-full ({count} > "
                    f"{self._leaf_capacity}) despite a legal split existing"
                )
            if count:
                expected = Box.from_points(record.point for record in leaf.records)
                assert leaf.mbr == expected, f"leaf {node.node_id} MBR is stale"
            else:
                assert leaf.mbr is None or node is self._root
            return count
        internal: InternalNode = node  # type: ignore[assignment]
        children = list(internal.children())
        assert internal.fanout == len(children), (
            f"node {node.node_id} fanout {internal.fanout} != {len(children)} children"
        )
        assert 1 <= internal.fanout <= self._max_fanout, (
            f"node {node.node_id} fanout {internal.fanout} outside [1, {self._max_fanout}]"
        )
        total = 0
        boxes: list[Box] = []
        for child in children:
            assert child.parent is internal, (
                f"child {child.node_id} has a stale parent pointer"
            )
            assert child.level == internal.level - 1, (
                f"child {child.node_id} level {child.level} under level "
                f"{internal.level} parent (leaf depth must be uniform)"
            )
            total += self._check_node(child)
            if child.mbr is not None:
                boxes.append(child.mbr)
        if boxes:
            expected = boxes[0]
            for box in boxes[1:]:
                expected = expected.union(box)
            assert internal.mbr == expected, f"node {node.node_id} MBR is stale"
        self._check_cut_separation(internal.cuts)
        return total

    def _check_cut_separation(self, slot: Slot) -> None:
        item = slot.inner
        if not isinstance(item, Cut):
            return
        for record in self._records_under(item.left):
            assert record.point[item.dimension] <= item.value, (
                f"record {record.rid} violates a cut on dimension {item.dimension}"
            )
        for record in self._records_under(item.right):
            assert record.point[item.dimension] > item.value, (
                f"record {record.rid} violates a cut on dimension {item.dimension}"
            )
        self._check_cut_separation(item.left)
        self._check_cut_separation(item.right)

    def _records_under(self, slot: Slot) -> Iterator[Record]:
        item = slot.inner
        if isinstance(item, Cut):
            yield from self._records_under(item.left)
            yield from self._records_under(item.right)
        elif isinstance(item, LeafNode):
            yield from item.records
        elif isinstance(item, InternalNode):
            yield from self._records_under(item.cuts)
