"""Buffer-tree bulk loading (Arge; van den Bercken, Seeger & Widmayer).

The paper's §2.1 loader: instead of trickling records root-to-leaf one at a
time, every internal node owns an external *buffer*.  A batch insert merely
appends to the root buffer; when a node's buffer exceeds its page budget the
buffered records are "re-activated" and pushed one level down — into the
child buffers, or straight into the leaves when the children are leaves.
Restructuring (leaf splits cascading upward) happens during those pushes.
The effect is the external-sort-like I/O bound
``O(N/B · log_{M/B}(N/B))`` for a bulk load, and respectable constants even
in memory, because per-record work is amortized across a whole buffer.

Correctness note on split timing: the underlying
:class:`~repro.index.rtree.RPlusTree` propagates internal-node splits
immediately rather than deferring them as the original buffer-tree does.
The two schedules are equivalent here because a node's buffer is always
drained *before* any insert below it can occur, so every node that splits
has an empty buffer — the loader never needs to split a buffer.  (Every
flush empties its node's buffer first, and splits only propagate along the
ancestor path of the flush, all of whose buffers were emptied by the
enclosing flush chain.)

Buffers live on pages of the simulated storage layer when a
:class:`~repro.storage.buffer_pool.BufferPool` is supplied, so clearing a
cold buffer costs counted page reads and spilling a hot one costs counted
writes — the measured quantity of Figure 8(b).  Without a pool the loader
runs fully in memory (the fast path for the wall-clock figures).
"""

from __future__ import annotations

import math
from typing import Iterable

from repro.dataset.record import Record
from repro.index.node import InternalNode, LeafNode, Node
from repro.index.rtree import RPlusTree
from repro.obs import OBS, TRACE
from repro.storage.buffer_pool import BufferPool

#: Default number of buffer pages a node may hold before it is cleared.
DEFAULT_BUFFER_PAGES = 4

#: Buffer capacity, in records, used when no buffer pool is attached.
DEFAULT_MEMORY_BUFFER_RECORDS = 512


class _NodeBuffer:
    """One node's external buffer: a list of page ids, or an in-memory list."""

    __slots__ = ("node", "page_ids", "records", "count")

    def __init__(self, node: InternalNode) -> None:
        self.node = node
        self.page_ids: list[int] = []
        self.records: list[Record] = []
        self.count = 0


class BufferTreeLoader:
    """Batch loader that amortizes insertions through per-node buffers.

    Parameters
    ----------
    tree:
        The target index (normally empty, but incremental batch loads into a
        populated tree work identically — this is the Figure 7(b) path).
    pool:
        Optional buffer pool; when given, buffers are paged through it and
        all buffer traffic is I/O-accounted.  When omitted, buffers are
        plain in-memory lists.
    buffer_pages:
        Page budget per node buffer before it is cleared downward.
    """

    def __init__(
        self,
        tree: RPlusTree,
        pool: BufferPool[Record] | None = None,
        buffer_pages: int = DEFAULT_BUFFER_PAGES,
    ) -> None:
        if buffer_pages < 1:
            raise ValueError("buffer_pages must be at least 1")
        self._tree = tree
        self._pool = pool
        self._buffer_pages = buffer_pages
        if pool is not None:
            self._records_per_page = pool.pagefile.items_per_page
        else:
            self._records_per_page = DEFAULT_MEMORY_BUFFER_RECORDS
        self._buffers: dict[int, _NodeBuffer] = {}

    @property
    def tree(self) -> RPlusTree:
        return self._tree

    @property
    def buffered_records(self) -> int:
        """Records currently parked in buffers (not yet in leaves)."""
        return sum(buffer.count for buffer in self._buffers.values())

    # -- public API -----------------------------------------------------------

    def load(self, records: Iterable[Record], charge_input: bool = True) -> int:
        """Bulk-load a record stream and fully drain the buffers.

        Returns the number of records actually consumed from the stream —
        the count callers should report, rather than whatever the stream's
        own metadata claims.
        """
        with OBS.span("buffer_tree.load"), TRACE.span(
            "buffer_tree.load", "loader"
        ):
            consumed = self.insert_batch(records, charge_input=charge_input)
            self.drain()
        return consumed

    def insert_batch(
        self, records: Iterable[Record], charge_input: bool = True
    ) -> int:
        """Push a batch into the tree through the root buffer.

        Returns the number of records consumed.  Until :meth:`drain` is
        called some records may still sit in buffers; the tree's leaf
        partitioning only reflects fully delivered records.
        """
        with OBS.span("buffer_tree.insert_batch"), TRACE.span(
            "buffer_tree.insert_batch", "loader"
        ):
            return self._insert_batch(records, charge_input)

    def _insert_batch(
        self, records: Iterable[Record], charge_input: bool
    ) -> int:
        consumed = 0
        pending: list[Record] = []
        self._tree.begin_bulk()
        for record in records:
            consumed += 1
            # Bootstrap: while the tree is a bare leaf, insert directly.
            root = self._tree.root
            if root is None or root.is_leaf:
                self._tree.insert(record)
                continue
            pending.append(record)
            if len(pending) >= self._records_per_page:
                self._push_to_buffer(root, pending)  # type: ignore[arg-type]
                pending = []
                # The streaming discipline of the algorithm: the moment the
                # root buffer breaches its page budget, its records are
                # "re-activated" and pushed down — the tree grows steadily
                # instead of swallowing the whole input in one flush.
                buffer = self._buffers.get(root.node_id)
                if buffer is not None and self._over_budget(buffer):
                    self._flush(buffer)
        root = self._tree.root
        if pending:
            if root is not None and not root.is_leaf:
                self._push_to_buffer(root, pending)  # type: ignore[arg-type]
            else:
                for record in pending:
                    self._tree.insert(record)
        if charge_input and self._pool is not None and consumed:
            pages = math.ceil(consumed / self._records_per_page)
            self._pool.pagefile.stats.reads += pages
            if OBS.enabled:
                OBS.count("page.reads", pages)
        # Clear the root buffer if it breached its budget.
        root = self._tree.root
        if root is not None and not root.is_leaf:
            buffer = self._buffers.get(root.node_id)
            if buffer is not None and self._over_budget(buffer):
                self._flush(buffer)
        return consumed

    def drain(self) -> None:
        """Clear every buffer, top level first, until all records reach leaves.

        Top-down order guarantees that no node receives buffered records
        after its own buffer was cleared, so one sweep per level suffices
        (modulo threshold-triggered recursive flushes, which are safe in any
        order).
        """
        if OBS.enabled:
            OBS.count("buffer_tree.drains")
        with OBS.span("buffer_tree.drain"), TRACE.span(
            "buffer_tree.drain", "loader"
        ):
            while self._buffers:
                buffer = max(self._buffers.values(), key=lambda b: b.node.level)
                if OBS.enabled:
                    OBS.count("buffer_tree.drain_sweeps")
                if TRACE.enabled:
                    TRACE.instant(
                        "buffer_tree.drain_sweep",
                        "loader",
                        level=buffer.node.level,
                        buffered=buffer.count,
                    )
                self._flush(buffer)
            # Splits deferred during bulk mode are resolved now, so the
            # occupancy invariant holds the moment the drain returns.
            self._tree.finish_bulk()

    # -- buffer mechanics --------------------------------------------------------

    def _push_to_buffer(self, node: InternalNode, records: list[Record]) -> None:
        if OBS.enabled:
            OBS.count("buffer_tree.pushes")
            OBS.count("buffer_tree.pushed_records", len(records))
        buffer = self._buffers.get(node.node_id)
        if buffer is None:
            buffer = _NodeBuffer(node)
            self._buffers[node.node_id] = buffer
        if self._pool is None:
            buffer.records.extend(records)
        else:
            remaining = list(records)
            while remaining:
                if buffer.page_ids:
                    page = self._pool.get(buffer.page_ids[-1], for_write=True)
                    if not page.is_full:
                        remaining = page.extend_upto(remaining)
                        continue
                page = self._pool.new_page()
                buffer.page_ids.append(page.page_id)
                remaining = page.extend_upto(remaining)
        buffer.count += len(records)

    def _over_budget(self, buffer: _NodeBuffer) -> bool:
        budget_records = self._buffer_pages * self._records_per_page
        return buffer.count > budget_records

    def _take_records(self, buffer: _NodeBuffer) -> list[Record]:
        """Read a buffer's records (charging I/O) and release its pages."""
        if self._pool is None:
            records = buffer.records
            buffer.records = []
        else:
            records = []
            for page_id in buffer.page_ids:
                page = self._pool.get(page_id)
                records.extend(page.items)
                self._pool.free(page_id)
            buffer.page_ids = []
        buffer.count = 0
        return records

    def _flush(self, buffer: _NodeBuffer) -> None:
        """Clear one buffer: push its records one level down.

        By the drain-before-descend discipline this node's buffer is empty
        for the whole time any structural change below it can occur, which
        is what makes immediate split propagation in the tree equivalent to
        the original algorithm's deferred restructuring.
        """
        if not TRACE.enabled:
            return self._flush_inner(buffer)
        with TRACE.span(
            "buffer_tree.flush",
            "loader",
            level=buffer.node.level,
            records=buffer.count,
        ):
            return self._flush_inner(buffer)

    def _flush_inner(self, buffer: _NodeBuffer) -> None:
        node = buffer.node
        self._buffers.pop(node.node_id, None)
        records = self._take_records(buffer)
        if not records:
            return
        if OBS.enabled:
            OBS.count("buffer_tree.flushes")
            OBS.observe("buffer_tree.records_per_flush", len(records))
        children_are_leaves = node.level == 1
        if children_are_leaves:
            # Deliver straight into the leaves, batched per leaf; splits
            # propagate upward through the tree machinery as they happen.
            # Routing from a possibly-stale node object is sound: splits
            # share, rather than copy, the cut subtrees.
            self._tree.bulk_insert_descending(node, records)
            return
        # Children are internal: partition the buffer by routing one level,
        # append to the child buffers, then clear any that went over budget.
        groups: dict[int, tuple[InternalNode, list[Record]]] = {}
        for record in records:
            child = node.route(record.point)
            entry = groups.get(child.node_id)
            if entry is None:
                groups[child.node_id] = (child, [record])  # type: ignore[arg-type]
            else:
                entry[1].append(record)
        for child, child_records in groups.values():
            self._push_to_buffer(child, child_records)
        for child, _child_records in list(groups.values()):
            child_buffer = self._buffers.get(child.node_id)
            if child_buffer is not None and self._over_budget(child_buffer):
                self._flush(child_buffer)


def buffer_tree_bulk_load(
    records: Iterable[Record],
    dimensions: int,
    k: int,
    pool: BufferPool[Record] | None = None,
    **tree_kwargs: object,
) -> RPlusTree:
    """Convenience: build a fresh tree and bulk-load it in one call."""
    tree = RPlusTree(dimensions, k, **tree_kwargs)  # type: ignore[arg-type]
    loader = BufferTreeLoader(tree, pool=pool)
    loader.load(records)
    return tree
