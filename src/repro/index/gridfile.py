"""A grid file (Nievergelt, Hinterberger & Sevcik) over point data.

§4 motivates the compaction procedure with "any index, such as the grid
file, that does not maintain MBRs for its records": grid-file buckets are
described by *grid cell regions* — cross products of per-dimension scale
intervals — so the generalizations a grid-based anonymizer publishes are
loose region boxes, exactly the kind of output compaction dramatically
improves.  This module provides that substrate so the retrofit experiment
can be run against a genuinely different index family.

Structure, faithful to the original design:

* one **linear scale** per dimension — a sorted list of split values that
  partitions the domain into intervals;
* a **directory** mapping each grid cell (a tuple of interval indices) to a
  bucket; several cells may share a bucket (the classic "bucket region"
  convexity rule is kept: a bucket's cells always form a box of cells);
* bucket overflow splits the bucket's cell-region along one dimension at
  the median of the bucket's records, extending that dimension's scale if
  needed; only the overflowing bucket's records move.

Grid files famously degrade in high dimensions — every new boundary
multiplies a whole slab of directory cells — which is one reason R-trees
won; :attr:`GridFile.directory_cells` exposes the blow-up so the ablation
bench can report it.
"""

from __future__ import annotations

import bisect
import itertools
from typing import Iterator, Sequence

from repro.dataset.record import Record
from repro.geometry.box import Box

#: Safety valve: refuse to grow the directory beyond this many cells.
DEFAULT_MAX_DIRECTORY_CELLS = 2_000_000


class GridBucket:
    """A bucket: records plus the box of directory cells it owns."""

    __slots__ = ("bucket_id", "records", "cell_lows", "cell_highs")

    def __init__(
        self, bucket_id: int, cell_lows: tuple[int, ...], cell_highs: tuple[int, ...]
    ) -> None:
        self.bucket_id = bucket_id
        self.records: list[Record] = []
        #: Inclusive bounds of the cell-index box this bucket covers.
        self.cell_lows = cell_lows
        self.cell_highs = cell_highs

    def __len__(self) -> int:
        return len(self.records)

    def cells(self) -> Iterator[tuple[int, ...]]:
        """Every directory cell owned by this bucket."""
        ranges = [
            range(low, high + 1)
            for low, high in zip(self.cell_lows, self.cell_highs)
        ]
        return itertools.product(*ranges)


class GridFile:
    """A dynamic grid file with per-dimension scales and a cell directory."""

    def __init__(
        self,
        lows: Sequence[float],
        highs: Sequence[float],
        bucket_capacity: int,
        max_directory_cells: int = DEFAULT_MAX_DIRECTORY_CELLS,
    ) -> None:
        if bucket_capacity < 1:
            raise ValueError("bucket capacity must be positive")
        if len(lows) != len(highs):
            raise ValueError("domain lows/highs length mismatch")
        self._lows = tuple(float(v) for v in lows)
        self._highs = tuple(float(v) for v in highs)
        self._dimensions = len(self._lows)
        self._capacity = bucket_capacity
        self._max_cells = max_directory_cells
        #: Scales: per dimension, the sorted interior split values.
        self._scales: list[list[float]] = [[] for _ in range(self._dimensions)]
        root = GridBucket(0, (0,) * self._dimensions, (0,) * self._dimensions)
        self._buckets: dict[int, GridBucket] = {0: root}
        self._directory: dict[tuple[int, ...], int] = {(0,) * self._dimensions: 0}
        self._next_bucket_id = 1
        self._count = 0
        self._next_split_dimension = 0

    # -- basic accessors -----------------------------------------------------

    @property
    def dimensions(self) -> int:
        return self._dimensions

    def __len__(self) -> int:
        return self._count

    @property
    def bucket_count(self) -> int:
        return len(self._buckets)

    @property
    def directory_cells(self) -> int:
        """Total grid cells — the structure's high-dimension Achilles heel."""
        cells = 1
        for scale in self._scales:
            cells *= len(scale) + 1
        return cells

    def buckets(self) -> list[GridBucket]:
        """All buckets, ordered by their cell position (row-major)."""
        return sorted(self._buckets.values(), key=lambda b: b.cell_lows)

    # -- lookup ----------------------------------------------------------------

    def _cell_of(self, point: Sequence[float]) -> tuple[int, ...]:
        # bisect_left keeps the boundary convention aligned with splits:
        # a value equal to a scale boundary belongs to the cell on its left
        # (intervals are right-closed), matching the `<=` split predicate.
        return tuple(
            bisect.bisect_left(self._scales[d], point[d])
            for d in range(self._dimensions)
        )

    def bucket_of(self, point: Sequence[float]) -> GridBucket:
        """The bucket whose region contains the point."""
        return self._buckets[self._directory[self._cell_of(point)]]

    def cell_box(self, cell_lows: tuple[int, ...], cell_highs: tuple[int, ...]) -> Box:
        """The spatial box covered by a cell-index box (bucket region)."""
        lows = []
        highs = []
        for d in range(self._dimensions):
            scale = self._scales[d]
            lows.append(self._lows[d] if cell_lows[d] == 0 else scale[cell_lows[d] - 1])
            highs.append(
                self._highs[d] if cell_highs[d] == len(scale) else scale[cell_highs[d]]
            )
        return Box(tuple(lows), tuple(highs))

    def bucket_region(self, bucket: GridBucket) -> Box:
        """The (MBR-free) region box a grid-based anonymizer publishes."""
        return self.cell_box(bucket.cell_lows, bucket.cell_highs)

    def search(self, box: Box) -> list[Record]:
        """All records inside the query box (directory-guided)."""
        results: list[Record] = []
        seen: set[int] = set()
        for bucket in self._buckets.values():
            if bucket.bucket_id in seen:
                continue
            seen.add(bucket.bucket_id)
            if self.bucket_region(bucket).intersects(box):
                results.extend(
                    record
                    for record in bucket.records
                    if box.contains_point(record.point)
                )
        return results

    # -- insertion ---------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Insert one record, splitting the target bucket if it overflows."""
        if len(record.point) != self._dimensions:
            raise ValueError(
                f"record {record.rid} has {len(record.point)} dimensions, "
                f"grid expects {self._dimensions}"
            )
        bucket = self.bucket_of(record.point)
        bucket.records.append(record)
        self._count += 1
        while len(bucket.records) > self._capacity:
            if not self._split_bucket(bucket):
                break
            bucket = self.bucket_of(record.point)

    def insert_all(self, records: Sequence[Record]) -> None:
        for record in records:
            self.insert(record)

    # -- splitting ----------------------------------------------------------------

    def _split_bucket(self, bucket: GridBucket) -> bool:
        """Split an overflowing bucket; returns False when impossible."""
        for offset in range(self._dimensions):
            dimension = (self._next_split_dimension + offset) % self._dimensions
            if self._try_split(bucket, dimension):
                self._next_split_dimension = (dimension + 1) % self._dimensions
                return True
        return False

    def _try_split(self, bucket: GridBucket, dimension: int) -> bool:
        from repro.index.split import best_threshold

        values = [record.point[dimension] for record in bucket.records]
        found = best_threshold(values, 1)
        if found is None:
            # Every record shares one value on this dimension.
            return False
        boundary_value = found[0]
        if bucket.cell_lows[dimension] == bucket.cell_highs[dimension]:
            # The bucket owns a single cell column on this dimension: the
            # scale itself must gain a boundary (splitting a whole slab of
            # the directory).
            scale = self._scales[dimension]
            if boundary_value not in scale:
                new_cells = (
                    self.directory_cells // (len(scale) + 1) * (len(scale) + 2)
                )
                if new_cells > self._max_cells:
                    return False
                position = bisect.bisect_right(scale, boundary_value)
                scale.insert(position, boundary_value)
                self._shift_directory(dimension, position)
        # The bucket now spans at least two cell columns on `dimension`
        # (either it already did, or the scale split just created them);
        # carve it at the cell boundary at or below the chosen value.
        return self._carve(bucket, dimension, boundary_value)

    def _shift_directory(self, dimension: int, position: int) -> None:
        """A new boundary at scale index `position`: renumber cells and
        duplicate the split slab's bucket assignments."""
        updated: dict[tuple[int, ...], int] = {}
        for cell, bucket_id in self._directory.items():
            index = cell[dimension]
            if index > position:
                shifted = list(cell)
                shifted[dimension] = index + 1
                updated[tuple(shifted)] = bucket_id
            elif index == position:
                # The split cell column: both halves keep the old buckets.
                updated[cell] = bucket_id
                duplicated = list(cell)
                duplicated[dimension] = index + 1
                updated[tuple(duplicated)] = bucket_id
            else:
                updated[cell] = bucket_id
        self._directory = updated
        for candidate in self._buckets.values():
            lows = list(candidate.cell_lows)
            highs = list(candidate.cell_highs)
            if lows[dimension] > position:
                lows[dimension] += 1
            if highs[dimension] >= position:
                highs[dimension] += 1
            candidate.cell_lows = tuple(lows)
            candidate.cell_highs = tuple(highs)

    def _carve(self, bucket: GridBucket, dimension: int, median: float) -> bool:
        """Divide a bucket's cell box at the scale boundary <= median."""
        scale = self._scales[dimension]
        boundary = bisect.bisect_right(scale, median) - 1
        # The boundary between cell `boundary` and `boundary + 1`.
        if not (bucket.cell_lows[dimension] <= boundary < bucket.cell_highs[dimension]):
            return False
        split_value = scale[boundary]
        right = GridBucket(
            self._next_bucket_id,
            tuple(
                boundary + 1 if d == dimension else low
                for d, low in enumerate(bucket.cell_lows)
            ),
            bucket.cell_highs,
        )
        self._next_bucket_id += 1
        bucket.cell_highs = tuple(
            boundary if d == dimension else high
            for d, high in enumerate(bucket.cell_highs)
        )
        staying: list[Record] = []
        moving: list[Record] = []
        for record in bucket.records:
            if record.point[dimension] <= split_value:
                staying.append(record)
            else:
                moving.append(record)
        bucket.records = staying
        right.records = moving
        self._buckets[right.bucket_id] = right
        for cell in right.cells():
            self._directory[cell] = right.bucket_id
        return True

    # -- integrity -------------------------------------------------------------------

    def check_invariants(self) -> None:
        """Verify directory consistency and record placement."""
        total = 0
        for bucket in self._buckets.values():
            region = self.bucket_region(bucket)
            for record in bucket.records:
                assert region.contains_point(record.point), (
                    f"record {record.rid} escaped bucket {bucket.bucket_id}"
                )
            for cell in bucket.cells():
                assert self._directory.get(cell) == bucket.bucket_id, (
                    f"directory cell {cell} does not point at its bucket"
                )
            total += len(bucket.records)
        assert total == self._count, "record count mismatch"
        expected_cells = self.directory_cells
        assert len(self._directory) == expected_cells, (
            f"directory holds {len(self._directory)} cells, scales imply "
            f"{expected_cells}"
        )
