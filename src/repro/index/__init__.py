"""The R+-tree spatial index and its bulk-loading algorithms.

This is the paper's engine.  :class:`~repro.index.rtree.RPlusTree` is a
dynamic, non-overlapping multidimensional index over point data whose leaf
occupancy invariant (between ``k`` and ``c*k`` records per leaf) *is* the
k-anonymity guarantee.  Non-overlap is maintained the way R+-trees and
kd-B-trees maintain it: every node subdivides its region with axis-aligned
binary cuts, so sibling regions tile the parent region exactly and point
data never straddles a boundary.

Three loading paths are provided:

* one-by-one :meth:`~repro.index.rtree.RPlusTree.insert` (the incremental
  path of §2.2);
* the buffer-tree bulk loader of §2.1
  (:class:`~repro.index.buffer_tree.BufferTreeLoader`), which batches
  insertions through per-node external buffers and meters page I/O through
  the simulated storage layer;
* sort-based loaders (:mod:`repro.index.bulk`) — STR packing and
  Hilbert-curve ordering — implemented for the ablation the paper alludes
  to when it says non-sorting loading "worked better for higher dimensional
  data sets".

:mod:`repro.index.aggregate` adds the read side: a packed static
aggregate R-tree over release partitions that the serving query engine
descends with MBR pruning (index pushdown).
"""

from repro.index.aggregate import AggregateTree, PushdownStats
from repro.index.buffer_tree import BufferTreeLoader
from repro.index.bulk import hilbert_bulk_load, str_bulk_load
from repro.index.node import InternalNode, LeafNode, Node
from repro.index.rtree import RPlusTree
from repro.index.split import (
    BiasedSplitPolicy,
    MidpointSplitPolicy,
    MinMarginSplitPolicy,
    SplitPolicy,
    WeightedSplitPolicy,
)

__all__ = [
    "AggregateTree",
    "BiasedSplitPolicy",
    "BufferTreeLoader",
    "PushdownStats",
    "InternalNode",
    "LeafNode",
    "MidpointSplitPolicy",
    "MinMarginSplitPolicy",
    "Node",
    "RPlusTree",
    "SplitPolicy",
    "WeightedSplitPolicy",
    "hilbert_bulk_load",
    "str_bulk_load",
]
