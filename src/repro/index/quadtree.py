"""A region quadtree (2^d-ary space partitioner) for the §6 index ablation.

The paper's conclusion cites Kim & Patel's CIDR 2007 case for quadtrees
and observes that "the choice of one type of index over another for
indexing a data set may likely be reason enough for using the same index
for k-anonymizing the data set".  This module supplies that alternative:
a region quadtree (generalizing to an octree and beyond — each split
divides every dimension at its region midpoint, giving ``2^d`` children),
plus the k-anonymity glue (leaf floor via merge-on-release).

Structural contrasts with the R+-tree that the ablation bench surfaces:

* splits are **data-oblivious** (always at the region midpoint), so
  quadtree partitions ignore where the records actually sit — good
  balance on uniform data, poor fit on clustered data;
* fanout is fixed at ``2^d``, which explodes with dimensionality (another
  reason the R-tree family won for high-dimensional anonymization) — the
  bench runs on a 3-attribute projection;
* leaves can underflow k arbitrarily, so a k-anonymous release needs the
  same whole-leaf merging discipline as the leaf scan.
"""

from __future__ import annotations

from typing import Iterator, Sequence

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box


class QuadNode:
    """One quadtree node: a region, and either records or 2^d children."""

    __slots__ = ("region", "records", "children")

    def __init__(self, region: Box) -> None:
        self.region = region
        self.records: list[Record] = []
        self.children: list[QuadNode] | None = None

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class QuadTree:
    """A region quadtree over point data.

    ``capacity`` is the leaf split trigger; ``min_extent`` stops
    subdivision once a region's widest side falls below it (which also
    caps the depth duplicates can force).
    """

    def __init__(
        self,
        lows: Sequence[float],
        highs: Sequence[float],
        capacity: int,
        min_extent: float = 1.0,
    ) -> None:
        if capacity < 1:
            raise ValueError("capacity must be positive")
        if len(lows) != len(highs):
            raise ValueError("domain lows/highs length mismatch")
        self._root = QuadNode(Box(tuple(map(float, lows)), tuple(map(float, highs))))
        self._capacity = capacity
        self._min_extent = min_extent
        self._dimensions = len(lows)
        self._count = 0

    @property
    def dimensions(self) -> int:
        return self._dimensions

    def __len__(self) -> int:
        return self._count

    # -- insertion --------------------------------------------------------------

    def insert(self, record: Record) -> None:
        """Insert one record, subdividing midpoint-wise on overflow."""
        if len(record.point) != self._dimensions:
            raise ValueError(
                f"record {record.rid} has {len(record.point)} dimensions, "
                f"quadtree expects {self._dimensions}"
            )
        node = self._root
        while not node.is_leaf:
            node = self._child_for(node, record.point)
        node.records.append(record)
        self._count += 1
        if len(node.records) > self._capacity and self._splittable(node):
            self._subdivide(node)

    def insert_all(self, records: Sequence[Record]) -> None:
        for record in records:
            self.insert(record)

    def _splittable(self, node: QuadNode) -> bool:
        return max(node.region.extents()) >= 2 * self._min_extent

    def _subdivide(self, node: QuadNode) -> None:
        center = node.region.center()
        node.children = []
        for index in range(1 << self._dimensions):
            lows = []
            highs = []
            for dimension in range(self._dimensions):
                if index >> dimension & 1:
                    lows.append(center[dimension])
                    highs.append(node.region.highs[dimension])
                else:
                    lows.append(node.region.lows[dimension])
                    highs.append(center[dimension])
            node.children.append(QuadNode(Box(tuple(lows), tuple(highs))))
        records = node.records
        node.records = []
        for record in records:
            child = self._child_for(node, record.point)
            child.records.append(record)
        for child in node.children:
            if len(child.records) > self._capacity and self._splittable(child):
                self._subdivide(child)

    def _child_for(self, node: QuadNode, point: Sequence[float]) -> QuadNode:
        assert node.children is not None
        center = node.region.center()
        index = 0
        for dimension in range(self._dimensions):
            if point[dimension] > center[dimension]:
                index |= 1 << dimension
        return node.children[index]

    # -- traversal ----------------------------------------------------------------

    def leaves(self) -> list[QuadNode]:
        """Non-empty leaves in depth-first (Z-curve-like) order."""
        found: list[QuadNode] = []

        def visit(node: QuadNode) -> None:
            if node.is_leaf:
                if node.records:
                    found.append(node)
                return
            assert node.children is not None
            for child in node.children:
                visit(child)

        visit(self._root)
        return found

    def search(self, box: Box) -> list[Record]:
        """All records inside the query box."""
        results: list[Record] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if not node.region.intersects(box):
                continue
            if node.is_leaf:
                results.extend(
                    record
                    for record in node.records
                    if box.contains_point(record.point)
                )
            else:
                assert node.children is not None
                stack.extend(node.children)
        return results

    def check_invariants(self) -> None:
        """Region containment, child tiling, record count."""
        total = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                total += len(node.records)
                for record in node.records:
                    assert node.region.contains_point(record.point), (
                        f"record {record.rid} escaped its quadrant"
                    )
            else:
                assert node.children is not None
                assert len(node.children) == 1 << self._dimensions
                assert not node.records, "internal quadtree node holds records"
                area = sum(child.region.area() for child in node.children)
                assert area == node.region.area() or node.region.area() == 0
                stack.extend(node.children)
        assert total == self._count, "record count mismatch"


class QuadTreeAnonymizer:
    """k-anonymization through a quadtree's leaf partitioning.

    Releases merge consecutive (Z-ordered) leaves up to the k floor — the
    quadtree analogue of the leaf scan — and publish the merged groups'
    *MBRs* (quadtrees, like grids, have no native MBRs; this is compaction
    applied at release time, so the comparison against the R+-tree
    isolates the effect of data-oblivious midpoint splitting).
    """

    def __init__(
        self, table: Table, capacity_factor: int = 2, min_extent: float = 1.0
    ) -> None:
        if len(table) == 0:
            raise ValueError("cannot anonymize an empty table")
        if capacity_factor < 2:
            raise ValueError("capacity_factor must be at least 2")
        self._table = table
        self._capacity_factor = capacity_factor
        self._min_extent = min_extent

    def anonymize(self, k: int) -> AnonymizedTable:
        if k < 1:
            raise ValueError("k must be at least 1")
        if len(self._table) < k:
            raise ValueError(
                f"cannot emit a {k}-anonymous release from {len(self._table)} records"
            )
        schema = self._table.schema
        tree = QuadTree(
            schema.domain_lows(),
            schema.domain_highs(),
            capacity=self._capacity_factor * k,
            min_extent=self._min_extent,
        )
        tree.insert_all(self._table.records)
        partitions: list[Partition] = []
        pending: list[Record] = []
        for leaf in tree.leaves():
            pending.extend(leaf.records)
            if len(pending) >= k:
                partitions.append(
                    Partition.trusted(
                        tuple(pending), Box.from_points(r.point for r in pending)
                    )
                )
                pending = []
        if pending:
            if partitions:
                last = partitions.pop()
                merged = last.records + tuple(pending)
                partitions.append(
                    Partition.trusted(
                        merged, Box.from_points(r.point for r in merged)
                    )
                )
            else:
                partitions.append(
                    Partition.trusted(
                        tuple(pending), Box.from_points(r.point for r in pending)
                    )
                )
        return AnonymizedTable(schema, partitions)


def quadtree_anonymize(table: Table, k: int, **kwargs: object) -> AnonymizedTable:
    """Convenience: one-shot quadtree anonymization (MBR-compacted)."""
    return QuadTreeAnonymizer(table, **kwargs).anonymize(k)  # type: ignore[arg-type]
