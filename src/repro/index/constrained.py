"""Constraint-aware node splitting (§6).

The paper's closing argument: "the R-tree splitting routine can
incorporate, for example, (α,k)-anonymity or l-diversity just as easily as
vanilla k-anonymity" — whatever the definition of an allowable partition,
the index should only ever create allowable leaves, and compaction then
tightens descriptions *within* that definition.

:class:`ConstrainedSplitPolicy` wraps any base policy and vetoes cuts whose
sides would violate a per-group constraint.  Because splits are vetoed
rather than repaired, a leaf that cannot be divided into two satisfying
halves simply stays over-full — the same privacy-safe fallback the plain
tree uses for unsplittable duplicates — so *every leaf of the tree
satisfies the constraint at all times*, under bulk loads and incremental
inserts alike — **for constraints monotone under record additions**
(distinct l-diversity qualifies: adding records never reduces the distinct
count).  Non-monotone definitions such as (α,k)-anonymity can be broken by
later inserts into a leaf regardless of how it was split; enforce those at
release time instead, via the leaf-scan ``constraint`` parameter of
:meth:`repro.core.anonymizer.RTreeAnonymizer.anonymize`.  (Deletion's
underflow path dissolves a leaf and reinserts its records, which preserves
the property for the surviving leaves.)
"""

from __future__ import annotations

from typing import Callable, Sequence

from repro.dataset.record import Record
from repro.index.split import (
    MinMarginSplitPolicy,
    SplitDecision,
    SplitPolicy,
    partition_records,
)

#: A group-acceptance predicate (same contract as the leaf-scan constraint).
GroupConstraint = Callable[[Sequence[Record]], bool]


class ConstrainedSplitPolicy(SplitPolicy):
    """Only split when both resulting groups satisfy the constraint.

    The base policy proposes its best cut; if either side would violate
    the constraint, the other dimensions' best cuts are tried before
    giving up.  Giving up leaves the node over-full — allowable partitions
    are never destroyed to satisfy occupancy.
    """

    def __init__(
        self,
        constraint: GroupConstraint,
        base: SplitPolicy | None = None,
    ) -> None:
        self._constraint = constraint
        self._base = base if base is not None else MinMarginSplitPolicy()

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        proposal = self._base.choose_split(records, min_count, domain_extents)
        if proposal is not None and self._acceptable(records, proposal):
            return proposal
        # The preferred cut fails: try the best cut of every single
        # dimension (cheap — one evaluation per dimension) before giving up.
        for dimension in range(len(domain_extents)):
            restricted = _SingleDimension(self._base, dimension)
            candidate = restricted.choose_split(records, min_count, domain_extents)
            if candidate is not None and self._acceptable(records, candidate):
                return candidate
        return None

    def _acceptable(
        self, records: Sequence[Record], decision: SplitDecision
    ) -> bool:
        left, right = partition_records(records, decision.dimension, decision.value)
        return self._constraint(left) and self._constraint(right)


class _SingleDimension(SplitPolicy):
    """The base policy restricted to one dimension (for the retry loop)."""

    def __init__(self, base: SplitPolicy, dimension: int) -> None:
        self._base = base
        self._dimension = dimension

    def choose_split(
        self,
        records: Sequence[Record],
        min_count: int,
        domain_extents: Sequence[float],
    ) -> SplitDecision | None:
        from repro.index.split import exhaustive_ncp_split

        return exhaustive_ncp_split(
            records, min_count, domain_extents, None, [self._dimension]
        )
