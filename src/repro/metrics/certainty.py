"""The (weighted normalized) certainty penalty (Xu et al.; Definition 4).

``CM(T) = sum over records t of NCP(t)`` where
``NCP(t) = sum over attributes i of w_i * |t.A_i| / |T.A_i|``:
each record is charged, per attribute, the fraction of the attribute's full
data range that its generalized interval spans, scaled by the attribute's
workload weight.  All records of a partition share a box, so the table
score reduces to ``sum over partitions of |P| * NCP(box)``.

Categorical attributes backed by a hierarchy are charged
``leaves(generalized node) / leaves(hierarchy)`` per the definition; in the
paper's integer-recoded experiments the numeric branch applies everywhere
and all weights are 1.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.partition import AnonymizedTable
from repro.dataset.schema import AttributeKind, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box


def ncp(
    box: Box,
    attribute_ranges: Sequence[float],
    weights: Sequence[float] | None = None,
    schema: Schema | None = None,
) -> float:
    """The normalized certainty penalty of one generalized box.

    ``attribute_ranges`` are the full data ranges ``|T.A_i|`` (zero-range
    attributes are costless: no precision exists to lose).  When a schema
    with categorical hierarchies is supplied, hierarchy-backed attributes
    are charged by covered leaf fraction instead of interval width.
    """
    if weights is not None and len(weights) != box.dimensions:
        raise ValueError(
            f"{len(weights)} weights for a {box.dimensions}-dimensional box"
        )
    total = 0.0
    for dimension in range(box.dimensions):
        full_range = attribute_ranges[dimension]
        if full_range <= 0:
            continue
        attribute = (
            schema.quasi_identifiers[dimension] if schema is not None else None
        )
        if (
            attribute is not None
            and attribute.kind is AttributeKind.CATEGORICAL
            and attribute.hierarchy is not None
        ):
            node = attribute.hierarchy.decode_interval(
                int(box.lows[dimension]), int(box.highs[dimension])
            )
            charge = node.leaf_count / len(attribute.hierarchy)
        else:
            charge = box.extent(dimension) / full_range
        if weights is not None:
            charge *= weights[dimension]
        total += charge
    return total


def certainty_penalty(
    table: AnonymizedTable,
    original: Table,
    weights: Sequence[float] | None = None,
    use_hierarchies: bool = False,
) -> float:
    """Definition 4: the summed weighted NCP over all records.

    ``original`` supplies the attribute ranges ``|T.A_i|``; the paper sets
    every weight to 1 in its quality experiments (the default here).
    """
    ranges = original.attribute_ranges()
    schema = table.schema if use_hierarchies else None
    return sum(
        len(partition) * ncp(partition.box, ranges, weights, schema)
        for partition in table.partitions
    )


def certainty_per_record(
    table: AnonymizedTable,
    original: Table,
    weights: Sequence[float] | None = None,
) -> float:
    """Average NCP per record — comparable across table sizes."""
    return certainty_penalty(table, original, weights) / table.record_count
