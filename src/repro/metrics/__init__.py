"""Anonymization quality metrics (Definitions 3-5).

Three metrics, three sensitivities — the paper's Figure 10 story:

* :func:`~repro.metrics.discernibility.discernibility_penalty` sees only
  partition *sizes*, so compaction cannot move it (Figure 10(a));
* :func:`~repro.metrics.certainty.certainty_penalty` sees box *extents*,
  so compaction improves it (Figure 10(b));
* :func:`~repro.metrics.kl.kl_divergence` sees the *density model* the
  boxes imply, so compaction improves it too (Figure 10(c)).
"""

from repro.metrics.certainty import certainty_penalty, ncp
from repro.metrics.discernibility import discernibility_penalty
from repro.metrics.kl import kl_divergence
from repro.metrics.quality import QualityReport, quality_report

__all__ = [
    "QualityReport",
    "certainty_penalty",
    "discernibility_penalty",
    "kl_divergence",
    "ncp",
    "quality_report",
]
