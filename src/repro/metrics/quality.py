"""One-call quality reports combining all three metrics.

The quality experiments (Figures 10 and 11) always evaluate the same
triple — discernibility, certainty, KL divergence — over the same pairs of
(anonymized, original) tables; this module packages that so benches and
examples stay declarative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table
from repro.metrics.certainty import certainty_penalty
from repro.metrics.discernibility import discernibility_penalty
from repro.metrics.kl import kl_divergence


@dataclass(frozen=True)
class QualityReport:
    """The three Definition 3-5 scores for one release."""

    discernibility: int
    certainty: float
    kl: float
    partitions: int
    records: int

    def row(self) -> tuple[float, ...]:
        """The scores as a table row (for the bench printers)."""
        return (self.discernibility, self.certainty, self.kl)


def quality_report(table: AnonymizedTable, original: Table) -> QualityReport:
    """Score one anonymized release against its original table."""
    return QualityReport(
        discernibility=discernibility_penalty(table),
        certainty=certainty_penalty(table, original),
        kl=kl_divergence(table, original),
        partitions=len(table.partitions),
        records=table.record_count,
    )
