"""KL divergence between the original and anonymized data distributions.

Kifer & Gehrke (Definition 5 cites them) compare the empirical distribution
of the original table against the distribution the anonymized table
*implies*.  We instantiate their partition-uniform model on the integer
lattice the recoded attributes live on:

* the original table puts probability ``multiplicity(x) / N`` on each
  occupied cell ``x``;
* the anonymized table spreads each partition uniformly over its published
  box, so a cell ``x`` receives
  ``p2(x) = sum over partitions P with x in box(P) of
  |P| / (N * discrete_volume(box(P)))``;
* ``KL = sum over occupied cells of p1(x) * log(p1(x) / p2(x))``.

Compaction shrinks boxes, concentrating the implied mass where records
actually sit, so compacted tables score lower — the mechanism behind
Figure 10(c).  ``p2(x) > 0`` always holds for occupied cells because every
record lies inside its own partition's box.

The containment tests are vectorized with numpy in chunks: with thousands
of partitions and tens of thousands of distinct cells the naive
double loop would dominate every quality bench.
"""

from __future__ import annotations

import math
from collections import Counter

import numpy as np

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table

#: Cells per numpy chunk when testing containment against all partitions.
_CHUNK = 512


def kl_divergence(table: AnonymizedTable, original: Table) -> float:
    """Definition 5 under the discrete partition-uniform density model."""
    total_records = len(original)
    if total_records == 0:
        raise ValueError("cannot compare against an empty original table")
    if table.record_count != total_records:
        raise ValueError(
            f"anonymized table holds {table.record_count} records, "
            f"original holds {total_records}"
        )
    counts = Counter(record.point for record in original)
    cells = np.array(list(counts.keys()), dtype=np.float64)
    multiplicities = np.array(list(counts.values()), dtype=np.float64)

    lows = np.array([p.box.lows for p in table.partitions], dtype=np.float64)
    highs = np.array([p.box.highs for p in table.partitions], dtype=np.float64)
    sizes = np.array([len(p) for p in table.partitions], dtype=np.float64)
    volumes = np.array(
        [p.box.discrete_volume() for p in table.partitions], dtype=np.float64
    )
    density = sizes / (total_records * volumes)

    divergence = 0.0
    for start in range(0, len(cells), _CHUNK):
        block = cells[start : start + _CHUNK]
        # contains[u, p] == True iff cell u lies in partition p's box.
        contains = np.logical_and(
            (block[:, None, :] >= lows[None, :, :]).all(axis=2),
            (block[:, None, :] <= highs[None, :, :]).all(axis=2),
        )
        p2 = contains @ density
        p1 = multiplicities[start : start + _CHUNK] / total_records
        divergence += float(np.sum(p1 * np.log(p1 / p2)))
    return divergence


def kl_lower_bound() -> float:
    """KL is zero exactly when the anonymized density matches the original."""
    return 0.0


def partition_entropy(table: AnonymizedTable) -> float:
    """Shannon entropy (nats) of the partition-membership distribution.

    A convenience diagnostic: higher entropy means records are spread over
    more, more even partitions — loosely the "information retained" by the
    grouping itself, independent of box extents.
    """
    total = table.record_count
    entropy = 0.0
    for partition in table.partitions:
        share = len(partition) / total
        entropy -= share * math.log(share)
    return entropy
