"""The discernibility penalty (Bayardo & Agrawal; Definition 3).

``DM(T) = sum over partitions of |P|^2`` — every record is charged the size
of its own equivalence class.  The metric rewards partitions close to the
minimum size k and is *blind to box extents*: the paper uses this blindness
to show that compaction is invisible to discernibility (Figure 10(a))
while certainty and KL divergence both see it.
"""

from __future__ import annotations

from repro.core.partition import AnonymizedTable


def discernibility_penalty(table: AnonymizedTable) -> int:
    """Definition 3: the sum of squared partition sizes."""
    return sum(len(partition) ** 2 for partition in table.partitions)


def discernibility_per_record(table: AnonymizedTable) -> float:
    """The average penalty per record (``DM / N``) — size-independent.

    Useful when comparing releases of tables of different cardinality, e.g.
    across the incremental batches of Figure 11.
    """
    return discernibility_penalty(table) / table.record_count


def discernibility_lower_bound(record_count: int, k: int) -> int:
    """The best possible score over all partitionings with a k floor.

    ``floor(N/k)`` partitions, with the remainder spread one record per
    partition: by convexity of x^2, ``r`` partitions of ``k+1`` and the
    rest of ``k`` minimize the sum of squares (a single ``k+r`` partition
    is strictly worse whenever ``r >= 2``).  A useful normalization
    constant for plots.
    """
    if k < 1:
        raise ValueError("k must be at least 1")
    if record_count < k:
        raise ValueError("fewer records than k")
    partitions = record_count // k
    base, extra = divmod(record_count, partitions)
    return extra * (base + 1) ** 2 + (partitions - extra) * base * base
