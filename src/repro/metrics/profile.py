"""Information-loss profiles: where did the precision go?

Aggregate scores (Definitions 3-5) say *how much* information a release
loses; a data owner deciding between releases also wants to know *where* —
which attributes got generalized hardest, how partition sizes distribute,
and how much of the domain the published boxes leave uncovered.

The last quantity operationalizes §4's central tension: compaction "leaves
gaps in the domain where gaps correspond to spatial portions of the domain
that do not contain any record", and "an adversary can know that there is
no individual in a gap area".  :func:`gap_statistics` measures exactly that
disclosure: the fraction of the domain volume (and of each attribute's
range) that the release reveals to be empty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table


@dataclass(frozen=True)
class AttributeLoss:
    """Per-attribute generalization summary."""

    name: str
    mean_ncp: float
    max_ncp: float
    exact_fraction: float  # records published with a degenerate interval


@dataclass(frozen=True)
class InformationProfile:
    """Full per-release loss breakdown."""

    attributes: tuple[AttributeLoss, ...]
    partition_sizes: dict[int, int]
    total_ncp_per_record: float

    def dominant_attribute(self) -> str:
        """The attribute contributing the most average NCP."""
        return max(self.attributes, key=lambda a: a.mean_ncp).name


def information_profile(
    release: AnonymizedTable, original: Table
) -> InformationProfile:
    """Per-attribute NCP breakdown plus the partition-size histogram."""
    ranges = original.attribute_ranges()
    names = original.schema.names()
    dimensions = original.schema.dimensions
    weighted_sums = np.zeros(dimensions)
    maxima = np.zeros(dimensions)
    exact_counts = np.zeros(dimensions)
    sizes: dict[int, int] = {}
    total_records = release.record_count
    for partition in release.partitions:
        size = len(partition)
        sizes[size] = sizes.get(size, 0) + 1
        for dimension in range(dimensions):
            extent = partition.box.extent(dimension)
            charge = extent / ranges[dimension] if ranges[dimension] > 0 else 0.0
            weighted_sums[dimension] += size * charge
            maxima[dimension] = max(maxima[dimension], charge)
            if extent == 0:
                exact_counts[dimension] += size
    attributes = tuple(
        AttributeLoss(
            name=names[dimension],
            mean_ncp=float(weighted_sums[dimension] / total_records),
            max_ncp=float(maxima[dimension]),
            exact_fraction=float(exact_counts[dimension] / total_records),
        )
        for dimension in range(dimensions)
    )
    return InformationProfile(
        attributes=attributes,
        partition_sizes=dict(sorted(sizes.items())),
        total_ncp_per_record=float(weighted_sums.sum() / total_records),
    )


@dataclass(frozen=True)
class GapStatistics:
    """How much emptiness a release discloses (§4's compaction tension)."""

    covered_volume_fraction: float
    gap_volume_fraction: float
    per_attribute_coverage: tuple[float, ...]

    @property
    def discloses_gaps(self) -> bool:
        return self.gap_volume_fraction > 0.0


def gap_statistics(
    release: AnonymizedTable,
    original: Table,
    samples: int = 20_000,
    seed: int = 0,
) -> GapStatistics:
    """Estimate the domain-volume share the published boxes leave uncovered.

    Exact union volume of thousands of boxes in 8 dimensions is
    inclusion-exclusion-hard, so coverage is Monte-Carlo estimated: sample
    points uniformly from the declared domain and count how many fall in at
    least one published box.  Per-attribute coverage is exact (interval
    unions on a line).
    """
    schema = original.schema
    lows = np.array(schema.domain_lows())
    highs = np.array(schema.domain_highs())
    box_lows = np.array([p.box.lows for p in release.partitions])
    box_highs = np.array([p.box.highs for p in release.partitions])
    rng = np.random.default_rng(seed)
    points = rng.uniform(lows, highs, size=(samples, schema.dimensions))
    covered = np.zeros(samples, dtype=bool)
    chunk = max(1, 2_000_000 // max(1, len(release.partitions)))
    for start in range(0, samples, chunk):
        block = points[start : start + chunk]
        inside = np.logical_and(
            (block[:, None, :] >= box_lows[None, :, :]).all(axis=2),
            (block[:, None, :] <= box_highs[None, :, :]).all(axis=2),
        ).any(axis=1)
        covered[start : start + chunk] = inside
    covered_fraction = float(covered.mean())

    per_attribute = []
    for dimension in range(schema.dimensions):
        domain_extent = highs[dimension] - lows[dimension]
        if domain_extent <= 0:
            per_attribute.append(1.0)
            continue
        intervals = sorted(
            (box_lows[i, dimension], box_highs[i, dimension])
            for i in range(len(release.partitions))
        )
        covered_length = 0.0
        cursor = lows[dimension]
        for low, high in intervals:
            low = max(low, cursor)
            if high > low:
                covered_length += high - low
                cursor = high
            cursor = max(cursor, high)
        per_attribute.append(float(covered_length / domain_extent))
    return GapStatistics(
        covered_volume_fraction=covered_fraction,
        gap_volume_fraction=1.0 - covered_fraction,
        per_attribute_coverage=tuple(per_attribute),
    )
