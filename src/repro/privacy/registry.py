"""A release registry: the data owner's side of the §3 story.

The hospital of §3 hands different-granularity anonymizations to different
audiences over time.  Each release is individually k-anonymous; the danger
is the *set* — and the set grows.  :class:`ReleaseRegistry` is the
bookkeeping a careful data owner runs: it records every release handed
out, re-audits each one on entry, and re-runs the intersection attack over
the cumulative set, refusing (or flagging) a release that would let a
colluding adversary push any record's candidate set below the pledged
floor.

The registry is deliberately algorithm-agnostic: tree-derived releases
(leaf scans, hierarchical levels) will always pass — that is Lemma 1 —
while independently re-anonymized tables will eventually trip the audit,
which is precisely the §3 warning, now enforced in code.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table
from repro.privacy.attack import AttackReport, intersection_attack
from repro.privacy.kanonymity import verify_release


class ReleaseRejected(Exception):
    """Registering the release would break the pledged anonymity floor."""


@dataclass(frozen=True)
class RegisteredRelease:
    """One accepted release and its audit context."""

    audience: str
    k: int
    table: AnonymizedTable


class ReleaseRegistry:
    """Tracks every anonymization released from one original table.

    Parameters
    ----------
    original:
        The private table the releases anonymize (used for per-release
        audits).
    pledge_k:
        The anonymity floor that must survive *any* coalition of release
        holders — normally the index's base k.
    """

    def __init__(self, original: Table, pledge_k: int) -> None:
        if pledge_k < 1:
            raise ValueError("the pledged k must be at least 1")
        self._original = original
        self._pledge_k = pledge_k
        self._releases: list[RegisteredRelease] = []

    @property
    def pledge_k(self) -> int:
        return self._pledge_k

    def __len__(self) -> int:
        return len(self._releases)

    @property
    def releases(self) -> tuple[RegisteredRelease, ...]:
        return tuple(self._releases)

    def register(
        self, audience: str, release: AnonymizedTable, k: int
    ) -> AttackReport:
        """Audit and record a release; raises :class:`ReleaseRejected` if unsafe.

        Three gates, in order:

        1. the release alone must pass the full k-anonymity audit at its
           own ``k`` (which must be at least the pledge);
        2. the intersection attack over *all* registered releases plus
           this one must keep every record's candidate set at or above
           the pledge;
        3. only then is the release recorded.

        Returns the attack report for the would-be cumulative set.
        """
        if k < self._pledge_k:
            raise ReleaseRejected(
                f"release k={k} is below the pledged floor {self._pledge_k}"
            )
        problems = verify_release(release, self._original, k)
        if problems:
            raise ReleaseRejected(
                f"release for {audience!r} fails its own audit: {problems[:3]}"
            )
        candidate_set = [entry.table for entry in self._releases] + [release]
        report = intersection_attack(candidate_set, thresholds=(self._pledge_k,))
        if not report.preserves_k(self._pledge_k):
            raise ReleaseRejected(
                f"registering the {audience!r} release would shrink some "
                f"record's candidate set to {report.min_candidates} "
                f"(< pledged {self._pledge_k}) under collusion"
            )
        self._releases.append(RegisteredRelease(audience, k, release))
        return report

    def audit(self) -> AttackReport:
        """Re-run the intersection attack over everything released so far."""
        if not self._releases:
            raise ValueError("no releases registered yet")
        return intersection_attack(
            [entry.table for entry in self._releases],
            thresholds=(self._pledge_k,),
        )

    def is_safe(self) -> bool:
        """True when the cumulative set still honours the pledge."""
        if not self._releases:
            return True
        return self.audit().preserves_k(self._pledge_k)
