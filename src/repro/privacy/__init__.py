"""Privacy verifiers and attack simulations.

Verification is deliberately separated from generation: every guarantee the
anonymizer claims — k-anonymity of a release, l-diversity under a
constraint, k-boundedness across multi-granular releases — is re-checked
here from the released artifacts alone, the way an auditor (or an
adversary) would.
"""

from repro.privacy.attack import AttackReport, intersection_attack
from repro.privacy.kanonymity import is_k_anonymous, verify_release
from repro.privacy.linkage import LinkageReport, linkage_attack
from repro.privacy.registry import ReleaseRegistry, ReleaseRejected
from repro.privacy.ldiversity import (
    AlphaKAnonymity,
    DistinctLDiversity,
    EntropyLDiversity,
)

__all__ = [
    "AlphaKAnonymity",
    "AttackReport",
    "DistinctLDiversity",
    "EntropyLDiversity",
    "LinkageReport",
    "ReleaseRegistry",
    "ReleaseRejected",
    "linkage_attack",
    "intersection_attack",
    "is_k_anonymous",
    "verify_release",
]
