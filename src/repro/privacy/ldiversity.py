"""Stronger-than-k constraints: l-diversity and (α,k)-anonymity.

The paper's closing argument (§4, §6): if compaction feels like it reveals
too much, the fix is a stronger *definition* plugged into the same
machinery, not a looser partitioner.  These constraint objects are
callables over record groups, so they slot directly into the leaf-scan
``constraint`` parameter of
:meth:`repro.core.anonymizer.RTreeAnonymizer.anonymize` — partitions simply
keep absorbing leaves until the constraint holds.

All three constraints are *monotone* (once satisfied, adding records never
breaks them), which is what the leaf-scan merging step requires.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable
from repro.dataset.record import Record


@dataclass(frozen=True)
class DistinctLDiversity:
    """At least ``l`` distinct sensitive values per partition."""

    l: int  # noqa: E741 - the metric's standard name
    sensitive_index: int = 0

    def __call__(self, records: Sequence[Record]) -> bool:
        distinct = {record.sensitive[self.sensitive_index] for record in records}
        return len(distinct) >= self.l

    def check_table(self, table: AnonymizedTable) -> bool:
        return all(self(partition.records) for partition in table.partitions)


@dataclass(frozen=True)
class EntropyLDiversity:
    """Entropy of the sensitive values at least ``log(l)`` per partition.

    Caution: entropy l-diversity is *not* monotone under arbitrary unions
    in general, but it is monotone under unions with groups that are
    themselves entropy-l-diverse — which is how leaf-scan merging composes
    partitions; the property suite exercises this.
    """

    l: int  # noqa: E741
    sensitive_index: int = 0

    def __call__(self, records: Sequence[Record]) -> bool:
        counts = Counter(record.sensitive[self.sensitive_index] for record in records)
        total = sum(counts.values())
        entropy = -sum(
            (count / total) * math.log(count / total) for count in counts.values()
        )
        # Tolerance absorbs float rounding when entropy equals log(l)
        # exactly (e.g. l perfectly balanced values).
        return entropy >= math.log(self.l) - 1e-12

    def check_table(self, table: AnonymizedTable) -> bool:
        return all(self(partition.records) for partition in table.partitions)


@dataclass(frozen=True)
class AlphaKAnonymity:
    """(α,k)-anonymity (Wong et al.): size ≥ k and no sensitive value
    exceeding an ``alpha`` fraction of the partition."""

    alpha: float
    k: int
    sensitive_index: int = 0

    def __call__(self, records: Sequence[Record]) -> bool:
        if len(records) < self.k:
            return False
        counts = Counter(record.sensitive[self.sensitive_index] for record in records)
        return max(counts.values()) <= self.alpha * len(records)

    def check_table(self, table: AnonymizedTable) -> bool:
        return all(self(partition.records) for partition in table.partitions)
