"""Sweeney-style linkage attacks against published releases.

The founding threat of the k-anonymity literature: an adversary joins the
published (generalized) table against an *identified* external source — a
voter roll with name, age, sex, zipcode — and re-identifies records whose
generalized quasi-identifiers match few external individuals.

The attack here is the box-membership join:

* for a **record-level** claim, an external individual is linked to a
  published row when their point falls inside the row's generalized box;
  the row is *compromised* when the sensitive value can be pinned — every
  candidate explanation agrees (here conservatively: the partition is
  sensitive-homogeneous and the individual matches no other partition);
* for a **membership** claim, the adversary merely learns whether the
  individual is in the data set at all — which the gaps left by
  compaction (§4) answer *negatively* with certainty: a point in no
  published box is provably absent.

This makes §4's tension measurable: compaction strictly increases both the
number of certain absence claims and the precision of presence claims,
while k-anonymity's core promise — no candidate set below k — holds
regardless.  The paper's position is exactly that: if these disclosures
matter, strengthen the *definition* (l-diversity), not the looseness of
the boxes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable
from repro.dataset.record import Record


@dataclass(frozen=True)
class LinkageReport:
    """What an external-join adversary learns from one release."""

    externals: int
    #: Externals provably absent from the data (their point is in no box).
    certain_absences: int
    #: Externals matching exactly one partition (their equivalence class
    #: is pinned — the strongest quasi-identifier link possible).
    uniquely_located: int
    #: Uniquely located externals whose partition is sensitive-homogeneous:
    #: the sensitive value is disclosed outright (the l-diversity failure).
    sensitive_disclosed: int
    #: Average candidate partitions per present external.
    mean_candidate_partitions: float

    @property
    def absence_rate(self) -> float:
        return self.certain_absences / self.externals if self.externals else 0.0

    @property
    def disclosure_rate(self) -> float:
        return self.sensitive_disclosed / self.externals if self.externals else 0.0


def linkage_attack(
    release: AnonymizedTable,
    externals: Sequence[Record],
    sensitive_index: int = 0,
) -> LinkageReport:
    """Join identified external records against a published release.

    ``externals`` are the adversary's identified individuals, as records
    whose points are their (known, exact) quasi-identifier values; their
    ``sensitive`` payloads are ignored.  Works on any release — compacted,
    uncompacted, any algorithm.
    """
    if not externals:
        raise ValueError("need at least one external individual to link")
    partitions = release.partitions
    homogeneous = [
        len({record.sensitive[sensitive_index] for record in partition.records}) == 1
        for partition in partitions
    ]
    certain_absences = 0
    uniquely_located = 0
    sensitive_disclosed = 0
    candidate_total = 0
    present = 0
    for external in externals:
        matches = [
            index
            for index, partition in enumerate(partitions)
            if partition.box.contains_point(external.point)
        ]
        if not matches:
            certain_absences += 1
            continue
        present += 1
        candidate_total += len(matches)
        if len(matches) == 1:
            uniquely_located += 1
            if homogeneous[matches[0]]:
                sensitive_disclosed += 1
    return LinkageReport(
        externals=len(externals),
        certain_absences=certain_absences,
        uniquely_located=uniquely_located,
        sensitive_disclosed=sensitive_disclosed,
        mean_candidate_partitions=(
            candidate_total / present if present else 0.0
        ),
    )
