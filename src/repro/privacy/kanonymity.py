"""k-anonymity verification of released tables.

A release is k-anonymous when every equivalence class holds at least k
records and every record is indistinguishable from its class-mates on the
quasi-identifiers — with interval generalization that means every member's
point lies inside the class's published box (the class shares one box by
construction, so containment *is* indistinguishability).
"""

from __future__ import annotations

from repro.core.partition import AnonymizedTable
from repro.dataset.table import Table


def is_k_anonymous(table: AnonymizedTable, k: int) -> bool:
    """True when every partition holds at least ``k`` records."""
    return table.k_effective >= k


def verify_release(
    table: AnonymizedTable, original: Table, k: int
) -> list[str]:
    """Audit a release against its original table; returns violation messages.

    Checks: the k floor, record-count conservation, record identity
    (exactly the original rids, no duplicates, no inventions), and box
    containment of every member point.  An empty list means the release
    passes.
    """
    problems: list[str] = []
    if table.k_effective < k:
        problems.append(
            f"smallest partition holds {table.k_effective} < k={k} records"
        )
    if table.record_count != len(original):
        problems.append(
            f"release holds {table.record_count} records, "
            f"original holds {len(original)}"
        )
    original_rids = {record.rid for record in original}
    seen: set[int] = set()
    for index, partition in enumerate(table.partitions):
        for record in partition.records:
            if record.rid in seen:
                problems.append(f"record {record.rid} appears twice")
            seen.add(record.rid)
            if record.rid not in original_rids:
                problems.append(
                    f"record {record.rid} does not exist in the original table"
                )
            if not partition.box.contains_point(record.point):
                problems.append(
                    f"partition {index} box does not contain record {record.rid}"
                )
    missing = original_rids - seen
    if missing:
        problems.append(f"{len(missing)} original records are missing from the release")
    return problems
