"""The multi-release intersection attack (the §3 threat model).

An adversary holding several anonymizations of the same table can, for any
target record, intersect the member sets of the partitions containing it
across releases — the smaller the intersection, the closer the adversary
gets to re-identification.  Lemma 1 says k-bound records resist: their
candidate set never drops below k.

:func:`intersection_attack` runs that exact adversary and reports the
distribution of candidate-set sizes, so the hierarchical and leaf-scan
release strategies can be validated (they keep the minimum at >= base k)
and naive independent re-anonymization can be shown to fail (its minimum
routinely collapses below k — the motivating danger of §3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.core.partition import AnonymizedTable


@dataclass(frozen=True)
class AttackReport:
    """Outcome of an intersection attack over a set of releases."""

    releases: int
    records: int
    min_candidates: int
    mean_candidates: float
    compromised_below: dict[int, int]

    def preserves_k(self, k: int) -> bool:
        """True when no record's candidate set fell below ``k``."""
        return self.min_candidates >= k


def intersection_attack(
    releases: Sequence[AnonymizedTable],
    thresholds: Sequence[int] = (2, 5, 10),
) -> AttackReport:
    """Intersect every record's partitions across all releases.

    ``compromised_below[t]`` counts the records whose candidate set shrank
    under ``t`` members — the adversary's haul at threat level ``t``.
    """
    if not releases:
        raise ValueError("need at least one release to attack")
    candidate: dict[int, frozenset[int]] = {}
    for release in releases:
        for partition in release.partitions:
            members = partition.rids()
            for rid in members:
                existing = candidate.get(rid)
                candidate[rid] = members if existing is None else existing & members
    sizes = [len(group) for group in candidate.values()]
    return AttackReport(
        releases=len(releases),
        records=len(candidate),
        min_candidates=min(sizes),
        mean_candidates=sum(sizes) / len(sizes),
        compromised_below={
            threshold: sum(1 for size in sizes if size < threshold)
            for threshold in thresholds
        },
    )
