"""Immutable release snapshots and the epoch-validated release cache.

A :class:`ReleaseSnapshot` is one published release frozen at a service
epoch: the anonymized table, its audit record, its sha256 digest, and the
epoch it reflects.  Snapshots are what readers receive — never the live
tree — so a concurrent writer can mutate freely without tearing a read.

The :class:`ReleaseCache` keys snapshots by the full release recipe —
``(k, strategy, compacted, constraint)`` — and validates every lookup
against the current epoch.  Constraints are keyed by *identity* (the
callable object itself participates in the key, which doubles as the
"constraint fingerprint": two requests share a cache line iff they pass
the very same constraint object, and holding the object in the key keeps
the identity stable).  Invalidation is epoch-based: writers only bump an
integer; a stale entry is dropped at the next lookup that trips over it,
and every ``put`` sweeps entries older than the incoming snapshot's epoch
so keys that are never re-requested (e.g. churned constraint identities)
cannot pin dead ``AnonymizedTable``s forever.  An optional ``max_entries``
bound evicts oldest-inserted entries beyond a fixed count.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Hashable, Mapping

from repro.core.partition import AnonymizedTable
from repro.obs import OBS

#: A cache key: (k, strategy, compacted, constraint-or-None).
CacheKey = tuple[int, str, bool, Hashable]


@dataclass(frozen=True)
class ReleaseSnapshot:
    """One immutable published release, frozen at a service epoch.

    ``epoch`` is the service epoch the snapshot was computed at; the cache
    serves it only while the epoch is current.  ``audit`` is the release's
    structured privacy-audit record (same shape as
    :func:`repro.obs.audit.audit_release`), ``digest`` the sha256 release
    fingerprint used by the differential suites.
    """

    table: AnonymizedTable
    audit: Mapping[str, object]
    digest: str
    k: int
    strategy: str
    compacted: bool
    epoch: int

    @property
    def record_count(self) -> int:
        return self.table.record_count

    @property
    def partition_count(self) -> int:
        return len(self.table.partitions)

    @property
    def k_satisfied(self) -> bool:
        return bool(self.audit["k_satisfied"])


@dataclass
class CacheStats:
    """Monotonic hit/miss/invalidation counters (mirrored into repro.obs)."""

    hits: int = 0
    misses: int = 0
    invalidations: int = 0


class ReleaseCache:
    """A thread-safe release cache with lazy epoch invalidation.

    ``get`` returns a snapshot only when its epoch matches the epoch the
    caller read from the service; an entry recorded at an older epoch is
    dropped on the spot (a write happened since — the release may no
    longer reflect the data).  ``put`` atomically swaps the published
    snapshot for its key and sweeps entries staler than the snapshot's
    epoch, so retention is bounded by the set of keys *live at the
    current epoch* rather than every key ever requested.
    """

    def __init__(self, max_entries: int | None = None) -> None:
        if max_entries is not None and max_entries < 1:
            raise ValueError("max_entries must be positive when set")
        self._entries: dict[CacheKey, ReleaseSnapshot] = {}
        self._lock = threading.Lock()
        self._max_entries = max_entries
        self.stats = CacheStats()

    def get(self, key: CacheKey, epoch: int) -> ReleaseSnapshot | None:
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            if entry.epoch != epoch:
                # Lazy invalidation: a write bumped the epoch since this
                # snapshot was published.
                del self._entries[key]
                self.stats.invalidations += 1
                self.stats.misses += 1
                if OBS.enabled:
                    OBS.count("serve.cache_invalidations")
                return None
            self.stats.hits += 1
            return entry

    def put(self, key: CacheKey, snapshot: ReleaseSnapshot) -> None:
        with self._lock:
            stale = [
                existing_key
                for existing_key, entry in self._entries.items()
                if entry.epoch < snapshot.epoch
            ]
            for existing_key in stale:
                del self._entries[existing_key]
                self.stats.invalidations += 1
            if stale and OBS.enabled:
                OBS.count("serve.cache_invalidations", len(stale))
            self._entries[key] = snapshot
            if self._max_entries is not None:
                # Dict preserves insertion order: drop oldest-inserted
                # entries first until the bound holds.
                while len(self._entries) > self._max_entries:
                    oldest = next(iter(self._entries))
                    del self._entries[oldest]
                    self.stats.invalidations += 1
                    if OBS.enabled:
                        OBS.count("serve.cache_invalidations")

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)
