"""The thread-safe anonymizer service: one writer, many readers.

:class:`AnonymizerService` turns an :class:`~repro.core.anonymizer.
RTreeAnonymizer` into something shaped like a database serving layer:

* all tree mutation happens on **one writer thread**, under one lock,
  fed by the bounded :class:`~repro.serve.queue.WriteQueue` (submitting
  callers get a :class:`~concurrent.futures.Future` and, when the queue
  is full, backpressure);
* consecutive single-record inserts are coalesced into one
  ``insert_batch`` group — one buffered-loader pass over the tree and,
  when durability is on, one WAL batch with a single group-commit fsync;
* readers never touch the live tree: :meth:`release` returns an immutable
  :class:`~repro.serve.cache.ReleaseSnapshot`, computed under the write
  lock on a miss and served from the epoch-validated cache on a hit;
* every applied write group bumps the **epoch**, so cached releases go
  stale the moment their data changes and a reader can never be handed a
  pre-mutation release after the mutation was acknowledged.

Observability: ``serve.cache_hits`` / ``serve.cache_misses`` /
``serve.cache_invalidations`` / ``serve.epoch_bumps`` /
``serve.write_groups`` / ``serve.queued_writes`` counters, the
``serve.queue_wait_seconds`` / ``serve.group_size`` /
``serve.commit_seconds`` / ``serve.release_seconds`` /
``serve.snapshot_swap_seconds`` histograms (p50/p90/p99 via the
registry's quantile sketch), and ``serve.queue_wait`` / ``serve.commit``
/ ``serve.release`` / ``serve.snapshot_swap`` trace spans.

Live telemetry (opt-in via :class:`~repro.obs.live.TelemetryConfig` on
the :class:`ServiceConfig`): a ``/metrics`` + ``/healthz`` HTTP endpoint,
a writer-heartbeat watchdog feeding :meth:`AnonymizerService.health`, and
a sampled slow-op JSONL log — see :mod:`repro.obs.live` and ``repro top``.
"""

from __future__ import annotations

import sys
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Sequence

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.leafscan import Constraint
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.obs import AUDITOR, OBS, TRACE
from repro.obs.audit import audit_release
from repro.obs.live import (
    HEALTH_CODES,
    SlowOpLog,
    TelemetryConfig,
    TelemetryServer,
    WriterWatchdog,
    prometheus_text,
)
from repro.query.engine import QUERY_KINDS, QueryEngine, QueryResult
from repro.query.ranges import RangeQuery
from repro.serve.cache import CacheKey, ReleaseCache, ReleaseSnapshot
from repro.serve.queue import INSERT_KINDS, WriteOp, WriteQueue

#: Pushdown engines cached per release recipe; oldest-built evicted beyond
#: this (an engine is cheap to rebuild — one packing pass over the MBRs).
MAX_QUERY_ENGINES = 8


class ServiceClosedError(RuntimeError):
    """Raised when submitting to or reading from a closed service."""


@dataclass(frozen=True, kw_only=True)
class ServiceConfig:
    """Tuning knobs for an :class:`AnonymizerService` (keyword-only).

    ``max_queue`` bounds the write queue (submitters block when full —
    that bound *is* the backpressure).  ``max_batch`` caps how many
    queued insert operations one group commit coalesces.
    ``cache_releases`` switches the release cache (off = every read
    recomputes under the lock).  ``journal`` keeps an in-memory log of
    every applied write group — the differential stress suite replays it
    to prove snapshot isolation — and costs memory proportional to the
    write history, so leave it off in production use.  ``telemetry``
    opts into the live layer (:mod:`repro.obs.live`): the ``/metrics`` +
    ``/healthz`` endpoint, the writer watchdog thresholds, and the
    slow-op log.  ``cache_max_entries`` bounds how many release recipes
    the cache may hold at once (stale epochs are swept on every put
    regardless; ``None`` removes the bound).
    """

    max_queue: int = 1024
    max_batch: int = 256
    cache_releases: bool = True
    cache_max_entries: int | None = 64
    journal: bool = False
    telemetry: TelemetryConfig | None = None


class AnonymizerService:
    """Serve k-anonymous releases concurrently with incremental writes."""

    def __init__(
        self,
        engine: RTreeAnonymizer,
        config: ServiceConfig | None = None,
    ) -> None:
        self._engine = engine
        self._config = config if config is not None else ServiceConfig()
        self._write_lock = threading.RLock()
        self._cache = ReleaseCache(max_entries=self._config.cache_max_entries)
        self._query_engines: dict[CacheKey, tuple[str, QueryEngine]] = {}
        self._query_lock = threading.Lock()
        self._epoch = 0
        self._queue = WriteQueue(self._config.max_queue)
        self._journal: list[tuple] | None = [] if self._config.journal else None
        self._closed = False
        telemetry = self._config.telemetry
        self._watchdog = WriterWatchdog(
            telemetry.degraded_after if telemetry else 1.0,
            telemetry.stalled_after if telemetry else 5.0,
        )
        #: Ops taken off the queue but not yet applied (writer-side only).
        self._inflight = 0
        self._slow_ops: SlowOpLog | None = None
        self._slow_op_warned = False
        self._telemetry_server: TelemetryServer | None = None
        if telemetry is not None and telemetry.slow_op_log is not None:
            self._slow_ops = SlowOpLog(
                telemetry.slow_op_log,
                telemetry.slow_op_threshold,
                sample_every=telemetry.slow_op_sample,
                max_spans=telemetry.slow_op_spans,
            )
        self._writer = threading.Thread(
            target=self._writer_loop, name="repro-serve-writer", daemon=True
        )
        self._writer.start()
        if telemetry is not None and telemetry.endpoint:
            self._telemetry_server = TelemetryServer(
                self.metrics_text,
                self.health,
                host=telemetry.host,
                port=telemetry.port,
            )
            self._telemetry_server.start()

    # -- introspection -------------------------------------------------------

    @property
    def engine(self) -> RTreeAnonymizer:
        """The wrapped engine.  Do not mutate it directly while serving."""
        return self._engine

    @property
    def config(self) -> ServiceConfig:
        return self._config

    @property
    def epoch(self) -> int:
        """Bumped once per applied write group; cache entries key on it."""
        return self._epoch

    @property
    def cache(self) -> ReleaseCache:
        return self._cache

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def journal(self) -> tuple[tuple, ...]:
        """The applied write groups, in order (``journal=True`` only).

        Entry ``i`` is the group whose application moved the service from
        epoch ``i`` to ``i + 1``; replaying ``journal[:e]`` onto an
        identically-prepared engine reproduces epoch ``e`` exactly — the
        property the stress suite's differential check relies on.
        """
        if self._journal is None:
            raise ValueError("journaling is off; construct with journal=True")
        return tuple(self._journal)

    def queue_depth(self) -> int:
        return self._queue.depth()

    def __len__(self) -> int:
        return len(self._engine)

    # -- live telemetry ------------------------------------------------------

    @property
    def telemetry_address(self) -> tuple[str, int] | None:
        """The bound (host, port) of the ``/metrics`` endpoint, if started."""
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.address

    @property
    def telemetry_url(self) -> str | None:
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.url

    @property
    def slow_op_log(self) -> SlowOpLog | None:
        return self._slow_ops

    def health(self) -> dict[str, object]:
        """The live health document served at ``/healthz``.

        ``status`` is the watchdog verdict over the pending work (queued
        plus in-flight operations): an idle writer is ``healthy`` no
        matter how long it has slept; a writer that stops beating while
        work waits degrades, then stalls.
        """
        depth = self._queue.depth()
        pending = depth + self._inflight
        status = self._watchdog.assess(pending)
        stats = self._cache.stats
        requests = stats.hits + stats.misses
        return {
            "status": status,
            "epoch": self._epoch,
            "queue_depth": depth,
            "inflight": self._inflight,
            "queue_capacity": self._queue.maxsize,
            "backpressure": depth / self._queue.maxsize,
            "heartbeat_age_s": self._watchdog.age(),
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "invalidations": stats.invalidations,
                "hit_ratio": stats.hits / requests if requests else 0.0,
                "entries": len(self._cache),
            },
            "closed": self._closed,
        }

    def metrics_text(self) -> str:
        """The Prometheus exposition served at ``/metrics``.

        Registry counters/gauges/histograms (with p50/p90/p99 summary
        quantiles) plus the service-level live gauges: epoch, queue
        depth, backpressure, cache hit ratio and the numeric health code
        (0 healthy, 1 degraded, 2 stalled).
        """
        health = self.health()
        cache: dict[str, object] = health["cache"]  # type: ignore[assignment]
        extra = {
            "serve.epoch": float(self._epoch),
            "serve.queue_depth": float(health["queue_depth"]),  # type: ignore[arg-type]
            "serve.backpressure": float(health["backpressure"]),  # type: ignore[arg-type]
            "serve.inflight": float(health["inflight"]),  # type: ignore[arg-type]
            "serve.cache_hit_ratio": float(cache["hit_ratio"]),  # type: ignore[arg-type]
            "serve.heartbeat_age_seconds": float(health["heartbeat_age_s"]),  # type: ignore[arg-type]
            "serve.health": float(HEALTH_CODES[health["status"]]),  # type: ignore[index]
        }
        return prometheus_text(OBS.snapshot(), extra)

    # -- bulk ingestion (pre-serving; takes the write lock directly) ---------

    def load(
        self,
        source: "Table | Iterable[Record] | str | Path",
        *,
        workers: int | None = None,
        batch_size: int = 8_192,
        first_rid: int = 0,
    ) -> int:
        """Bulk-load under the write lock (one epoch bump for the lot).

        The natural call order is load first, serve after — but the lock
        makes a mid-serving load safe too: readers just block for its
        duration.
        """
        self._assert_open()
        with self._write_lock:
            if isinstance(source, (str, Path)):
                consumed = self._engine.bulk_load_file(
                    str(source),
                    batch_size=batch_size,
                    first_rid=first_rid,
                    workers=workers,
                )
                self._journal_append(
                    ("bulk_load_file", str(source), batch_size, first_rid, workers)
                )
            else:
                if self._journal is not None:
                    # Journaled mode materializes so the replay sees the
                    # same records (journal=True is a test facility).
                    stream = (
                        source.records
                        if isinstance(source, Table)
                        else tuple(source)
                    )
                    consumed = self._engine.bulk_load(stream)
                    self._journal_append(("bulk_load", tuple(stream)))
                else:
                    consumed = self._engine.bulk_load(source)
            self._bump_epoch()
        return consumed

    # -- write path ----------------------------------------------------------

    def submit_insert(
        self, record: Record, timeout: float | None = None
    ) -> "Future[object]":
        """Queue one insert; the future resolves once it is applied+logged."""
        return self._submit(WriteOp("insert", (record,)), timeout)

    def submit_insert_batch(
        self, records: "Table | Iterable[Record]", timeout: float | None = None
    ) -> "Future[object]":
        stream = records.records if isinstance(records, Table) else records
        return self._submit(
            WriteOp("insert_batch", (tuple(stream),)), timeout
        )

    def submit_delete(
        self, rid: int, point: Sequence[float], timeout: float | None = None
    ) -> "Future[object]":
        return self._submit(WriteOp("delete", (rid, tuple(point))), timeout)

    def submit_update(
        self,
        rid: int,
        old_point: Sequence[float],
        record: Record,
        timeout: float | None = None,
    ) -> "Future[object]":
        return self._submit(
            WriteOp("update", (rid, tuple(old_point), record)), timeout
        )

    def insert(self, record: Record) -> None:
        """Insert and wait for the acknowledgement (submit + result)."""
        self.submit_insert(record).result()

    def insert_batch(self, records: "Table | Iterable[Record]") -> int:
        return self.submit_insert_batch(records).result()  # type: ignore[return-value]

    def delete(self, rid: int, point: Sequence[float]) -> Record:
        return self.submit_delete(rid, point).result()  # type: ignore[return-value]

    def update(
        self, rid: int, old_point: Sequence[float], record: Record
    ) -> Record:
        return self.submit_update(rid, old_point, record).result()  # type: ignore[return-value]

    def barrier(self, timeout: float | None = None) -> int:
        """Wait until every previously submitted write is applied.

        Returns the epoch observed once the barrier drained.
        """
        op = WriteOp("barrier", ())
        self._submit_op(op)
        return op.future.result(timeout)  # type: ignore[return-value]

    def _submit(self, op: WriteOp, timeout: float | None) -> "Future[object]":
        self._submit_op(op, timeout)
        return op.future

    def _submit_op(self, op: WriteOp, timeout: float | None = None) -> None:
        self._assert_open()
        self._queue.put(op, timeout=timeout)
        if OBS.enabled:
            depth = self._queue.depth()
            OBS.count("serve.queued_writes")
            OBS.gauge("serve.queue_depth", depth)
            OBS.gauge("serve.backpressure", depth / self._queue.maxsize)

    # -- read path -----------------------------------------------------------

    def release(
        self,
        k: int,
        *,
        compacted: bool = True,
        constraint: Constraint | None = None,
        strategy: str = "subtree",
    ) -> ReleaseSnapshot:
        """Serve an immutable k-anonymous release snapshot.

        A cache hit never touches the tree.  A miss recomputes under the
        write lock (writers wait; other readers of the same key piggyback
        on the recheck) and atomically swaps the fresh snapshot in.  The
        snapshot reflects exactly the epoch it is stamped with — never a
        tree mid-mutation.
        """
        self._assert_open()
        key: CacheKey = (k, strategy, compacted, constraint)
        if self._config.cache_releases:
            snapshot = self._cache.get(key, self._epoch)
            if snapshot is not None:
                if OBS.enabled:
                    OBS.count("serve.cache_hits")
                if TRACE.enabled:
                    TRACE.instant("serve.cache_hit", "serve", k=k)
                return snapshot
        with self._write_lock:
            epoch = self._epoch
            if self._config.cache_releases:
                snapshot = self._cache.get(key, epoch)
                if snapshot is not None:  # another reader built it just now
                    if OBS.enabled:
                        OBS.count("serve.cache_hits")
                    return snapshot
            if OBS.enabled:
                OBS.count("serve.cache_misses")
            release_started = time.perf_counter()
            with TRACE.span(
                "serve.release", "serve", k=k, strategy=strategy, epoch=epoch
            ):
                table = self._engine.anonymize(
                    k, compacted=compacted, constraint=constraint,
                    strategy=strategy,
                )
            release_elapsed = time.perf_counter() - release_started
            if OBS.enabled:
                OBS.observe("serve.release_seconds", release_elapsed)
            self._note_slow(
                "release", release_elapsed, k=k, strategy=strategy,
                epoch=epoch,
            )
            if AUDITOR.enabled and AUDITOR.latest is not None:
                audit = AUDITOR.latest
            else:
                audit = audit_release(table, k, base_k=self._engine.base_k)
            snapshot = ReleaseSnapshot(
                table=table,
                audit=audit,
                digest=release_digest(table),
                k=k,
                strategy=strategy,
                compacted=compacted,
                epoch=epoch,
            )
            if self._config.cache_releases:
                swap_started = time.perf_counter()
                with TRACE.span("serve.snapshot_swap", "serve", k=k):
                    self._cache.put(key, snapshot)
                if OBS.enabled:
                    OBS.observe(
                        "serve.snapshot_swap_seconds",
                        time.perf_counter() - swap_started,
                    )
            return snapshot

    # -- query path ----------------------------------------------------------

    def query(
        self,
        queries: "RangeQuery | Sequence[RangeQuery]",
        *,
        k: int,
        kind: str = "count",
        compacted: bool = True,
        constraint: Constraint | None = None,
        strategy: str = "subtree",
    ) -> QueryResult:
        """Answer §5.4 queries against the k-release via index pushdown.

        ``kind`` is ``"count"`` (records of intersecting partitions) or
        ``"distinct"`` (number of intersecting equivalence classes); point
        lookups and group-by aggregates reduce to these via
        :func:`repro.query.point_query` / :func:`repro.query.group_by_queries`.
        The whole batch is answered against ONE snapshot — the result is
        stamped with that snapshot's epoch and digest, so a caller can
        check which release state the answers reflect even while a writer
        is live.  Answers are bit-identical to running the scalar oracle
        :func:`repro.query.count_anonymized` over the same snapshot.
        """
        self._assert_open()
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected {QUERY_KINDS}")
        batch = [queries] if isinstance(queries, RangeQuery) else list(queries)
        snapshot = self.release(
            k, compacted=compacted, constraint=constraint, strategy=strategy
        )
        engine = self._pushdown_engine(
            (k, strategy, compacted, constraint), snapshot
        )
        started = time.perf_counter()
        values = engine.evaluate(batch, kind)
        if OBS.enabled:
            OBS.count("serve.queries")
            OBS.observe("serve.query_seconds", time.perf_counter() - started)
        return QueryResult(
            kind=kind,
            values=tuple(values),
            k=k,
            epoch=snapshot.epoch,
            digest=snapshot.digest,
        )

    def _pushdown_engine(
        self, key: CacheKey, snapshot: ReleaseSnapshot
    ) -> QueryEngine:
        """The cached pushdown engine for one release recipe.

        Keyed by recipe, validated by digest: a digest match means the
        snapshot's table is bit-identical to the one the engine was built
        over, so reuse is safe across epochs whose writes did not change
        this release.  The engine itself is immutable apart from its
        advisory ``stats``, so handing one engine to many reader threads
        is fine.
        """
        with self._query_lock:
            cached = self._query_engines.get(key)
            if cached is not None and cached[0] == snapshot.digest:
                if OBS.enabled:
                    OBS.count("query.engine_cache_hits")
                return cached[1]
        engine = QueryEngine(snapshot.table)
        with self._query_lock:
            self._query_engines[key] = (snapshot.digest, engine)
            while len(self._query_engines) > MAX_QUERY_ENGINES:
                del self._query_engines[next(iter(self._query_engines))]
        return engine

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain the queue, stop the writer, close the engine.  Idempotent.

        Writes submitted before ``close`` are still applied (their futures
        resolve); submissions after it raise :class:`ServiceClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        self._queue.put_stop()
        self._writer.join()
        if self._telemetry_server is not None:
            self._telemetry_server.stop()
        if self._slow_ops is not None:
            self._slow_ops.close()
        self._engine.close()

    def __enter__(self) -> "AnonymizerService":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _assert_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("this service has been closed")

    # -- the writer thread ---------------------------------------------------

    def _writer_loop(self) -> None:
        self._watchdog.beat()
        while True:
            group = self._queue.take_group(self._config.max_batch)
            self._watchdog.beat()
            if group is None:
                return
            self._inflight = len(group)
            try:
                self._apply_group(list(group))
            finally:
                self._inflight = 0
                self._watchdog.beat()

    def _apply_group(self, group: list[WriteOp]) -> None:
        started = time.perf_counter()
        for op in group:
            waited = started - op.enqueued_at
            if OBS.enabled:
                OBS.observe("serve.queue_wait_seconds", waited)
            if TRACE.enabled:
                TRACE.record_span(
                    "serve.queue_wait",
                    "serve",
                    start_us=TRACE.offset_us(op.enqueued_at),
                    duration_us=waited * 1e6,
                    args={"kind": op.kind},
                )
        first = group[0]
        if first.kind == "barrier":
            first.future.set_result(self._epoch)
            return
        error: BaseException | None = None
        result: object = None
        commit_started = time.perf_counter()
        with self._write_lock:
            with TRACE.span("serve.commit", "serve", ops=len(group)):
                try:
                    result = self._apply_locked(group)
                except BaseException as exc:  # resolve futures either way
                    error = exc
                    # State may have partially changed (a batch that died
                    # midway); go stale rather than serve it cached.  The
                    # journal marks the failed group so entry i keeps
                    # corresponding to the epoch-i -> i+1 transition.
                    self._journal_append(("failed", first.kind))
                    self._bump_epoch()
                else:
                    self._bump_epoch()
        commit_elapsed = time.perf_counter() - commit_started
        # Acknowledge the writers first: telemetry below must never delay
        # (or, should it fail, strand) a client blocked on its future.
        for op in group:
            if error is not None:
                op.future.set_exception(error)
            else:
                op.future.set_result(result)
        if OBS.enabled:
            OBS.count("serve.write_groups")
            OBS.observe("serve.group_size", len(group))
            OBS.observe("serve.commit_seconds", commit_elapsed)
        self._note_slow(
            "commit", commit_elapsed, kind=first.kind, ops=len(group),
            epoch=self._epoch,
        )

    def _apply_locked(self, group: list[WriteOp]) -> object:
        first = group[0]
        if first.kind in INSERT_KINDS:
            records: list[Record] = []
            for op in group:
                if op.kind == "insert":
                    records.append(op.payload[0])
                else:
                    records.extend(op.payload[0])
            consumed = self._engine.insert_batch(records)
            self._journal_append(("insert_batch", tuple(records)))
            return consumed
        if first.kind == "delete":
            rid, point = first.payload
            removed = self._engine.delete(rid, point)
            self._journal_append(("delete", rid, point))
            return removed
        if first.kind == "update":
            rid, old_point, record = first.payload
            replaced = self._engine.update(rid, old_point, record)
            self._journal_append(("update", rid, old_point, record))
            return replaced
        raise AssertionError(f"unknown write kind {first.kind!r}")

    def _journal_append(self, entry: tuple) -> None:
        if self._journal is not None:
            self._journal.append(entry)

    def _note_slow(self, op: str, seconds: float, **context: object) -> None:
        """Feed the slow-op log, never letting telemetry hurt the data path.

        A full disk or closed sink under the log must not kill the writer
        thread or fail a reader's release — warn once and keep serving.
        """
        if self._slow_ops is None:
            return
        try:
            self._slow_ops.record(op, seconds, **context)
        except Exception as error:
            if not self._slow_op_warned:
                self._slow_op_warned = True
                print(
                    f"warning: slow-op log failed ({error!r}); "
                    "further slow operations will not be recorded",
                    file=sys.stderr,
                )

    def _bump_epoch(self) -> None:
        self._epoch += 1
        if OBS.enabled:
            OBS.count("serve.epoch_bumps")
            OBS.gauge("serve.epoch", self._epoch)
