"""The typed serving contract: :class:`ServiceProtocol`.

Both serving backends — the single-writer
:class:`~repro.serve.service.AnonymizerService` and the N-process
:class:`~repro.cluster.router.ShardedCluster` — expose the same surface:
submit mutations (getting a future back), read immutable release
snapshots, observe epoch/health/metrics, close.  This module pins that
surface down as a runtime-checkable :class:`typing.Protocol` so callers
(and :func:`repro.api.serve`) can be backend-agnostic::

    service = repro.api.serve(schema, shards=4)
    assert isinstance(service, ServiceProtocol)
    service.submit_insert(record).result()
    snapshot = service.release(k=25)

The protocol is intentionally the *common* surface.  Backend-specific
extras (the service's ``journal``, the cluster's ``plan`` and
``worker_pids``) stay on the concrete classes; code that needs them is
already backend-aware.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Iterable,
    Protocol,
    Sequence,
    runtime_checkable,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from concurrent.futures import Future

    from repro.core.leafscan import Constraint
    from repro.dataset.record import Record
    from repro.dataset.table import Table
    from repro.query.engine import QueryResult
    from repro.query.ranges import RangeQuery
    from repro.serve.cache import ReleaseSnapshot

__all__ = ["ServiceProtocol"]


@runtime_checkable
class ServiceProtocol(Protocol):
    """What every serving backend offers, single-writer or sharded.

    Mutations are asynchronous: ``submit_*`` enqueues the operation and
    returns a :class:`~concurrent.futures.Future` that resolves once the
    write is applied (and, for durable backends, logged) — or raises
    :class:`~repro.serve.service.ServiceClosedError` when the backend (or
    the shard owning the key) is closed or has crashed.  Reads are
    synchronous and immutable: :meth:`release` returns an epoch-stamped
    :class:`~repro.serve.cache.ReleaseSnapshot` that never reflects a
    tree mid-mutation.
    """

    # -- write path ----------------------------------------------------------

    def submit_insert(
        self, record: "Record", timeout: float | None = None
    ) -> "Future[object]":
        """Queue one insert; the future resolves once applied."""
        ...

    def submit_insert_batch(
        self, records: "Table | Iterable[Record]", timeout: float | None = None
    ) -> "Future[object]":
        """Queue a batch insert; the future resolves to the consumed count."""
        ...

    def submit_delete(
        self, rid: int, point: Sequence[float], timeout: float | None = None
    ) -> "Future[object]":
        """Queue one delete; the future resolves to the removed record."""
        ...

    def submit_update(
        self,
        rid: int,
        old_point: Sequence[float],
        record: "Record",
        timeout: float | None = None,
    ) -> "Future[object]":
        """Queue one update; the future resolves to the replaced record."""
        ...

    # -- read path -----------------------------------------------------------

    def release(
        self,
        k: int,
        *,
        compacted: bool = True,
        constraint: "Constraint | None" = None,
        strategy: str = ...,  # type: ignore[assignment]
    ) -> "ReleaseSnapshot":
        """Serve an immutable k-anonymous release snapshot.

        The default ``strategy`` is backend-specific (``"subtree"`` for
        the single service, ``"hilbert"`` for the cluster); both accept
        the keyword explicitly.
        """
        ...

    def query(
        self,
        queries: "RangeQuery | Sequence[RangeQuery]",
        *,
        k: int,
        kind: str = "count",
    ) -> "QueryResult":
        """Answer §5.4 queries against the k-release via index pushdown.

        The whole batch is evaluated against one snapshot; the result is
        stamped with that snapshot's epoch and digest, and its values are
        bit-identical to the scalar oracle over the same snapshot (the
        cluster merges per-shard pushdown answers exactly).
        """
        ...

    # -- observability -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """Monotonic write-generation counter (aggregated across shards)."""
        ...

    def health(self) -> dict[str, object]:
        """The live health document (served at ``/healthz``)."""
        ...

    def metrics_text(self) -> str:
        """The Prometheus text exposition (served at ``/metrics``)."""
        ...

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Drain pending writes and shut the backend down.  Idempotent."""
        ...
