"""The bounded write queue feeding the service's single writer thread.

Mutations enter as :class:`WriteOp` items through a ``queue.Queue`` with a
hard size bound — a producer that outruns the writer blocks (or times
out) instead of growing memory without limit.  The writer drains the
queue in **groups**: a run of consecutive insert-class operations is
coalesced into one group so the service can apply it as a single buffered
``insert_batch`` under one WAL batch-commit (group commit); every other
operation (delete, update, barrier) forms a group of its own, preserving
submission order exactly.
"""

from __future__ import annotations

import queue as _queue
import time
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

#: Operation kinds a WriteOp can carry.
INSERT_KINDS = ("insert", "insert_batch")


@dataclass
class WriteOp:
    """One queued mutation: kind, payload, and the future that resolves it.

    ``enqueued_at`` is the ``time.perf_counter()`` stamp taken at submit
    time; the writer uses it to record queue-wait spans and the
    ``serve.queue_wait_seconds`` histogram.
    """

    kind: str  # "insert" | "insert_batch" | "delete" | "update" | "barrier"
    payload: tuple
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.perf_counter)


#: Sentinel closing the queue; always the last item the writer sees.
_STOP = object()


class WriteQueue:
    """A bounded FIFO of write operations with group-coalescing takes."""

    def __init__(self, maxsize: int) -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self._queue: _queue.Queue = _queue.Queue(maxsize)
        self._pending: list[object] = []  # one op deferred by coalescing

    @property
    def maxsize(self) -> int:
        return self._queue.maxsize

    def depth(self) -> int:
        """Approximate queued-op count (racy by nature, fine for gauges)."""
        return self._queue.qsize() + len(self._pending)

    def put(self, op: WriteOp, timeout: float | None = None) -> None:
        """Enqueue, blocking while the queue is full (the backpressure).

        Raises ``queue.Full`` when ``timeout`` elapses first.
        """
        self._queue.put(op, timeout=timeout)

    def put_stop(self) -> None:
        """Enqueue the terminal sentinel (blocks until there is room)."""
        self._queue.put(_STOP)

    def take_group(self, max_batch: int) -> Sequence[WriteOp] | None:
        """Block for the next group of operations; ``None`` means stop.

        A group is either a run of up to ``max_batch`` consecutive
        insert-class operations (coalesced for group commit) or exactly
        one non-insert operation.  An operation that would break a run is
        deferred — never reordered — to the next call.
        """
        first = self._pending.pop() if self._pending else self._queue.get()
        if first is _STOP:
            return None
        assert isinstance(first, WriteOp)
        group = [first]
        if first.kind not in INSERT_KINDS:
            return group
        while len(group) < max_batch:
            try:
                item = self._queue.get_nowait()
            except _queue.Empty:
                break
            if item is _STOP or item.kind not in INSERT_KINDS:  # type: ignore[union-attr]
                self._pending.append(item)
                break
            group.append(item)  # type: ignore[arg-type]
        return group
