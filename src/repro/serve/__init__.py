"""repro.serve — concurrent release serving over a live anonymizer.

Real indexes serve reads *while* being updated; this package gives the
anonymization index the same property.  :class:`AnonymizerService` wraps
one :class:`~repro.core.anonymizer.RTreeAnonymizer` behind a
single-writer/multi-reader protocol:

* **writers** submit mutations into a bounded queue (backpressure instead
  of unbounded memory growth); a dedicated writer thread applies them
  under the write lock, coalescing runs of inserts into one
  group-committed batch (one buffered tree pass, one WAL batch-commit
  fsync);
* **readers** call :meth:`AnonymizerService.release` and get an immutable
  :class:`ReleaseSnapshot` — computed under the lock on a cache miss,
  served straight from the epoch-validated :class:`ReleaseCache` on a hit,
  and never a view of a tree mid-mutation;
* every applied write group bumps the service **epoch**, lazily
  invalidating cached releases, so a reader can never observe a
  pre-mutation release after its mutation was acknowledged.

Live telemetry is opt-in: pass a
:class:`~repro.obs.live.TelemetryConfig` on the :class:`ServiceConfig`
to expose ``/metrics`` (Prometheus text) and ``/healthz`` (JSON with a
writer-heartbeat health verdict), and to log slow operations to JSONL.
``repro top`` renders the endpoint as a refreshing dashboard.

See docs/API.md ("Serving"), docs/OBSERVABILITY.md, and TUTORIAL §11
for the walkthrough.
"""

from repro.obs.live import TelemetryConfig
from repro.serve.cache import ReleaseCache, ReleaseSnapshot
from repro.serve.protocol import ServiceProtocol
from repro.serve.queue import WriteOp, WriteQueue
from repro.serve.service import (
    AnonymizerService,
    ServiceClosedError,
    ServiceConfig,
)

__all__ = [
    "AnonymizerService",
    "ReleaseCache",
    "ReleaseSnapshot",
    "ServiceClosedError",
    "ServiceConfig",
    "ServiceProtocol",
    "TelemetryConfig",
    "WriteOp",
    "WriteQueue",
]
