"""The shard worker process: one key range, one service, one socket.

Each worker owns one contiguous Hilbert-key range of the cluster's
:class:`~repro.parallel.planner.ShardPlan` and runs a full
single-writer stack for it — its own
:class:`~repro.core.anonymizer.RTreeAnonymizer` (optionally with its own
WAL directory) wrapped in its own
:class:`~repro.serve.service.AnonymizerService`, so every per-shard
property the serving layer already proves (group commit, epoch
semantics, journal replay, WAL durability) holds unchanged inside a
shard.  The worker's loop is strict request/reply over the inherited
socket: receive one frame, apply it through the service, reply.

Because mutations are applied *synchronously* before the reply frame is
sent, the worker is quiescent whenever it answers — in particular a
``collect`` reply (the scatter half of a cluster release) reads the
engine with no writer racing it, and the epoch it reports counts exactly
the mutations acknowledged before it.
"""

from __future__ import annotations

import pickle
import socket
from pathlib import Path
from typing import TYPE_CHECKING

from repro.cluster.protocol import EndOfStream, recv_frame, send_frame

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.schema import Schema
    from repro.parallel.planner import ShardPlan
    from repro.serve.service import AnonymizerService, ServiceConfig


def _portable(error: BaseException) -> BaseException:
    """An exception safe to pickle back to the router.

    Exceptions carrying unpicklable payloads (a closure, a socket) are
    rewritten as a plain ``RuntimeError`` with the original rendering —
    the router must always get *a* reply, never a died-mid-send worker.
    """
    try:
        pickle.dumps(error)
    except Exception:
        return RuntimeError(f"{type(error).__name__}: {error}")
    return error


def _collect_run(service: "AnonymizerService", plan: "ShardPlan") -> tuple:
    """The shard's records in global ``(key, rid)`` order, with its epoch.

    The request/reply discipline guarantees no mutation is in flight, but
    the engine may still hold loader-buffered records or an unfinished
    bulk mode (mirroring ``RTreeAnonymizer.anonymize``'s own drains).
    """
    from repro.index.bulk import hilbert_ordered

    engine = service.engine
    if engine.loader.buffered_records:
        engine.loader.drain()
    elif engine.tree.in_bulk_mode:
        engine.tree.finish_bulk()
    records = [
        record for leaf in engine.tree.leaves() for record in leaf.records
    ]
    run = hilbert_ordered(records, plan.lows, plan.highs, plan.bits)
    return (service.epoch, run)


def _install_query_index(state: dict, args: tuple) -> bool:
    """Build and pin the shard's pushdown engine for one release digest.

    The router ships each shard its *slice* of the global release: for
    every partition the shard holds records of, the partition's global
    box, the count of records this shard holds, and an owned flag set on
    exactly one shard.  Per-shard engines therefore answer with partial
    sums that merge by elementwise addition into exactly the
    single-engine answer (COUNT is additive over any disjoint split of
    per-partition record mass, and every slice shares the global box so
    intersection verdicts agree everywhere).
    """
    from repro.geometry.box import Box
    from repro.query.engine import QueryEngine

    k, digest, lows, highs, counts, owned = args
    boxes = [Box(low, high) for low, high in zip(lows, highs)]
    engine = QueryEngine.from_entries(boxes, counts, owned)
    state[k] = (digest, engine)
    return True


def _answer_query(state: dict, args: tuple) -> list[int]:
    from repro.geometry.box import Box
    from repro.query.ranges import RangeQuery

    k, digest, kind, boxes = args
    installed = state.get(k)
    if installed is None or installed[0] != digest:
        raise RuntimeError(
            f"no query index installed for k={k} digest={digest[:12]}; "
            "the router must install before querying"
        )
    queries = [RangeQuery(Box(low, high)) for low, high in boxes]
    return installed[1].evaluate(queries, kind)


def _handle(
    service: "AnonymizerService",
    plan: "ShardPlan",
    state: dict,
    op: str,
    args: tuple,
) -> object:
    if op == "insert_batch":
        return service.insert_batch(args[0])
    if op == "delete":
        rid, point = args
        return service.delete(rid, point)
    if op == "update":
        rid, old_point, record = args
        return service.update(rid, old_point, record)
    if op == "collect":
        return _collect_run(service, plan)
    if op == "install_query":
        return _install_query_index(state, args)
    if op == "query":
        return _answer_query(state, args)
    if op == "epoch":
        return service.epoch
    if op == "barrier":
        return service.barrier()
    if op == "health":
        return service.health()
    if op == "metrics":
        from repro.obs import OBS

        snapshot = OBS.snapshot() if OBS.enabled else None
        return (snapshot, service.health(), service.epoch)
    if op == "journal":
        return service.journal
    if op == "len":
        return len(service)
    if op == "ping":
        return "pong"
    if op == "close":
        return True
    raise ValueError(f"unknown shard op {op!r}")


def shard_worker_main(
    sock: socket.socket,
    index: int,
    schema: "Schema",
    plan: "ShardPlan",
    base_k: int,
    service_config: "ServiceConfig",
    durability_dir: str | None,
    enable_obs: bool,
) -> None:
    """The worker process entry point (module-level so it spawns too).

    Builds the shard's engine + service, then serves the request loop
    until a ``close`` op or the router's end of the socket vanishes.
    ``enable_obs`` carries the router's registry state across the process
    boundary so per-shard ``serve.*`` counters exist exactly when the
    cluster's do.
    """
    from repro.core.anonymizer import RTreeAnonymizer
    from repro.dataset.table import Table
    from repro.serve.service import AnonymizerService

    if enable_obs:
        from repro import obs

        obs.enable()
    durability = None
    if durability_dir is not None:
        from repro.durability.manager import DurabilityConfig

        durability = DurabilityConfig(dir=Path(durability_dir))
    engine = RTreeAnonymizer(
        Table(schema, ()), base_k=base_k, durability=durability
    )
    service = AnonymizerService(engine, service_config)
    #: Installed pushdown engines, keyed by k: {k: (digest, QueryEngine)}.
    query_state: dict = {}
    try:
        while True:
            try:
                request = recv_frame(sock)
            except EndOfStream:
                break
            seq, op, args = request  # type: ignore[misc]
            try:
                result = _handle(service, plan, query_state, op, args)
            except BaseException as error:  # the reply *is* the error path
                send_frame(sock, (seq, "err", _portable(error)))
            else:
                send_frame(sock, (seq, "ok", result))
                if op == "close":
                    break
    finally:
        try:
            service.close()
        except Exception:
            pass
        try:
            sock.close()
        except OSError:
            pass
