"""The shard router: key-routed writes, scatter-gather reads, one API.

:class:`ShardedCluster` is the N-process serving backend.  At
construction it derives a static :class:`~repro.parallel.planner.
ShardPlan` (sampled key quantiles when the source table carries records,
uniform key-space boundaries otherwise), spawns one
:mod:`~repro.cluster.worker` process per shard over a private socket
pair, and then serves the same :class:`~repro.serve.protocol.
ServiceProtocol` surface as the single-writer
:class:`~repro.serve.service.AnonymizerService`:

* ``submit_insert`` / ``submit_insert_batch`` / ``submit_delete`` route
  by the record's Hilbert key to the owning shard; an update whose old
  and new points land on different shards decomposes into a delete on
  the old owner chained with an insert on the new one;
* ``release`` scatters a ``collect`` to every shard, stitches the sorted
  runs with global-grid seam repair (:mod:`repro.cluster.seams`), and
  caches the audited snapshot under the aggregated cluster epoch;
* ``epoch`` / ``health`` / ``metrics_text`` aggregate the shards —
  metrics as shard-labeled ``serve.*`` samples rolled up into one
  ``/metrics`` exposition.

**Failure surface.**  Every shard conversation runs on a dedicated
dispatcher thread with a bounded receive timeout.  A worker that dies
(its socket closes) or wedges past the timeout marks the shard dead:
the in-flight future and everything queued behind it resolve with
:class:`~repro.serve.service.ServiceClosedError`, and later submissions
routed to that shard raise immediately — a crashed shard can never
strand a client on a hung future.
"""

from __future__ import annotations

import queue as queue_module
import socket
import threading
import time
from concurrent.futures import Future
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro.cluster.protocol import FrameError, recv_frame, send_frame
from repro.cluster.seams import assemble_release
from repro.cluster.worker import shard_worker_main
from repro.core.anonymizer import DEFAULT_BASE_K
from repro.core.leafscan import Constraint
from repro.core.partition import AnonymizedTable, release_digest
from repro.dataset.record import Record
from repro.dataset.schema import Schema
from repro.dataset.table import Table
from repro.index.bulk import DEFAULT_HILBERT_BITS
from repro.obs import OBS, TRACE
from repro.obs.live import (
    HEALTH_CODES,
    TelemetryConfig,
    TelemetryServer,
    prometheus_cluster_text,
)
from repro.parallel.engine import ShardRun, _mp_context
from repro.parallel.planner import (
    ShardPlan,
    plan_record_shards,
    plan_uniform,
)
from repro.query.engine import QUERY_KINDS, QueryResult
from repro.query.ranges import RangeQuery
from repro.serve.cache import CacheKey, ReleaseCache, ReleaseSnapshot
from repro.serve.service import ServiceClosedError, ServiceConfig

__all__ = ["ClusterConfig", "ShardedCluster"]

#: Severity order of the watchdog verdicts, for aggregating shard healths.
_STATUS_RANK = {"healthy": 0, "degraded": 1, "stalled": 2}


@dataclass(frozen=True, kw_only=True)
class ClusterConfig:
    """Tuning knobs for a :class:`ShardedCluster` (keyword-only).

    ``shards`` is the process fan-out.  ``service`` is applied to *every*
    shard's inner :class:`~repro.serve.service.AnonymizerService` (queue
    bound, group-commit batch, per-shard journal); ``telemetry`` opts the
    **cluster** into the live layer — one ``/metrics`` + ``/healthz``
    endpoint served by the router with shard-labeled samples (per-shard
    endpoints would need per-shard ports; give the inner ``service`` its
    own telemetry only if you want that).  ``durability_dir`` roots one
    WAL directory per shard (``shard-00/``, ``shard-01/``, ...).
    ``request_timeout`` bounds every dispatcher wait on a worker reply —
    the guarantee that futures resolve even when a worker wedges.
    ``max_pending`` bounds each shard's outbound request queue (the
    router-side backpressure, mirroring the service's ``max_queue``).
    """

    shards: int = 2
    service: ServiceConfig = ServiceConfig()
    telemetry: TelemetryConfig | None = None
    durability_dir: str | Path | None = None
    request_timeout: float = 60.0
    cache_releases: bool = True
    max_pending: int = 1024

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("shards must be at least 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")
        if self.max_pending < 1:
            raise ValueError("max_pending must be at least 1")


class _ShardHandle:
    """One shard's process, socket, and request dispatcher thread."""

    def __init__(
        self,
        index: int,
        process,  # noqa: ANN001 - multiprocessing.Process
        sock: socket.socket,
        timeout: float,
        max_pending: int,
    ) -> None:
        self.index = index
        self.process = process
        self.sock = sock
        self.requests: "queue_module.Queue[tuple | None]" = queue_module.Queue(
            max_pending
        )
        self.dead = False
        self.dead_reason: str | None = None
        #: Last epoch value observed from this shard (survives its death,
        #: so the aggregated cluster epoch never regresses).
        self.last_epoch = 0
        self.sock.settimeout(timeout)
        self.dispatcher = threading.Thread(
            target=self._dispatch_loop,
            name=f"repro-cluster-shard-{index}",
            daemon=True,
        )
        self.dispatcher.start()

    def submit(
        self, op: str, args: tuple, timeout: float | None = None
    ) -> "Future[object]":
        """Enqueue one request; the future resolves with the reply.

        Raises :class:`ServiceClosedError` immediately when the shard is
        already known dead.  ``timeout`` bounds the *enqueue* (queue-full
        backpressure), mirroring the single service's submit timeout.
        """
        if self.dead:
            raise ServiceClosedError(
                f"shard {self.index} is down ({self.dead_reason}); "
                "the cluster cannot accept writes for its key range"
            )
        future: "Future[object]" = Future()
        self.requests.put((op, args, future), timeout=timeout)
        return future

    def _dispatch_loop(self) -> None:
        seq = 0
        while True:
            item = self.requests.get()
            if item is None:
                return
            op, args, future = item
            seq += 1
            try:
                send_frame(self.sock, (seq, op, args))
                reply = recv_frame(self.sock)
            except (FrameError, OSError, TimeoutError) as error:
                self._mark_dead(f"{type(error).__name__}: {error}", future)
                return
            reply_seq, status, value = reply  # type: ignore[misc]
            if reply_seq != seq:
                self._mark_dead(
                    f"protocol desync (reply {reply_seq} to request {seq})",
                    future,
                )
                return
            if status == "ok":
                if op in ("epoch", "barrier"):
                    self.last_epoch = max(self.last_epoch, int(value))  # type: ignore[arg-type]
                future.set_result(value)
            else:
                future.set_exception(
                    value
                    if isinstance(value, BaseException)
                    else RuntimeError(str(value))
                )
            if op == "close":
                return

    def _mark_dead(
        self, reason: str, pending: "Future[object] | None" = None
    ) -> None:
        """Fail the in-flight and queued futures; refuse future submits."""
        self.dead = True
        self.dead_reason = reason
        if OBS.enabled:
            OBS.count("cluster.shard_failures")
        if TRACE.enabled:
            TRACE.instant(
                "cluster.shard_dead", "cluster", shard=self.index, reason=reason
            )
        error = ServiceClosedError(
            f"shard {self.index} worker failed ({reason}); "
            "its pending writes were not acknowledged"
        )
        if pending is not None:
            pending.set_exception(error)
        while True:
            try:
                item = self.requests.get_nowait()
            except queue_module.Empty:
                break
            if item is not None:
                item[2].set_exception(error)
        try:
            self.sock.close()
        except OSError:
            pass

    def stop_dispatcher(self) -> None:
        self.requests.put(None)


class ShardedCluster:
    """N-process sharded serving — a drop-in for ``AnonymizerService``."""

    def __init__(
        self,
        source: "Schema | Table",
        config: ClusterConfig | None = None,
        *,
        base_k: int = DEFAULT_BASE_K,
    ) -> None:
        """Plan the key ranges and spawn one worker per shard.

        ``source`` supplies the schema; when it is a :class:`Table` *with
        records*, those records are also quantile-sampled into a balanced
        shard plan (they are **not** loaded — call :meth:`load`).  A bare
        schema (or empty table) falls back to uniform key-space
        boundaries.
        """
        self._config = config if config is not None else ClusterConfig()
        schema_table = Table(source, ()) if isinstance(source, Schema) else source
        self._schema = schema_table.schema
        self._base_k = base_k
        lows = self._schema.domain_lows()
        highs = self._schema.domain_highs()
        shards = self._config.shards
        records = schema_table.records
        if records:
            self._plan = plan_record_shards(
                records, shards, lows, highs, DEFAULT_HILBERT_BITS
            )
        else:
            self._plan = plan_uniform(shards, lows, highs, DEFAULT_HILBERT_BITS)
        self._cache = ReleaseCache()
        self._release_lock = threading.Lock()
        #: Installed per-shard query indexes: {k: release digest}.
        self._query_installs: dict[int, str] = {}
        self._query_lock = threading.Lock()
        self._closed = False
        self._shards: list[_ShardHandle] = []
        context = _mp_context()
        durability_root = (
            Path(self._config.durability_dir)
            if self._config.durability_dir is not None
            else None
        )
        for index in range(shards):
            parent_sock, child_sock = socket.socketpair()
            shard_dir: str | None = None
            if durability_root is not None:
                directory = durability_root / f"shard-{index:02d}"
                directory.mkdir(parents=True, exist_ok=True)
                shard_dir = str(directory)
            process = context.Process(
                target=shard_worker_main,
                args=(
                    child_sock,
                    index,
                    self._schema,
                    self._plan,
                    base_k,
                    self._config.service,
                    shard_dir,
                    OBS.enabled,
                ),
                name=f"repro-shard-{index}",
                daemon=True,
            )
            process.start()
            child_sock.close()
            self._shards.append(
                _ShardHandle(
                    index,
                    process,
                    parent_sock,
                    self._config.request_timeout,
                    self._config.max_pending,
                )
            )
        if OBS.enabled:
            OBS.gauge("cluster.shards", shards)
            OBS.gauge("cluster.dead_shards", 0)
        self._telemetry_server: TelemetryServer | None = None
        telemetry = self._config.telemetry
        if telemetry is not None and telemetry.endpoint:
            self._telemetry_server = TelemetryServer(
                self.metrics_text,
                self.health,
                host=telemetry.host,
                port=telemetry.port,
            )
            self._telemetry_server.start()

    # -- introspection -------------------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self._config

    @property
    def schema(self) -> Schema:
        return self._schema

    @property
    def base_k(self) -> int:
        return self._base_k

    @property
    def plan(self) -> ShardPlan:
        """The static shard map: contiguous Hilbert-key ranges."""
        return self._plan

    @property
    def shard_count(self) -> int:
        return len(self._shards)

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def cache(self) -> ReleaseCache:
        return self._cache

    @property
    def dead_shards(self) -> list[int]:
        """Indices of shards whose workers have failed."""
        return [handle.index for handle in self._shards if handle.dead]

    def worker_pids(self) -> list[int]:
        """The shard workers' process ids (the fault suite kills one)."""
        return [handle.process.pid for handle in self._shards]

    def __len__(self) -> int:
        return sum(self._scatter("len", ()))  # type: ignore[arg-type]

    def shard_journals(self) -> list[tuple[tuple, ...]]:
        """Every shard's applied-write journal (``journal=True`` shards).

        Concatenating these replays — each onto a fresh engine for its
        shard — reproduces any cluster release bit for bit; the
        differential suite asserts exactly that.
        """
        return list(self._scatter("journal", ()))

    @property
    def telemetry_address(self) -> tuple[str, int] | None:
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.address

    @property
    def telemetry_url(self) -> str | None:
        if self._telemetry_server is None:
            return None
        return self._telemetry_server.url

    # -- routing -------------------------------------------------------------

    def shard_of(self, point: Sequence[float]) -> int:
        """Which shard owns a quasi-identifier point."""
        return self._plan.shard_of(self._plan.key_of(point))

    def _handle_for(self, point: Sequence[float]) -> _ShardHandle:
        return self._shards[self.shard_of(point)]

    # -- write path ----------------------------------------------------------

    def submit_insert(
        self, record: Record, timeout: float | None = None
    ) -> "Future[object]":
        """Queue one insert on the shard owning the record's key."""
        self._assert_open()
        if OBS.enabled:
            OBS.count("cluster.routed_inserts")
            OBS.count("cluster.routed_records")
        return self._handle_for(record.point).submit(
            "insert_batch", ((record,),), timeout
        )

    def submit_insert_batch(
        self, records: "Table | Iterable[Record]", timeout: float | None = None
    ) -> "Future[object]":
        """Partition a batch by shard; the future sums the consumed counts."""
        self._assert_open()
        stream = records.records if isinstance(records, Table) else tuple(records)
        buckets: dict[int, list[Record]] = {}
        for record in stream:
            buckets.setdefault(self.shard_of(record.point), []).append(record)
        if OBS.enabled:
            OBS.count("cluster.routed_inserts")
            OBS.count("cluster.routed_records", len(stream))
        if not buckets:
            done: "Future[object]" = Future()
            done.set_result(0)
            return done
        futures = [
            self._shards[index].submit(
                "insert_batch", (tuple(members),), timeout
            )
            for index, members in sorted(buckets.items())
        ]
        return _combine(futures, lambda values: sum(values))  # type: ignore[arg-type]

    def submit_delete(
        self, rid: int, point: Sequence[float], timeout: float | None = None
    ) -> "Future[object]":
        self._assert_open()
        if OBS.enabled:
            OBS.count("cluster.routed_deletes")
        return self._handle_for(point).submit(
            "delete", (rid, tuple(point)), timeout
        )

    def submit_update(
        self,
        rid: int,
        old_point: Sequence[float],
        record: Record,
        timeout: float | None = None,
    ) -> "Future[object]":
        """Queue an update; a cross-shard move is a delete + insert chain.

        When the old and new points land on different shards there is no
        single owner to run the move, so the router deletes on the old
        owner and — once that acknowledgment arrives — inserts on the new
        one.  The combined future resolves to the replaced record (the
        single-service contract) only after both halves are applied.
        """
        self._assert_open()
        if OBS.enabled:
            OBS.count("cluster.routed_updates")
        old_shard = self.shard_of(old_point)
        new_shard = self.shard_of(record.point)
        if old_shard == new_shard:
            return self._shards[old_shard].submit(
                "update", (rid, tuple(old_point), record), timeout
            )
        if OBS.enabled:
            OBS.count("cluster.cross_shard_updates")
        combined: "Future[object]" = Future()
        delete_future = self._shards[old_shard].submit(
            "delete", (rid, tuple(old_point)), timeout
        )

        def _after_delete(done: "Future[object]") -> None:
            error = done.exception()
            if error is not None:
                combined.set_exception(error)
                return
            removed = done.result()
            try:
                insert_future = self._shards[new_shard].submit(
                    "insert_batch", ((record,),)
                )
            except BaseException as submit_error:
                combined.set_exception(submit_error)
                return
            insert_future.add_done_callback(
                lambda f: combined.set_exception(f.exception())  # type: ignore[arg-type]
                if f.exception() is not None
                else combined.set_result(removed)
            )

        delete_future.add_done_callback(_after_delete)
        return combined

    # -- synchronous conveniences (submit + result) --------------------------

    def insert(self, record: Record) -> None:
        self.submit_insert(record).result()

    def insert_batch(self, records: "Table | Iterable[Record]") -> int:
        return self.submit_insert_batch(records).result()  # type: ignore[return-value]

    def delete(self, rid: int, point: Sequence[float]) -> Record:
        return self.submit_delete(rid, point).result()  # type: ignore[return-value]

    def update(
        self, rid: int, old_point: Sequence[float], record: Record
    ) -> Record:
        return self.submit_update(rid, old_point, record).result()  # type: ignore[return-value]

    def barrier(self, timeout: float | None = None) -> int:
        """Wait until every previously acknowledged submit is applied.

        Shard conversations are strict request/reply, so a barrier is a
        scatter of per-shard barriers; returns the aggregated epoch.
        """
        self._assert_open()
        epochs = self._scatter("barrier", (), timeout=timeout)
        return self._fold_epochs(epochs)

    def load(self, source: "Table | Iterable[Record] | str | Path") -> int:
        """Bulk ingestion: route the records and wait for every shard.

        Accepts a table, a record stream, or a binary record-file path
        (read streaming, routed in batches).  Returns the total consumed.
        """
        self._assert_open()
        if isinstance(source, (str, Path)):
            from repro.dataset.io import RecordFileReader

            stream: Iterable[Record] = RecordFileReader(str(source)).iter_records(
                8_192
            )
            return self.submit_insert_batch(tuple(stream)).result()  # type: ignore[return-value]
        return self.submit_insert_batch(source).result()  # type: ignore[return-value]

    # -- read path -----------------------------------------------------------

    def release(
        self,
        k: int,
        *,
        compacted: bool = True,
        constraint: Constraint | None = None,
        strategy: str = "hilbert",
    ) -> ReleaseSnapshot:
        """Serve an immutable cluster-wide k-anonymous release snapshot.

        Scatter-gather: every shard ships its records in global
        ``(key, rid)`` order, the router stitches the runs across the
        shard seams, audits, and caches the snapshot under the
        aggregated cluster epoch.  Only the order-based ``"hilbert"``
        strategy exists cluster-wide (the leaf-aligned strategies are
        tree-shape-dependent and have no global tree to align to), and
        it carries the single-writer ``"hilbert"`` release's exact
        output — bit-identical digests, by construction.

        Raises :class:`ServiceClosedError` when any shard is down — a
        dead shard's records are unreachable and its epoch unreadable,
        so neither a fresh release nor a cached snapshot's validity can
        be established; serving one anyway could hand back a
        pre-acknowledged-write view.
        """
        self._assert_open()
        if strategy != "hilbert":
            raise ValueError(
                f"the cluster serves the order-based 'hilbert' strategy "
                f"only, not {strategy!r} (leaf-aligned strategies have no "
                "global tree to align to)"
            )
        if constraint is not None:
            raise ValueError(
                "the 'hilbert' strategy does not support per-partition "
                "constraints"
            )
        if not compacted:
            raise ValueError(
                "the 'hilbert' strategy publishes compacted MBRs only; "
                "use compacted=True"
            )
        if k < self._base_k:
            raise ValueError(
                f"requested granularity {k} is below the base k "
                f"{self._base_k} the cluster was built with"
            )
        key: CacheKey = (k, "hilbert", True, None)
        if self._config.cache_releases:
            snapshot = self._cache.get(key, self._live_epoch())
            if snapshot is not None:
                if OBS.enabled:
                    OBS.count("cluster.cache_hits")
                if TRACE.enabled:
                    TRACE.instant("cluster.cache_hit", "cluster", k=k)
                return snapshot
        with self._release_lock:
            epoch = self._live_epoch()
            if self._config.cache_releases:
                snapshot = self._cache.get(key, epoch)
                if snapshot is not None:  # another reader built it just now
                    if OBS.enabled:
                        OBS.count("cluster.cache_hits")
                    return snapshot
            if OBS.enabled:
                OBS.count("cluster.cache_misses")
            started = time.perf_counter()
            with TRACE.span(
                "cluster.release", "cluster", k=k, epoch=epoch
            ):
                runs, epoch = self._collect_runs()
                table, audit = assemble_release(
                    self._schema, runs, k, self._base_k
                )
            if OBS.enabled:
                OBS.observe(
                    "cluster.release_seconds", time.perf_counter() - started
                )
            snapshot = ReleaseSnapshot(
                table=table,
                audit=audit,
                digest=release_digest(table),
                k=k,
                strategy="hilbert",
                compacted=True,
                epoch=epoch,
            )
            if self._config.cache_releases:
                self._cache.put(key, snapshot)
            return snapshot

    def _live_epoch(self) -> int:
        """The cluster epoch, provable: raises when any shard is down.

        A dead shard's epoch is unreadable, so neither a fresh release
        nor a cached snapshot's validity can be established — serving one
        anyway could hand back a pre-acknowledged-write view.  The epoch
        probe itself is what *discovers* a freshly dead worker (its
        broken socket), so the check runs after the probe.
        """
        epoch = self.epoch
        dead = self.dead_shards
        if dead:
            raise ServiceClosedError(
                f"shard(s) {dead} are down; cluster releases are "
                "unavailable until the cluster is rebuilt"
            )
        return epoch

    def _collect_runs(self) -> tuple[list[ShardRun], int]:
        """Scatter ``collect``; gather (epoch, sorted run) per shard."""
        results = self._scatter("collect", ())
        runs: list[ShardRun] = []
        epochs: list[int] = []
        for handle, (epoch, records) in zip(self._shards, results):  # type: ignore[misc]
            handle.last_epoch = max(handle.last_epoch, int(epoch))
            epochs.append(int(epoch))
            runs.append(ShardRun(handle.index, list(records)))
        return runs, sum(epochs)

    # -- query path ----------------------------------------------------------

    def query(
        self,
        queries: "RangeQuery | Sequence[RangeQuery]",
        *,
        k: int,
        kind: str = "count",
        timeout: float | None = None,
    ) -> QueryResult:
        """Scatter-gather §5.4 queries with per-shard index pushdown.

        Each shard holds a pushdown engine over its *slice* of the
        current release (installed lazily, re-installed whenever the
        release digest changes), descends it locally, and the router
        merges the partial answers by elementwise sum.  The merge is
        exact, not approximate: a COUNT is additive over any disjoint
        split of per-partition record mass, and every shard's slice
        carries the partition's *global* box, so intersection verdicts
        agree across shards.  Distinct counts stay exact because exactly
        one shard owns each partition (the owner flag sums to 1).  The
        result is bit-identical to :meth:`AnonymizerService.query
        <repro.serve.service.AnonymizerService.query>` over the same
        release — the cluster differential suite asserts it.

        The whole batch is answered against ONE snapshot, whose epoch and
        digest stamp the result.
        """
        self._assert_open()
        if kind not in QUERY_KINDS:
            raise ValueError(f"unknown query kind {kind!r}; expected {QUERY_KINDS}")
        batch = [queries] if isinstance(queries, RangeQuery) else list(queries)
        with self._query_lock:
            snapshot = self.release(k)
            self._ensure_query_install(k, snapshot, timeout)
            boxes = [(query.box.lows, query.box.highs) for query in batch]
            started = time.perf_counter()
            futures = [
                handle.submit("query", (k, snapshot.digest, kind, boxes), timeout)
                for handle in self._shards
            ]
            deadline = self._config.request_timeout
            replies = [future.result(deadline) for future in futures]
        values = tuple(sum(parts) for parts in zip(*replies)) if batch else ()
        if OBS.enabled:
            OBS.count("cluster.queries")
            OBS.observe("cluster.query_seconds", time.perf_counter() - started)
        return QueryResult(
            kind=kind,
            values=values,
            k=k,
            epoch=snapshot.epoch,
            digest=snapshot.digest,
        )

    def _ensure_query_install(
        self, k: int, snapshot: ReleaseSnapshot, timeout: float | None
    ) -> None:
        """Install per-shard engine slices for this release digest (once).

        Callers hold ``_query_lock``; each shard's dispatcher is FIFO, so
        a later ``query`` op can never overtake its install.
        """
        if self._query_installs.get(k) == snapshot.digest:
            return
        slices = self._shard_slices(snapshot.table)
        futures = []
        for handle in self._shards:
            lows, highs, counts, owned = slices[handle.index]
            futures.append(
                handle.submit(
                    "install_query",
                    (k, snapshot.digest, lows, highs, counts, owned),
                    timeout,
                )
            )
        deadline = self._config.request_timeout
        for future in futures:
            future.result(deadline)
        self._query_installs[k] = snapshot.digest
        if OBS.enabled:
            OBS.count("cluster.query_installs")

    def _shard_slices(
        self, table: AnonymizedTable
    ) -> list[tuple[list, list, list, list]]:
        """Split a release into per-shard ``(lows, highs, counts, owned)``.

        Records route to shards by the same plan that routed the writes,
        so each shard's count is exactly the records it holds of that
        partition; the owner flag goes to the first record's shard (the
        minimal one — records within a partition are consecutive in
        global key order, so their shards are non-decreasing).
        """
        slices: list[tuple[list, list, list, list]] = [
            ([], [], [], []) for _ in self._shards
        ]
        for partition in table.partitions:
            held: dict[int, int] = {}
            owner: int | None = None
            for record in partition.records:
                shard = self.shard_of(record.point)
                if owner is None:
                    owner = shard
                held[shard] = held.get(shard, 0) + 1
            box = partition.box
            for shard, count in held.items():
                lows, highs, counts, owned = slices[shard]
                lows.append(box.lows)
                highs.append(box.highs)
                counts.append(count)
                owned.append(1 if shard == owner else 0)
        return slices

    # -- observability -------------------------------------------------------

    @property
    def epoch(self) -> int:
        """The cluster epoch: the sum of the shards' epochs.

        Each shard's epoch counts its applied write groups, so the sum is
        bumped by every acknowledged cluster mutation — exactly the
        monotonic stamp the release cache needs.  A dead shard
        contributes its last observed epoch (the counter never
        regresses).
        """
        self._assert_open()
        futures: list[tuple[_ShardHandle, "Future[object] | None"]] = []
        for handle in self._shards:
            if handle.dead:
                futures.append((handle, None))
                continue
            try:
                futures.append((handle, handle.submit("epoch", ())))
            except ServiceClosedError:
                futures.append((handle, None))
        total = 0
        for handle, future in futures:
            if future is not None:
                try:
                    handle.last_epoch = max(
                        handle.last_epoch,
                        int(future.result(self._config.request_timeout)),  # type: ignore[arg-type]
                    )
                except ServiceClosedError:
                    pass
            total += handle.last_epoch
        if OBS.enabled:
            OBS.gauge("cluster.epoch", total)
        return total

    def health(self) -> dict[str, object]:
        """The aggregated health document served at ``/healthz``.

        The cluster's ``status`` is the worst shard verdict; a dead shard
        forces ``stalled`` (the cluster cannot release without it, and a
        503 from ``/healthz`` is the honest signal).  Per-shard documents
        ride along under ``"shards"``.
        """
        shard_healths: list[dict[str, object]] = []
        worst = "healthy"
        queue_depth = 0
        inflight = 0
        capacity = 0
        backpressure = 0.0
        heartbeat = 0.0
        cache_totals = {"hits": 0, "misses": 0, "invalidations": 0}
        for handle in self._shards:
            document = self._shard_health(handle)
            shard_healths.append(document)
            status = str(document.get("status", "stalled"))
            if _STATUS_RANK.get(status, 2) > _STATUS_RANK.get(worst, 0):
                worst = status
            queue_depth += int(document.get("queue_depth", 0))  # type: ignore[arg-type]
            inflight += int(document.get("inflight", 0))  # type: ignore[arg-type]
            capacity += int(document.get("queue_capacity", 0))  # type: ignore[arg-type]
            backpressure = max(
                backpressure, float(document.get("backpressure", 0.0))  # type: ignore[arg-type]
            )
            heartbeat = max(
                heartbeat, float(document.get("heartbeat_age_s", 0.0))  # type: ignore[arg-type]
            )
            cache = document.get("cache")
            if isinstance(cache, dict):
                for field in cache_totals:
                    cache_totals[field] += int(cache.get(field, 0))  # type: ignore[arg-type]
        stats = self._cache.stats
        requests = stats.hits + stats.misses
        dead = self.dead_shards
        if dead:
            worst = "stalled"
        if OBS.enabled:
            OBS.gauge("cluster.dead_shards", len(dead))
        return {
            "status": worst if not self._closed else "stalled",
            "epoch": self.epoch if not self._closed else 0,
            "shard_count": len(self._shards),
            "dead_shards": dead,
            "queue_depth": queue_depth,
            "inflight": inflight,
            "queue_capacity": capacity,
            "backpressure": backpressure,
            "heartbeat_age_s": heartbeat,
            "cache": {
                "hits": stats.hits,
                "misses": stats.misses,
                "invalidations": stats.invalidations,
                "hit_ratio": stats.hits / requests if requests else 0.0,
                "entries": len(self._cache),
                "shard_hits": cache_totals["hits"],
                "shard_misses": cache_totals["misses"],
            },
            "shards": shard_healths,
            "closed": self._closed,
        }

    def _shard_health(self, handle: _ShardHandle) -> dict[str, object]:
        if handle.dead or self._closed:
            return {
                "shard": handle.index,
                "status": "stalled",
                "dead": True,
                "reason": handle.dead_reason,
                "epoch": handle.last_epoch,
            }
        try:
            document = dict(
                handle.submit("health", ()).result(self._config.request_timeout)  # type: ignore[arg-type]
            )
        except ServiceClosedError:
            return {
                "shard": handle.index,
                "status": "stalled",
                "dead": True,
                "reason": handle.dead_reason,
                "epoch": handle.last_epoch,
            }
        document["shard"] = handle.index
        document["dead"] = False
        return document

    def metrics_text(self) -> str:
        """One ``/metrics`` exposition: router metrics + shard-labeled rollup.

        The router's own registry snapshot (the ``cluster.*`` family)
        exports unlabeled; every live shard's snapshot exports with a
        ``shard="i"`` label, so the single-service ``serve.*`` counters
        stay comparable shard by shard on one scrape.
        """
        shard_parts: list[tuple[dict[str, str], dict[str, object]]] = []
        for handle in self._shards:
            if handle.dead:
                continue
            try:
                snapshot, health, epoch = handle.submit("metrics", ()).result(  # type: ignore[misc]
                    self._config.request_timeout
                )
            except ServiceClosedError:
                continue
            handle.last_epoch = max(handle.last_epoch, int(epoch))
            labels = {"shard": str(handle.index)}
            merged: dict[str, object] = dict(snapshot or {})
            gauges = dict(merged.get("gauges") or {})  # type: ignore[arg-type]
            gauges["serve.epoch"] = float(epoch)
            gauges["serve.health"] = float(
                HEALTH_CODES.get(str(health.get("status")), 2)
            )
            merged["gauges"] = gauges
            shard_parts.append((labels, merged))
        health = self.health()
        cache: dict[str, object] = health["cache"]  # type: ignore[assignment]
        extra = {
            "cluster.epoch": float(health["epoch"]),  # type: ignore[arg-type]
            "cluster.shards": float(len(self._shards)),
            "cluster.dead_shards": float(len(self.dead_shards)),
            "cluster.backpressure": float(health["backpressure"]),  # type: ignore[arg-type]
            "cluster.cache_hit_ratio": float(cache["hit_ratio"]),  # type: ignore[arg-type]
            "cluster.health": float(HEALTH_CODES[health["status"]]),  # type: ignore[index]
        }
        return prometheus_cluster_text(OBS.snapshot(), shard_parts, extra)

    # -- lifecycle -----------------------------------------------------------

    def close(self) -> None:
        """Close every shard, join the workers, stop telemetry.  Idempotent.

        Writes acknowledged before ``close`` are applied (each worker
        drains its service before exiting); submissions after it raise
        :class:`ServiceClosedError`.
        """
        if self._closed:
            return
        self._closed = True
        if self._telemetry_server is not None:
            self._telemetry_server.stop()
        futures: list[tuple[_ShardHandle, "Future[object] | None"]] = []
        for handle in self._shards:
            if handle.dead:
                futures.append((handle, None))
                continue
            try:
                futures.append((handle, handle.submit("close", ())))
            except ServiceClosedError:
                futures.append((handle, None))
        for handle, future in futures:
            if future is not None:
                try:
                    future.result(self._config.request_timeout)
                except (ServiceClosedError, TimeoutError):
                    pass
            handle.stop_dispatcher()
            handle.dispatcher.join(self._config.request_timeout)
            handle.process.join(self._config.request_timeout)
            if handle.process.is_alive():  # pragma: no cover - wedged worker
                handle.process.terminate()
                handle.process.join(5.0)
            try:
                handle.sock.close()
            except OSError:
                pass

    def __enter__(self) -> "ShardedCluster":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # -- internals -----------------------------------------------------------

    def _assert_open(self) -> None:
        if self._closed:
            raise ServiceClosedError("this cluster has been closed")

    def _scatter(
        self, op: str, args: tuple, timeout: float | None = None
    ) -> list[object]:
        """Send ``op`` to every shard; gather the replies in shard order.

        Raises :class:`ServiceClosedError` when any shard is dead — the
        scatter ops (collect, barrier, journal, len) are exactly the ones
        that need *all* shards to mean anything.
        """
        self._assert_open()
        futures = [handle.submit(op, args, timeout) for handle in self._shards]
        deadline = self._config.request_timeout
        return [future.result(deadline) for future in futures]

    def _fold_epochs(self, epochs: Sequence[object]) -> int:
        total = 0
        for handle, epoch in zip(self._shards, epochs):
            handle.last_epoch = max(handle.last_epoch, int(epoch))  # type: ignore[arg-type]
            total += handle.last_epoch
        return total


def _combine(
    futures: Sequence["Future[object]"],
    fold: Callable[[list[object]], object],
) -> "Future[object]":
    """One future resolving to ``fold(results)`` once every input resolves.

    The first exception wins (the rest are still awaited so late errors
    are not silently dropped — they just cannot un-fail the future).
    """
    combined: "Future[object]" = Future()
    results: list[object] = [None] * len(futures)
    remaining = [len(futures)]
    lock = threading.Lock()

    def _on_done(index: int, done: "Future[object]") -> None:
        error = done.exception()
        if error is not None:
            # set_exception on an already-failed future raises; guard it.
            with lock:
                already = combined.done()
            if not already:
                try:
                    combined.set_exception(error)
                except Exception:
                    pass
            return
        results[index] = done.result()
        with lock:
            remaining[0] -= 1
            finished = remaining[0] == 0
        if finished and not combined.done():
            try:
                combined.set_result(fold(results))
            except Exception:
                pass

    for index, future in enumerate(futures):
        future.add_done_callback(
            lambda done, index=index: _on_done(index, done)
        )
    return combined
