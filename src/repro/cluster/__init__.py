"""Sharded serving: an N-process cluster behind the ServiceProtocol API.

The cluster scales the single-writer serving layer across cores by
splitting the key space into contiguous Hilbert-key ranges (the same
:class:`~repro.parallel.planner.ShardPlan` the parallel bulk loader
uses) and giving each range to a worker process running a full
single-writer stack.  A :class:`~repro.cluster.router.ShardedCluster`
front-end key-routes writes, scatter-gathers releases with cross-seam
k-floor repair, and aggregates epochs, health, and metrics — serving the
same :class:`~repro.serve.protocol.ServiceProtocol` surface as
:class:`~repro.serve.service.AnonymizerService`, with bit-identical
release digests.
"""

from repro.cluster.protocol import (
    EndOfStream,
    FrameError,
    recv_frame,
    send_frame,
)
from repro.cluster.router import ClusterConfig, ShardedCluster
from repro.cluster.seams import assemble_release
from repro.cluster.worker import shard_worker_main

__all__ = [
    "ClusterConfig",
    "EndOfStream",
    "FrameError",
    "ShardedCluster",
    "assemble_release",
    "recv_frame",
    "send_frame",
    "shard_worker_main",
]
