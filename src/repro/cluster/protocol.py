"""Length-prefixed pickle framing — the cluster's wire protocol.

One frame is a 4-byte big-endian length header followed by a pickled
payload.  The router and the shard workers speak strict request/reply
over a stream socket pair: the router's per-shard dispatcher sends one
request frame and blocks (with a bounded timeout) for exactly one reply
frame, and the worker's loop receives one request, applies it, and
replies.  There is no interleaving to recover from, so the framing can
stay this small.

Frames are pickles because both ends are the *same trusted codebase*
(the worker is forked/spawned by the router, the socket pair is
inherited, never bound to a port) — this is process fan-out, not an
open network protocol.  Payload shapes:

* request: ``(seq, op, args)`` — ``op`` a short string, ``args`` a tuple;
* reply:   ``(seq, "ok", value)`` or ``(seq, "err", exception)``.

:class:`EndOfStream` (peer vanished) and :class:`FrameError` (corrupt or
oversized frame) are how a dead or wedged worker surfaces to the router,
which converts them into
:class:`~repro.serve.service.ServiceClosedError` on every affected
future — the fix that guarantees a killed shard can never strand a
client on a hung future.
"""

from __future__ import annotations

import pickle
import socket
import struct

__all__ = [
    "EndOfStream",
    "FrameError",
    "MAX_FRAME_BYTES",
    "recv_frame",
    "send_frame",
]

_HEADER = struct.Struct(">I")

#: Upper bound on one frame's payload; a length beyond this is treated as
#: stream corruption rather than an allocation request.
MAX_FRAME_BYTES = 1 << 30


class FrameError(ConnectionError):
    """The stream produced something that is not a well-formed frame."""


class EndOfStream(FrameError):
    """The peer closed the stream (worker death closes its socket)."""


def send_frame(sock: socket.socket, payload: object) -> None:
    """Pickle ``payload`` and write it as one length-prefixed frame."""
    data = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    if len(data) > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame of {len(data)} bytes exceeds the {MAX_FRAME_BYTES}-byte bound"
        )
    sock.sendall(_HEADER.pack(len(data)) + data)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks: list[bytes] = []
    remaining = count
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise EndOfStream(
                "peer closed the stream mid-frame"
                if chunks or remaining != count
                else "peer closed the stream"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Read one frame and unpickle its payload.

    Raises :class:`EndOfStream` on a cleanly closed peer,
    :class:`FrameError` on a corrupt length, and lets the socket's
    timeout (``socket.timeout`` is :class:`TimeoutError`) propagate — the
    dispatcher's bounded wait.
    """
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise FrameError(
            f"frame header claims {length} bytes, beyond the "
            f"{MAX_FRAME_BYTES}-byte bound — stream is corrupt"
        )
    return pickle.loads(_recv_exact(sock, length))
