"""Scatter-gather release assembly: stitch shard runs, repair the seams.

A cluster release gathers one sorted run per shard — that shard's
records in ``(Hilbert key, rid)`` order — and must publish *exactly*
what a single-writer service holding all the records would publish under
the ``"hilbert"`` strategy.  Three already-proven facts compose into
that guarantee:

1. routing sends every record to the shard owning its key, and shards
   own contiguous ascending key ranges, so concatenating the runs in
   shard order *is* the global ``(key, rid)`` sort;
2. :func:`repro.parallel.engine.stitched_chunks` chunks the runs on the
   global 2k grid with cross-seam boundary repair, producing exactly the
   serial :func:`repro.index.bulk.chunk_with_floor` grouping of that
   concatenation (the ≤2k records straddling each shard seam are
   re-chunked across it, so the k-floor holds globally — SKALD's
   aggregation pass, already differential-tested in ``repro.parallel``);
3. :func:`repro.core.anonymizer.build_compacted_partitions` is the one
   shared publish path, so identical groups become identical partitions
   and therefore identical release digests.

Every assembled release runs through the global
:data:`~repro.obs.AUDITOR` when it is enabled — strict mode gates the
cluster's publish site, shard seams included, exactly as it gates the
single-writer's.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Sequence

from repro.core.anonymizer import build_compacted_partitions
from repro.core.partition import AnonymizedTable
from repro.obs import AUDITOR, OBS, TRACE
from repro.obs.audit import audit_release
from repro.parallel.engine import ShardRun, stitched_chunks

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.dataset.schema import Schema

__all__ = ["assemble_release"]


def assemble_release(
    schema: "Schema",
    runs: Sequence[ShardRun],
    k: int,
    base_k: int,
    use_kernels: bool | None = None,
) -> tuple[AnonymizedTable, dict[str, object]]:
    """Stitch per-shard runs into one audited k-anonymous release.

    Returns ``(table, audit_record)``.  Raises ``ValueError`` when the
    shards hold fewer than ``k`` records in total (no k-anonymous
    grouping exists), matching the serial path.
    """
    with OBS.span("cluster.assemble"), TRACE.span(
        "cluster.assemble", "cluster", k=k, shards=len(runs)
    ):
        groups = list(stitched_chunks(runs, k))
        partitions = build_compacted_partitions(groups, use_kernels)
        if OBS.enabled:
            OBS.count("cluster.releases")
            OBS.count(
                "cluster.release_records",
                sum(len(partition.records) for partition in partitions),
            )
        table = AnonymizedTable(schema, partitions)
        if AUDITOR.enabled:
            AUDITOR.on_release(table, k, base_k=base_k)
            audit = AUDITOR.latest
            assert audit is not None
        else:
            audit = audit_release(table, k, base_k=base_k)
        return table, audit
