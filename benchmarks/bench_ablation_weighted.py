"""Ablation: weighted splitting optimizes the weighted certainty penalty.

Expected shape (§2.4 / Xu et al.): under the zipcode-weighted metric the
weighted tree scores better than the unweighted tree; under the plain
metric it concedes at most a modest amount — the trade is real but cheap.
"""

from conftest import run_figure

from repro.bench.figures import ablation_weighted_certainty

RECORDS = 12_000


def test_ablation_weighted(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: ablation_weighted_certainty(records=RECORDS, k=10)
    )
    scores = {str(row[0]): (row[1], row[2]) for row in table.rows}
    weighted_tree = scores["weighted splits"]
    plain_tree = scores["unweighted splits"]
    # Wins under the weighted metric...
    assert weighted_tree[0] < plain_tree[0]
    # ...while conceding at most 40% under the plain metric.
    assert weighted_tree[1] < 1.4 * plain_tree[1]
