"""Micro-benchmarks: the index-maintenance primitives.

Unlike the figure benches (one-shot experiments), these are true
microbenchmarks — pytest-benchmark runs them for many rounds — tracking
the per-operation costs that make incremental anonymization viable:
single insert, single delete, a range search, a point lookup, and a full
leaf-scan release.  Regressions here silently become regressions in
Figures 7(b) and 11.
"""

import itertools
import random

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.landsend import LandsEndGenerator
from repro.dataset.record import Record
from repro.geometry.box import Box

RECORDS = 10_000
K = 10


@pytest.fixture(scope="module")
def loaded():
    table = LandsEndGenerator(seed=7).generate(RECORDS)
    anonymizer = RTreeAnonymizer(table, base_k=K, leaf_capacity=2 * K - 1)
    anonymizer.bulk_load(table)
    return anonymizer, table


def test_single_insert(benchmark, loaded) -> None:
    anonymizer, _table = loaded
    generator = LandsEndGenerator(seed=8)
    fresh = generator.generate(20_000, first_rid=1_000_000)
    stream = itertools.cycle(fresh.records)
    counter = itertools.count()

    def insert() -> None:
        record = next(stream)
        anonymizer.insert(
            Record(2_000_000 + next(counter), record.point, record.sensitive)
        )

    benchmark(insert)


def test_insert_delete_cycle(benchmark, loaded) -> None:
    anonymizer, _table = loaded
    generator = LandsEndGenerator(seed=9)
    fresh = generator.generate(5_000, first_rid=3_000_000)
    stream = itertools.cycle(fresh.records)

    def churn() -> None:
        record = next(stream)
        anonymizer.insert(record)
        anonymizer.delete(record.rid, record.point)

    benchmark(churn)


def test_range_search(benchmark, loaded) -> None:
    anonymizer, table = loaded
    rng = random.Random(10)
    records = table.records

    def search() -> int:
        first = rng.choice(records).point
        second = rng.choice(records).point
        box = Box(
            tuple(min(a, b) for a, b in zip(first, second)),
            tuple(max(a, b) for a, b in zip(first, second)),
        )
        return len(anonymizer.tree.search(box))

    benchmark(search)


def test_point_lookup(benchmark, loaded) -> None:
    anonymizer, table = loaded
    stream = itertools.cycle(table.records)

    def lookup() -> None:
        anonymizer.tree.locate_leaf(next(stream).point)

    benchmark(lookup)


def test_leafscan_release(benchmark, loaded) -> None:
    anonymizer, _table = loaded
    release = benchmark(lambda: anonymizer.anonymize(2 * K))
    assert release.k_effective >= 2 * K
