"""Figure 7(b): incremental anonymization time per batch (k=10).

Paper shape: per-batch R+-tree insert cost stays roughly flat as the index
grows, while the only option for a non-incremental algorithm —
re-anonymizing everything seen so far — grows with the accumulated size.
"""

from conftest import column, run_figure

from repro.bench.figures import fig7b_incremental_times

BATCHES = 7
BATCH_SIZE = 4_000


def test_fig7b(benchmark) -> None:
    table = run_figure(
        benchmark,
        lambda: fig7b_incremental_times(batches=BATCHES, batch_size=BATCH_SIZE, k=10),
    )
    rtree = column(table, "rtree batch (s)")
    mondrian = column(table, "mondrian reanonymize (s)")

    # Batch cost does not explode with the index size (flat within noise;
    # the first batch includes the initial bulk load).
    later = rtree[1:]
    assert max(later) < 4.0 * min(later)
    # Re-anonymization cost grows with the accumulated table...
    assert mondrian[-1] > 2.0 * mondrian[0]
    # ...and the last batches are cheaper to absorb incrementally than to
    # re-anonymize from scratch.
    assert rtree[-1] < mondrian[-1]
