"""Ablation: the §4 compaction retrofit on a grid file.

The paper motivates compaction with indexes "such as the grid file, that
do not maintain MBRs for their records".  Expected shape: the grid's
region-published release is loose; compaction recovers most of the gap to
the R+-tree's native MBR output, on both certainty and query error.
"""

from conftest import run_figure

from repro.bench.figures import ablation_gridfile

RECORDS = 8_000


def test_ablation_gridfile(benchmark) -> None:
    table = run_figure(benchmark, lambda: ablation_gridfile(records=RECORDS, k=10))
    certainty = {str(row[0]): row[1] for row in table.rows}
    error = {str(row[0]): row[2] for row in table.rows}

    # Compaction strictly improves the grid release on both axes...
    assert certainty["grid file + compaction"] < certainty["grid file (regions)"]
    assert error["grid file + compaction"] < error["grid file (regions)"]
    # ...and recovers a large share of the gap to native MBRs.
    assert certainty["grid file + compaction"] < 0.75 * certainty["grid file (regions)"]
    # The R+-tree's native-MBR output remains the best of the three.
    assert certainty["rtree (native MBRs)"] <= certainty["grid file + compaction"]
