"""Shared helpers for the benchmark suite.

Every benchmark runs a figure driver exactly once (``rounds=1``) — the
drivers are experiments with internal timing columns, not microbenchmarks —
then prints the paper-style table and asserts the *shape* the paper reports
(who wins, monotonicity, rough factors).  Absolute numbers are recorded by
pytest-benchmark for run-to-run comparison.
"""

from __future__ import annotations

from typing import Callable

from repro.bench.runner import BenchTable


def run_figure(benchmark, driver: Callable[[], BenchTable]) -> BenchTable:
    """Execute a figure driver once under the benchmark fixture and print it."""
    result = benchmark.pedantic(driver, rounds=1, iterations=1)
    print()
    result.show()
    return result


def column(table: BenchTable, name: str) -> list:
    """Extract one column of a bench table by header name."""
    index = list(table.headers).index(name)
    return [row[index] for row in table.rows]
