"""Shared helpers for the benchmark suite.

Every benchmark runs a figure driver exactly once (``rounds=1``) — the
drivers are experiments with internal timing columns, not microbenchmarks —
then prints the paper-style table and asserts the *shape* the paper reports
(who wins, monotonicity, rough factors).  Absolute numbers are recorded by
pytest-benchmark for run-to-run comparison.

Profiling: set ``REPRO_PROFILE=<directory>`` to run every figure with the
:mod:`repro.obs` instrumentation enabled and write one machine-readable
JSON snapshot per benchmark into the directory (named after the test).
Each snapshot carries the full default metric schema — split counts,
buffer flush counts, page read/write counters, span timings — so any two
runs of the same benchmark are directly diffable::

    REPRO_PROFILE=profiles PYTHONPATH=src:benchmarks \
        python -m pytest benchmarks/bench_fig7a_bulk_times.py -q

Tracing: set ``REPRO_TRACE=<directory>`` to additionally record structured
trace events (flush sweeps, splits, page I/O, releases) and write one
Chrome-trace JSON per benchmark — load it in ``chrome://tracing`` or
Perfetto to see where a slow figure actually spent its time.

Without the variables the instrumentation stays disabled and the hot paths
pay only their one-boolean-per-hook guard.
"""

from __future__ import annotations

import json
import os
import re
from pathlib import Path
from typing import Callable

from repro import obs
from repro.bench.runner import BenchTable

#: Directory for per-benchmark metric snapshots; falsy disables profiling.
PROFILE_DIR = os.environ.get("REPRO_PROFILE", "")

#: Directory for per-benchmark Chrome traces; falsy disables tracing.
TRACE_DIR = os.environ.get("REPRO_TRACE", "")


def _artifact_path(directory: str, suffix: str) -> Path:
    """One file per currently-running test, named after the test."""
    current = os.environ.get("PYTEST_CURRENT_TEST", "benchmark")
    # "benchmarks/bench_x.py::test_y (call)" -> "bench_x_test_y"
    current = current.split(" ")[0].replace(".py", "")
    name = re.sub(r"[^A-Za-z0-9_.-]+", "_", current).strip("_")
    return Path(directory) / f"{name}{suffix}"


def _snapshot_path(directory: str) -> Path:
    return _artifact_path(directory, ".json")


def run_figure(benchmark, driver: Callable[[], BenchTable]) -> BenchTable:
    """Execute a figure driver once under the benchmark fixture and print it.

    With ``REPRO_PROFILE`` set, the driver runs instrumented and its metric
    snapshot is written next to the benchmark results; with ``REPRO_TRACE``
    set, a Chrome-trace JSON of the run is written as well.
    """
    if PROFILE_DIR:
        obs.enable()
    if TRACE_DIR:
        obs.TRACE.enable()
    try:
        result = benchmark.pedantic(driver, rounds=1, iterations=1)
    finally:
        if PROFILE_DIR:
            obs.disable()
        if TRACE_DIR:
            obs.TRACE.disable()
    print()
    result.show()
    if PROFILE_DIR:
        path = _snapshot_path(PROFILE_DIR)
        path.parent.mkdir(parents=True, exist_ok=True)
        snapshot = obs.snapshot(label=path.stem)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
        print(f"[repro.obs] metrics snapshot: {path}")
    if TRACE_DIR:
        path = _artifact_path(TRACE_DIR, ".trace.json")
        path.parent.mkdir(parents=True, exist_ok=True)
        obs.TRACE.export_chrome(path)
        print(f"[repro.obs] chrome trace: {path}")
    return result


def column(table: BenchTable, name: str) -> list:
    """Extract one column of a bench table by header name."""
    index = list(table.headers).index(name)
    return [row[index] for row in table.rows]
