"""Extension bench: multi-granular releases and the intersection attack (§3).

Expected shape: per-release generation cost is a leaf scan (flat-ish in the
granularity), quality degrades gracefully with k1, and the attack over the
full set of releases never pushes a record's candidate set below base k.
"""

from conftest import run_figure

from repro.bench.figures import multigranular_report

RECORDS = 12_000
BASE_K = 5
GRANULARITIES = (5, 10, 25, 50)


def test_multigranular(benchmark) -> None:
    table = run_figure(
        benchmark,
        lambda: multigranular_report(
            records=RECORDS, base_k=BASE_K, granularities=GRANULARITIES
        ),
    )
    scan_rows = [row for row in table.rows if isinstance(row[0], int)]
    attack_rows = [row for row in table.rows if str(row[0]).startswith("attack")]
    assert len(scan_rows) == len(GRANULARITIES)
    assert len(attack_rows) == 1

    # Lemma 1 in practice: the adversary holding every release still faces
    # at least base-k candidates per record.
    assert attack_rows[0][1] >= BASE_K
    # Scans stay cheap at every granularity (well under a second here).
    assert all(row[1] < 2.0 for row in scan_rows)
    # Coarser releases -> fewer partitions.
    partitions = [row[2] for row in scan_rows]
    assert partitions == sorted(partitions, reverse=True)
