"""Ablation: three index families as anonymization substrates (§6).

Expected shape on clustered data: the R+-tree's data-aware splits beat the
quadtree's data-oblivious midpoints and the grid file's scale boundaries
on certainty; all three releases audit k-anonymous by construction.
"""

from conftest import run_figure

from repro.bench.figures import ablation_index_families

RECORDS = 8_000


def test_ablation_indexes(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: ablation_index_families(records=RECORDS, k=10)
    )
    certainty = {str(row[0]): row[2] for row in table.rows}
    assert certainty["rtree"] < certainty["quadtree (midpoints)"]
    assert certainty["rtree"] < certainty["grid file (compacted)"]
