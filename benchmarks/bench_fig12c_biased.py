"""Figure 12(c): zipcode-biased vs unbiased R+-tree on a zipcode workload.

Paper shape: "by favoring one attribute, we were able to achieve
significantly better query results than the index that did not account for
the query workload" — at every anonymity level.
"""

from conftest import column, run_figure

from repro.bench.figures import fig12c_biased

RECORDS = 12_000
KS = (5, 10, 25, 50)
QUERIES = 500


def test_fig12c(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: fig12c_biased(records=RECORDS, ks=KS, queries=QUERIES)
    )
    unbiased = column(table, "unbiased rtree")
    biased = column(table, "biased rtree")
    for u, b in zip(unbiased, biased):
        # At least the paper's ~2x accuracy factor, at every k.
        assert b < 0.5 * u
