"""Ablation: split policies (§2.4 and DESIGN.md design choices).

Expected shape: the NCP-driven policies (min-margin, exhaustive) beat the
Mondrian-like widest-dimension midpoint heuristic on certainty; the
exhaustive search is at least as good as the top-3-axes default; the
zipcode-weighted policy trades general quality for its target attribute.
"""

from conftest import run_figure

from repro.bench.figures import ablation_split

RECORDS = 12_000


def test_ablation_split(benchmark) -> None:
    table = run_figure(benchmark, lambda: ablation_split(records=RECORDS, k=10))
    certainty = {str(row[0]): row[2] for row in table.rows}
    build = {str(row[0]): row[1] for row in table.rows}

    assert certainty["min-margin (top-3 axes)"] < certainty["midpoint (Mondrian-like)"]
    assert certainty["exhaustive"] <= 1.02 * certainty["min-margin (all axes)"]
    # Axis preselection costs little quality...
    assert certainty["min-margin (top-3 axes)"] < 1.10 * certainty["min-margin (all axes)"]
    # ...and buys measurable build time.
    assert build["min-margin (top-3 axes)"] < build["min-margin (all axes)"]
