"""Ablation: whole-partition COUNT vs the §2.3 uniform-density estimator.

Expected shape: the uniform estimator's absolute error is far below the
whole-partition COUNT's in the narrow-selectivity bands (where counting
every intersecting partition wholesale overcounts massively), and the gap
closes as queries widen.
"""

import math

from conftest import run_figure

from repro.bench.figures import ablation_estimator

RECORDS = 12_000


def test_ablation_estimator(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: ablation_estimator(records=RECORDS, k=10, queries=400)
    )
    rows = [row for row in table.rows if row[1] > 0]
    assert len(rows) >= 3
    whole = [row[2] for row in rows]
    estimate = [row[3] for row in rows]
    assert not any(math.isnan(v) for v in whole + estimate)
    # The estimator wins decisively on narrow queries...
    assert estimate[0] < 0.5 * whole[0]
    # ...and the absolute gap shrinks toward broad queries.
    assert (whole[-1] - estimate[-1]) < 0.5 * (whole[0] - estimate[0])
