"""Table 1: the system-configuration report (documentation, not a claim)."""

from conftest import run_figure

from repro.bench.runner import environment_report


def test_table1_environment(benchmark) -> None:
    table = run_figure(benchmark, environment_report)
    categories = {str(row[0]) for row in table.rows}
    assert {"Interpreter", "Operating system", "CPU"} <= categories
