"""Figure 11: incremental quality does not decay (k=10).

Paper shape: the incrementally maintained R+-tree anonymization stays at
least as good as re-anonymizing the accumulated data from scratch, batch
after batch, on all three metrics.  (The Mondrian column is compacted —
the strongest version of the re-anonymization baseline.)
"""

from conftest import run_figure

from repro.bench.figures import fig11_incremental_quality

BATCHES = 5
BATCH_SIZE = 4_000


def test_fig11(benchmark) -> None:
    table = run_figure(
        benchmark,
        lambda: fig11_incremental_quality(batches=BATCHES, batch_size=BATCH_SIZE, k=10),
    )
    by_key: dict[tuple[int, str], tuple] = {}
    for batch, _records, algorithm, dm, cm, kl in table.rows:
        by_key[(batch, algorithm)] = (dm, cm, kl)

    for batch in range(1, BATCHES + 1):
        incremental = by_key[(batch, "rtree incremental")]
        reanonymized = by_key[(batch, "mondrian reanonymized")]
        # Certainty and KL stay at least as good as from-scratch (small
        # slack for noise); discernibility comparable.
        assert incremental[1] < 1.05 * reanonymized[1]
        assert incremental[2] < 1.05 * reanonymized[2]
        assert incremental[0] < 1.2 * reanonymized[0]
