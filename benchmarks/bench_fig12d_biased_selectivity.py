"""Figure 12(d): biased vs unbiased error across selectivity bands (k=10).

Paper shape: the biased index wins across selectivities, but "the
differences diminish as we increase the selectivity on the original data
set".
"""

import math

from conftest import run_figure

from repro.bench.figures import fig12d_biased_selectivity

RECORDS = 12_000
QUERIES = 600


def test_fig12d(benchmark) -> None:
    table = run_figure(
        benchmark,
        lambda: fig12d_biased_selectivity(records=RECORDS, k=10, queries=QUERIES),
    )
    rows = [row for row in table.rows if row[1] > 0]
    assert len(rows) >= 3
    unbiased = [row[2] for row in rows]
    biased = [row[3] for row in rows]
    assert not any(math.isnan(value) for value in unbiased + biased)

    # The biased index wins in every populated band...
    for u, b in zip(unbiased, biased):
        assert b <= u
    # ...and the absolute gap shrinks toward broad queries.
    assert (unbiased[-1] - biased[-1]) < 0.5 * (unbiased[0] - biased[0])
