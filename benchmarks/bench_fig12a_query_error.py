"""Figure 12(a): average COUNT-query error vs k.

Paper shape: error grows with k for everyone (coarser partitions); the
R+-tree is at least as accurate as compacted Mondrian, and uncompacted
Mondrian is far behind.
"""

from conftest import column, run_figure

from repro.bench.figures import fig12a_query_error

RECORDS = 12_000
KS = (5, 10, 25, 50)
QUERIES = 500


def test_fig12a(benchmark) -> None:
    table = run_figure(
        benchmark,
        lambda: fig12a_query_error(records=RECORDS, ks=KS, queries=QUERIES),
    )
    rtree = column(table, "rtree")
    compacted = column(table, "mondrian compacted")
    uncompacted = column(table, "mondrian uncompacted")

    for r, c, u in zip(rtree, compacted, uncompacted):
        # Compaction buys a large factor over raw Mondrian regions.
        assert u > 1.5 * c
        # The R+-tree sits at parity with compacted Mondrian.  (The paper
        # reports it slightly ahead; across our scales and seeds the two
        # trade places within ~15% — see EXPERIMENTS.md.)
        assert r < 1.25 * c
    # Coarser anonymity -> larger errors.
    assert rtree[-1] > rtree[0]
    assert compacted[-1] > compacted[0]
