"""Figure 12(b): query error vs selectivity (k=10).

Paper shape: "the larger the cardinality of the query result, the smaller
the error", and the gaps between anonymization algorithms shrink as
selectivity grows — even the benefit of compaction fades for broad queries.
"""

import math

from conftest import run_figure

from repro.bench.figures import fig12b_selectivity

RECORDS = 12_000
QUERIES = 600


def test_fig12b(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: fig12b_selectivity(records=RECORDS, k=10, queries=QUERIES)
    )
    rows = [row for row in table.rows if row[1] > 0]  # non-empty bands
    assert len(rows) >= 3
    rtree = [row[2] for row in rows]
    compacted = [row[3] for row in rows]
    uncompacted = [row[4] for row in rows]
    assert not any(math.isnan(value) for value in rtree + compacted + uncompacted)

    # Errors fall as selectivity grows (compare the narrowest and the
    # broadest populated bands).
    assert rtree[0] > rtree[-1]
    assert uncompacted[0] > uncompacted[-1]
    # Gaps diminish: the compaction advantage in the broadest band is a
    # fraction of its advantage in the narrowest band.
    narrow_gap = uncompacted[0] - compacted[0]
    broad_gap = uncompacted[-1] - compacted[-1]
    assert broad_gap < 0.5 * narrow_gap
