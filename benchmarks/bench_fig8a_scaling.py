"""Figure 8(a): anonymization time vs data set size (Agrawal generator).

Paper shape: near-linear scaling — the per-record cost stays within a small
band as the input grows (the paper swept 1M..100M on disk; we sweep a
laptop-scaled range through the identical code path).
"""

from conftest import column, run_figure

from repro.bench.figures import fig8a_scaling

SIZES = (5_000, 10_000, 20_000, 40_000)


def test_fig8a(benchmark) -> None:
    table = run_figure(benchmark, lambda: fig8a_scaling(sizes=SIZES, k=10))
    per_record = column(table, "us/record")
    times = column(table, "time (s)")

    assert times == sorted(times)  # bigger inputs take longer
    # Near-linear: per-record cost varies by less than 2.5x across an
    # 8x size range.
    assert max(per_record) < 2.5 * min(per_record)
