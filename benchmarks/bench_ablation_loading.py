"""Ablation: tuple loading vs buffer-tree loading (§2.1).

Expected shape: under a small memory budget the buffer tree's deferred,
batched descents cut counted page I/O by an order of magnitude relative to
one-record-at-a-time insertion — the amortization §2.1 describes.  (Wall
time in RAM is not asserted: with everything cached, per-record Python
overhead dominates and the two loaders are comparable; the I/O column is
what governed the paper's disk-resident runs.)
"""

from conftest import run_figure

from repro.bench.figures import ablation_loading

RECORDS = 15_000


def test_ablation_loading(benchmark) -> None:
    table = run_figure(benchmark, lambda: ablation_loading(records=RECORDS, k=10))
    io = {str(row[0]): row[2] for row in table.rows}
    tuple_io = io["tuple loading (one by one)"]
    buffer_io = io["buffer-tree loading"]
    assert buffer_io < 0.25 * tuple_io  # at least 4x; typically >10x
