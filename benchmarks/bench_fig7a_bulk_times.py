"""Figure 7(a): bulk anonymization time, R+-tree vs top-down Mondrian.

Paper shape: the R+-tree per-k line is flat (one base-k bulk load serves
every granularity through the leaf scan), while Mondrian re-runs per k with
cost falling as k grows.  Under the paper's protocol the build amortizes
across the sweep, putting the flat line below the Mondrian curve in
aggregate.  See EXPERIMENTS.md for the absolute-ratio discussion (our
Mondrian baseline is far more optimized than the 2007 Java prototype).
"""

from conftest import column, run_figure

from repro.bench.figures import fig7a_bulk_times

RECORDS = 15_000
KS = (5, 10, 25, 50, 100, 250)


def test_fig7a(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: fig7a_bulk_times(records=RECORDS, ks=KS)
    )
    scans = column(table, "rtree scan (s)")
    per_k = column(table, "rtree per-k (s)")
    mondrian = column(table, "mondrian (s)")
    builds = column(table, "rtree build (s)")

    # The R+-tree cost is flat in k: the scan varies little and the build
    # is a constant shared by every k.
    assert max(per_k) < 2.0 * min(per_k)
    # The *marginal* cost of another granularity is a leaf scan — a small
    # fraction of re-running the top-down algorithm.
    average_scan = sum(scans) / len(scans)
    average_mondrian = sum(mondrian) / len(mondrian)
    assert average_scan < 0.5 * average_mondrian
    # Across the sweep, one build + all scans is at worst near-parity with
    # re-running Mondrian per k (and pulls ahead as more granularities are
    # requested); the absolute build-time inversion vs the paper is
    # discussed in EXPERIMENTS.md.
    assert builds[0] + sum(scans) < 1.5 * sum(mondrian)
    # Mondrian gets cheaper as k grows (fewer recursion levels).
    assert mondrian[0] > mondrian[-1]
