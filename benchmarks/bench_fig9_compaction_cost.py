"""Figure 9: compaction cost as a percentage of anonymization time (k=10).

Paper shape: "the times for compaction are small relative to the
anonymization times" — a single pass per partition, a few percent of the
Mondrian run it post-processes, across a widening sample sweep.
"""

from conftest import column, run_figure

from repro.bench.figures import fig9_compaction_cost

SAMPLES = (4_000, 8_000, 16_000, 24_000, 36_000)


def test_fig9(benchmark) -> None:
    table = run_figure(
        benchmark, lambda: fig9_compaction_cost(sample_sizes=SAMPLES, k=10)
    )
    shares = sorted(column(table, "compaction %"))
    # Median-based: single-sample GC/scheduler spikes must not flip the
    # verdict on a shared machine.
    median = shares[len(shares) // 2]
    assert median < 17.0
    assert all(share < 30.0 for share in shares)
