"""Figure 10: anonymization quality (discernibility, certainty, KL) vs k.

Paper shapes:

* (a) discernibility: identical for compacted/uncompacted Mondrian (the
  metric is blind to box extents), R+-tree comparable;
* (b) certainty: R+-tree best; compaction closes most of Mondrian's gap;
* (c) KL divergence: same ordering as certainty.
"""

from collections import defaultdict

from conftest import run_figure

from repro.bench.figures import fig10_quality

RECORDS = 12_000
KS = (5, 10, 25, 50)


def test_fig10(benchmark) -> None:
    table = run_figure(benchmark, lambda: fig10_quality(records=RECORDS, ks=KS))
    by_algorithm: dict[tuple[int, str], tuple] = {}
    for k, algorithm, dm, cm, kl, _parts in table.rows:
        by_algorithm[(k, algorithm)] = (dm, cm, kl)

    for k in KS:
        rtree = by_algorithm[(k, "rtree")]
        mondrian = by_algorithm[(k, "mondrian")]
        compacted = by_algorithm[(k, "mondrian+compact")]
        # (a) compaction is invisible to discernibility.
        assert mondrian[0] == compacted[0]
        # R+-tree discernibility is comparable (within 15%).
        assert rtree[0] < 1.15 * mondrian[0]
        # (b) certainty: rtree < compacted << uncompacted.
        assert rtree[1] < compacted[1] < mondrian[1]
        assert mondrian[1] > 3.0 * compacted[1]  # compaction is dramatic
        # (c) KL divergence: same ordering.
        assert rtree[2] < compacted[2] < mondrian[2]
