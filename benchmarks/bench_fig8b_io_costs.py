"""Figure 8(b): explicit I/O count vs memory budget.

Paper shape: "I/O costs increase by less than a factor of two when the
allotted memory is reduced by a factor of two" — the buffer tree's page
traffic is concentrated on the hot upper levels, which survive in a
smaller pool.
"""

from conftest import column, run_figure

from repro.bench.figures import fig8b_io_costs

RECORDS = 30_000


def test_fig8b(benchmark) -> None:
    table = run_figure(benchmark, lambda: fig8b_io_costs(records=RECORDS, k=10))
    totals = column(table, "total I/O")

    # Budgets halve row to row: I/O grows monotonically...
    assert totals == sorted(totals)
    # ...but by less than 2x per halving.
    for smaller_memory, larger_memory in zip(totals[1:], totals[:-1]):
        assert smaller_memory < 2.0 * larger_memory
