"""Ablation: buffer-tree vs sort-based bulk loading (§2.1).

The paper tried space-filling-curve loading and found the buffer tree
better on higher-dimensional data.  Expected shape on the 9-attribute
Agrawal workload: the buffer tree's partitions carry a (much) lower
certainty penalty than Hilbert-run chunking; STR sits between.
"""

from conftest import run_figure

from repro.bench.figures import ablation_bulkload

RECORDS = 12_000


def test_ablation_bulkload(benchmark) -> None:
    table = run_figure(benchmark, lambda: ablation_bulkload(records=RECORDS, k=10))
    certainty = {str(row[0]): row[2] for row in table.rows}
    assert certainty["buffer-tree"] < certainty["hilbert sort"]
    assert certainty["buffer-tree"] < certainty["STR"]
