"""Regression tests: single-op mutations must not diverge from the WAL.

The anonymizer applies a mutation to the in-memory tree and then logs it
to the write-ahead log.  If the log append raises (disk full, I/O error),
the tree mutation must be rolled back — otherwise the acknowledged
in-memory state and the durable log disagree, and a recovery from the
prior checkpoint silently replays *without* the operation (the data-loss
scenario these tests inject).
"""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, recover
from tests.conftest import random_records


class FaultyWAL:
    """A write-ahead log wrapper whose appends fail while armed."""

    def __init__(self, inner) -> None:  # noqa: ANN001
        self._inner = inner
        self.armed = False

    def _maybe_fail(self) -> None:
        if self.armed:
            raise OSError("injected WAL append failure (disk full)")

    def append_insert(self, record, **kwargs):  # noqa: ANN001, ANN003
        self._maybe_fail()
        return self._inner.append_insert(record, **kwargs)

    def append_delete(self, rid, point):  # noqa: ANN001
        self._maybe_fail()
        return self._inner.append_delete(rid, point)

    def append_update(self, rid, old_point, record):  # noqa: ANN001
        self._maybe_fail()
        return self._inner.append_update(rid, old_point, record)

    def __getattr__(self, name: str):  # noqa: ANN204 - delegate the rest
        return getattr(self._inner, name)


@pytest.fixture
def faulty_durable(tmp_path, schema3):
    """A checkpointed durable anonymizer whose WAL can be armed to fail."""
    records = random_records(100, seed=31)
    table = Table(schema3, tuple(records))
    anonymizer = RTreeAnonymizer(
        table, base_k=5, durability=DurabilityConfig(tmp_path / "state")
    )
    anonymizer.bulk_load(table)
    anonymizer.checkpoint()
    manager = anonymizer.durability
    assert manager is not None
    wal = FaultyWAL(manager._wal)
    manager._wal = wal
    return anonymizer, wal, records


def _live_vs_recovered_digests(anonymizer, tmp_path, k: int = 10):
    """The live release digest and a cold recovery's, side by side."""
    live = release_digest(anonymizer.anonymize(k))
    anonymizer.close()
    outcome = recover(tmp_path / "state")
    recovered = release_digest(outcome.anonymizer.anonymize(k))
    outcome.anonymizer.close()
    return live, recovered


def test_insert_rolls_back_when_logging_fails(faulty_durable, tmp_path):
    anonymizer, wal, _records = faulty_durable
    wal.armed = True
    newcomer = Record(500, (1.0, 2.0, 3.0), ("flu",))
    with pytest.raises(OSError, match="injected"):
        anonymizer.insert(newcomer)
    wal.armed = False
    # The tree must not hold what the WAL never saw.
    assert len(anonymizer) == 100
    assert anonymizer.tree.locate_leaf(newcomer.point) is not None
    rids = {r.rid for leaf in anonymizer.tree.leaves() for r in leaf.records}
    assert 500 not in rids
    live, recovered = _live_vs_recovered_digests(anonymizer, tmp_path)
    assert live == recovered


def test_delete_rolls_back_when_logging_fails(faulty_durable, tmp_path):
    anonymizer, wal, records = faulty_durable
    victim = records[17]
    wal.armed = True
    with pytest.raises(OSError, match="injected"):
        anonymizer.delete(victim.rid, victim.point)
    wal.armed = False
    assert len(anonymizer) == 100
    rids = {r.rid for leaf in anonymizer.tree.leaves() for r in leaf.records}
    assert victim.rid in rids
    live, recovered = _live_vs_recovered_digests(anonymizer, tmp_path)
    assert live == recovered


def test_update_rolls_back_when_logging_fails(faulty_durable, tmp_path):
    anonymizer, wal, records = faulty_durable
    old = records[23]
    moved = Record(old.rid, (50.0, 50.0, 50.0), old.sensitive)
    wal.armed = True
    with pytest.raises(OSError, match="injected"):
        anonymizer.update(old.rid, old.point, moved)
    wal.armed = False
    assert len(anonymizer) == 100
    # The record is still at its old point, not the new one.
    found = [
        r
        for leaf in anonymizer.tree.leaves()
        for r in leaf.records
        if r.rid == old.rid
    ]
    assert found == [old]
    live, recovered = _live_vs_recovered_digests(anonymizer, tmp_path)
    assert live == recovered


def test_later_checkpoint_cannot_persist_an_unlogged_op(faulty_durable, tmp_path):
    """The issue's exact scenario: failed log, then checkpoint, then crash.

    Without the rollback the checkpoint persists the phantom insert while
    a recovery from the *prior* checkpoint replays without it — two
    durable states for one history.  With the rollback both recoveries
    agree with the live tree.
    """
    anonymizer, wal, _records = faulty_durable
    wal.armed = True
    with pytest.raises(OSError, match="injected"):
        anonymizer.insert(Record(501, (9.0, 9.0, 9.0), ("flu",)))
    wal.armed = False
    anonymizer.insert(Record(502, (8.0, 8.0, 8.0), ("flu",)))
    anonymizer.checkpoint()
    live, recovered = _live_vs_recovered_digests(anonymizer, tmp_path)
    assert live == recovered
