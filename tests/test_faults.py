"""Fault injection: the crash-at-any-LSN property and corruption detection."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, RecoveryError, recover
from repro.durability.faults import (
    CORRUPTION_FAULTS,
    clone_state,
    flip_bit,
    frame_boundaries,
    kill_at_lsn,
    run_fault_grid,
    tear_final_frame,
    truncate_tail,
)
from tests.conftest import random_records


def durable_state(tmp_path, schema3, count: int = 120):
    directory = tmp_path / "state"
    table = Table(schema3, tuple(random_records(count, seed=11)))
    anonymizer = RTreeAnonymizer(
        table, base_k=5, durability=DurabilityConfig(directory)
    )
    anonymizer.bulk_load(table)
    for record in random_records(140, seed=11)[count:]:
        anonymizer.insert(record)
    anonymizer.close()
    return directory, anonymizer


def test_kill_at_lsn_truncates_to_frame_boundary(tmp_path, schema3):
    directory, _ = durable_state(tmp_path, schema3)
    boundaries = frame_boundaries(directory)
    mid_lsn, mid_offset = boundaries[len(boundaries) // 2]
    clone = clone_state(directory, tmp_path / "clone")
    kill_at_lsn(clone, mid_lsn)
    assert (clone / "wal.log").stat().st_size == mid_offset
    result = recover(clone)
    assert result.last_lsn == mid_lsn


def test_kill_at_unknown_lsn_is_rejected(tmp_path, schema3):
    directory, _ = durable_state(tmp_path, schema3)
    with pytest.raises(ValueError, match="not a kill point"):
        kill_at_lsn(directory, 10_000)


def test_every_corruption_fault_raises(tmp_path, schema3):
    directory, _ = durable_state(tmp_path, schema3)
    injectors = {
        "torn-write": tear_final_frame,
        "truncated-tail": lambda d: truncate_tail(d, 5),
        "bit-flip-wal": lambda d: flip_bit(d, target="wal"),
        "bit-flip-snapshot": lambda d: flip_bit(d, target="snapshot"),
    }
    assert set(injectors) == set(CORRUPTION_FAULTS)
    for fault, inject in injectors.items():
        clone = clone_state(directory, tmp_path / f"clone-{fault}")
        inject(clone)
        with pytest.raises(RecoveryError):
            recover(clone)


def test_torn_tail_opt_out_recovers_prefix(tmp_path, schema3):
    directory, _ = durable_state(tmp_path, schema3)
    reference = recover(directory, reattach=False)
    clone = clone_state(directory, tmp_path / "clone")
    tear_final_frame(clone)
    result = recover(clone, allow_torn_tail=True)
    # Exactly the final acknowledged-but-torn op is missing.
    assert result.last_lsn == reference.last_lsn - 1
    assert len(result.anonymizer) == len(reference.anonymizer) - 1


def test_fault_grid_without_checkpoint(tmp_path):
    report = run_fault_grid(tmp_path / "grid", records=24, k=5, seed=7)
    assert report.ok, report.render()
    assert report.kill_points > 20  # start LSN + every frame boundary
    faults = {cell.fault for cell in report.cells}
    assert set(CORRUPTION_FAULTS) <= faults


def test_fault_grid_with_mid_workload_checkpoint(tmp_path):
    report = run_fault_grid(
        tmp_path / "grid", records=24, k=5, seed=7, checkpoint_after_op=0
    )
    assert report.ok, report.render()
    # After the checkpoint the WAL rotates: far fewer live kill points.
    assert 0 < report.kill_points < 24


def test_grid_digest_is_deterministic(tmp_path):
    first = run_fault_grid(tmp_path / "one", records=24, k=5, seed=7)
    second = run_fault_grid(tmp_path / "two", records=24, k=5, seed=7)
    assert first.reference_digest == second.reference_digest


def test_release_digest_differs_across_seeds(tmp_path):
    first = run_fault_grid(tmp_path / "one", records=24, k=5, seed=7)
    second = run_fault_grid(tmp_path / "two", records=24, k=5, seed=8)
    assert first.reference_digest != second.reference_digest
