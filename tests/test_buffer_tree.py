"""The buffer-tree bulk loader: equivalence, batching, I/O accounting."""

from __future__ import annotations

import pytest

from repro.dataset.record import Record
from repro.index.buffer_tree import BufferTreeLoader, buffer_tree_bulk_load
from repro.index.leaf_store import PagedLeafStore
from repro.index.rtree import RPlusTree
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile
from tests.conftest import random_records


def fresh_tree(k: int = 3, **kwargs: object) -> RPlusTree:
    return RPlusTree(dimensions=3, k=k, domain_extents=(100.0,) * 3, **kwargs)  # type: ignore[arg-type]


class TestLoading:
    def test_load_preserves_every_record(self) -> None:
        records = random_records(2_000, seed=1)
        tree = fresh_tree()
        BufferTreeLoader(tree).load(records, charge_input=False)
        tree.check_invariants()
        assert len(tree) == 2_000
        loaded = sorted(r.rid for leaf in tree.leaves() for r in leaf.records)
        assert loaded == list(range(2_000))

    def test_same_partitioning_properties_as_tuple_loading(self) -> None:
        """Both loaders must satisfy the same invariants on the same data;
        the partitionings themselves may differ (different split inputs)."""
        records = random_records(1_500, seed=2)
        buffered = fresh_tree()
        BufferTreeLoader(buffered).load(records, charge_input=False)
        tuple_loaded = fresh_tree()
        tuple_loaded.insert_all(records)
        for tree in (buffered, tuple_loaded):
            tree.check_invariants()
            assert len(tree) == 1_500
            assert all(len(leaf.records) >= 3 for leaf in tree.leaves())

    def test_multiple_batches_accumulate(self) -> None:
        records = random_records(1_200, seed=3)
        tree = fresh_tree()
        loader = BufferTreeLoader(tree)
        for start in range(0, 1_200, 400):
            loader.insert_batch(records[start : start + 400], charge_input=False)
            loader.drain()
            tree.check_invariants()
        assert len(tree) == 1_200

    def test_buffered_records_visible_after_drain_only(self) -> None:
        records = random_records(3_000, seed=4)
        tree = fresh_tree()
        loader = BufferTreeLoader(tree, buffer_pages=8)
        loader.insert_batch(records, charge_input=False)
        in_leaves = len(tree)
        assert in_leaves + loader.buffered_records == 3_000
        loader.drain()
        assert loader.buffered_records == 0
        assert len(tree) == 3_000

    def test_empty_batch_is_noop(self) -> None:
        tree = fresh_tree()
        loader = BufferTreeLoader(tree)
        assert loader.insert_batch([], charge_input=False) == 0
        loader.drain()
        assert len(tree) == 0

    def test_convenience_wrapper(self) -> None:
        tree = buffer_tree_bulk_load(
            random_records(500, seed=5), dimensions=3, k=3,
            domain_extents=(100.0,) * 3,
        )
        tree.check_invariants()
        assert len(tree) == 500

    def test_invalid_buffer_pages(self) -> None:
        with pytest.raises(ValueError):
            BufferTreeLoader(fresh_tree(), buffer_pages=0)

    def test_incremental_after_bulk(self) -> None:
        """The Figure 7(b) pattern: bulk first, then incremental batches."""
        tree = fresh_tree()
        loader = BufferTreeLoader(tree)
        loader.load(random_records(1_000, seed=6), charge_input=False)
        extra = [
            Record(10_000 + r.rid, r.point, r.sensitive)
            for r in random_records(500, seed=7)
        ]
        loader.insert_batch(extra, charge_input=False)
        loader.drain()
        tree.check_invariants()
        assert len(tree) == 1_500


class TestIOAccounting:
    def load_with_memory(self, memory_bytes: int, records: int = 4_000) -> int:
        pagefile: PageFile[Record] = PageFile(page_bytes=512, record_bytes=12)
        pool: BufferPool[Record] = BufferPool(pagefile, memory_bytes)
        tree = RPlusTree(
            dimensions=3,
            k=5,
            domain_extents=(100.0,) * 3,
            leaf_store=PagedLeafStore(pool),
        )
        loader = BufferTreeLoader(tree, pool=pool)
        loader.load(random_records(records, seed=8))
        pool.flush()
        tree.check_invariants()
        assert len(tree) == records
        return pagefile.stats.total

    def test_io_counted(self) -> None:
        assert self.load_with_memory(64 * 512) > 0

    def test_less_memory_more_io(self) -> None:
        plentiful = self.load_with_memory(256 * 512)
        scarce = self.load_with_memory(16 * 512)
        assert scarce > plentiful

    def test_input_charge(self) -> None:
        """charge_input bills one read per B input records."""
        pagefile: PageFile[Record] = PageFile(page_bytes=512, record_bytes=12)
        pool: BufferPool[Record] = BufferPool(pagefile, 512 * 128)
        tree = RPlusTree(dimensions=3, k=5, domain_extents=(100.0,) * 3)
        loader = BufferTreeLoader(tree, pool=pool)
        before = pagefile.stats.reads
        loader.insert_batch(random_records(100, seed=9), charge_input=True)
        items_per_page = 512 // 12
        expected_pages = -(-100 // items_per_page)  # ceil
        assert pagefile.stats.reads >= before + expected_pages
