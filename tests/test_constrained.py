"""Constraint-aware splitting: every leaf satisfies the definition, always."""

from __future__ import annotations

import random

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.index.constrained import ConstrainedSplitPolicy
from repro.index.rtree import RPlusTree
from repro.privacy.ldiversity import AlphaKAnonymity, DistinctLDiversity
from tests.conftest import random_records


def diverse_records(count: int, seed: int) -> list[Record]:
    """Records whose sensitive value correlates with position — the hard
    case for diversity (spatial splits tend to create uniform groups)."""
    rng = random.Random(seed)
    records = []
    for rid in range(count):
        x = rng.randint(0, 100)
        # Sensitive value strongly tied to x, with 15% noise.
        if rng.random() < 0.85:
            diagnosis = "flu" if x <= 50 else "cancer"
        else:
            diagnosis = "cancer" if x <= 50 else "flu"
        records.append(
            Record(rid, (float(x), float(rng.randint(0, 100)), float(rng.randint(0, 100))), (diagnosis,))
        )
    return records


def leaves_satisfy(tree: RPlusTree, constraint) -> bool:
    return all(constraint(leaf.records) for leaf in tree.leaves())


class TestConstrainedSplits:
    def test_all_leaves_diverse_after_bulk_load(self) -> None:
        constraint = DistinctLDiversity(2)
        tree = RPlusTree(
            dimensions=3,
            k=4,
            domain_extents=(100.0,) * 3,
            split_policy=ConstrainedSplitPolicy(constraint),
        )
        for record in diverse_records(600, seed=1):
            tree.insert(record)
        tree.check_invariants()
        assert leaves_satisfy(tree, constraint)

    def test_leaves_stay_diverse_under_incremental_inserts(self) -> None:
        constraint = DistinctLDiversity(2)
        tree = RPlusTree(
            dimensions=3,
            k=4,
            domain_extents=(100.0,) * 3,
            split_policy=ConstrainedSplitPolicy(constraint),
        )
        records = diverse_records(800, seed=2)
        for index, record in enumerate(records):
            tree.insert(record)
            if index % 200 == 199:
                assert leaves_satisfy(tree, constraint)
        tree.check_invariants()

    def test_splits_still_happen_when_constraint_allows(self) -> None:
        """The constraint must veto, not paralyze: with noisy sensitive
        values the tree still fans out into many leaves."""
        constraint = DistinctLDiversity(2)
        tree = RPlusTree(
            dimensions=3,
            k=4,
            domain_extents=(100.0,) * 3,
            split_policy=ConstrainedSplitPolicy(constraint),
        )
        for record in diverse_records(600, seed=3):
            tree.insert(record)
        assert len(tree.leaves()) > 20

    def test_uniform_sensitive_blocks_all_splits(self) -> None:
        constraint = DistinctLDiversity(2)
        tree = RPlusTree(
            dimensions=3,
            k=2,
            domain_extents=(100.0,) * 3,
            split_policy=ConstrainedSplitPolicy(constraint),
        )
        # Every record shares one diagnosis: no split can make two diverse
        # halves... because no half can ever be diverse at all.
        for rid in range(40):
            tree.insert(Record(rid, (float(rid), 0.0, 0.0), ("flu",)))
        assert len(tree.leaves()) == 1

    def test_alpha_k_needs_the_release_stage(self, schema3) -> None:
        """(α,k) is *not* monotone under record additions (new same-value
        records can push a leaf's majority fraction over α), so the split
        gate alone cannot maintain it — the release-time leaf-scan
        constraint is the right enforcement point, exactly as the paper's
        leaf scan composes whole leaves until the definition holds."""
        constraint = AlphaKAnonymity(alpha=0.75, k=8)
        table = Table(schema3, diverse_records(700, seed=4))
        anonymizer = RTreeAnonymizer(table, base_k=4)
        anonymizer.bulk_load(table)
        release = anonymizer.anonymize(8, constraint=constraint)
        assert constraint.check_table(release)
        assert release.k_effective >= 8

    def test_anonymizer_integration(self, schema3) -> None:
        """End to end: constrained tree + constrained leaf scan gives a
        release where every partition satisfies the definition."""
        constraint = DistinctLDiversity(2)
        table = Table(schema3, diverse_records(700, seed=5))
        anonymizer = RTreeAnonymizer(
            table,
            base_k=4,
            split_policy=ConstrainedSplitPolicy(constraint),
        )
        anonymizer.bulk_load(table)
        release = anonymizer.anonymize(8, constraint=constraint)
        assert constraint.check_table(release)
        assert release.k_effective >= 8

    def test_plain_policy_can_violate(self) -> None:
        """Sanity: without the wrapper, spatial splits do create uniform
        leaves on correlated data — the wrapper is load-bearing."""
        constraint = DistinctLDiversity(2)
        tree = RPlusTree(dimensions=3, k=4, domain_extents=(100.0,) * 3)
        for record in diverse_records(600, seed=1):
            tree.insert(record)
        assert not leaves_satisfy(tree, constraint)
