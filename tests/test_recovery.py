"""Crash recovery: snapshot restore + WAL replay reproduce exact releases."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, RecoveryError, recover
from repro.durability.manager import DurabilityManager
from tests.conftest import random_records


@pytest.fixture
def records():
    return random_records(400, seed=9)


def durable(schema3, directory, records, loaded: int = 300) -> RTreeAnonymizer:
    table = Table(schema3, tuple(records[:loaded]))
    anonymizer = RTreeAnonymizer(
        table, base_k=5, durability=DurabilityConfig(directory)
    )
    anonymizer.bulk_load(table)
    return anonymizer


def test_recover_reproduces_release_digest(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    for record in records[300:350]:
        anonymizer.insert(record)
    anonymizer.delete(5, records[5].point)
    anonymizer.update(8, records[8].point, Record(8, (3.0, 4.0, 5.0), ("flu",)))
    anonymizer.insert_batch(records[350:])
    digest = release_digest(anonymizer.anonymize(10))
    anonymizer.close()

    result = recover(directory)
    assert release_digest(result.anonymizer.anonymize(10)) == digest
    result.anonymizer.tree.check_invariants()
    # 300 bulk + 50 single inserts + delete + update + 50 batched = 402.
    assert result.replayed_ops == 402
    assert result.discarded_ops == 0


def test_recover_after_checkpoint_replays_only_the_tail(
    tmp_path, schema3, records
):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    checkpoint_lsn = anonymizer.checkpoint()
    for record in records[300:320]:
        anonymizer.insert(record)
    digest = release_digest(anonymizer.anonymize(10))
    anonymizer.close()

    result = recover(directory)
    assert result.snapshot_lsn == checkpoint_lsn
    assert result.replayed_ops == 20
    assert release_digest(result.anonymizer.anonymize(10)) == digest


def test_unsealed_batch_is_discarded_and_truncated(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    digest = release_digest(anonymizer.anonymize(10))
    manager = anonymizer.durability
    # Simulate a crash mid-batch: members logged, commit never written.
    manager.begin_batch()
    for record in records[300:310]:
        manager.log_batched_insert(record)
    manager.sync()
    manager.close()

    result = recover(directory)
    assert result.discarded_ops == 10
    assert len(result.anonymizer) == 300
    assert release_digest(result.anonymizer.anonymize(10)) == digest
    # The discarded tail was physically truncated: a second recovery sees
    # a clean log and discards nothing.
    result.anonymizer.close()
    again = recover(directory)
    assert again.discarded_ops == 0
    assert len(again.anonymizer) == 300


def test_recovered_anonymizer_keeps_logging(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    anonymizer.close()

    first = recover(directory)
    for record in records[300:310]:
        first.anonymizer.insert(record)
    digest = release_digest(first.anonymizer.anonymize(10))
    first.anonymizer.close()

    second = recover(directory)
    assert len(second.anonymizer) == 310
    assert release_digest(second.anonymizer.anonymize(10)) == digest


def test_recover_missing_directory_raises(tmp_path):
    with pytest.raises(RecoveryError, match="not a directory"):
        recover(tmp_path / "absent")


def test_recover_directory_without_snapshot_raises(tmp_path):
    empty = tmp_path / "empty"
    empty.mkdir()
    with pytest.raises(RecoveryError, match="no checkpoint snapshot"):
        recover(empty)


def test_replay_mismatch_raises(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    manager = anonymizer.durability
    # Log a delete that was never applied: replay cannot find the record.
    manager.log_delete(9_999, (50.0, 50.0, 50.0))
    anonymizer.close()
    with pytest.raises(RecoveryError, match="does not match the snapshot"):
        recover(directory)


def test_fresh_directory_refuses_existing_state(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    anonymizer.close()
    table = Table(schema3, ())
    with pytest.raises(ValueError, match="already holds durable state"):
        RTreeAnonymizer(
            table, base_k=5, durability=DurabilityConfig(directory)
        )


def test_audit_watermark_resumes_sequence(tmp_path, schema3, records):
    from repro import obs

    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    obs.AUDITOR.enable(reset=True)
    try:
        anonymizer.anonymize(10)
        anonymizer.anonymize(20)
        assert obs.AUDITOR.sequence == 2
        anonymizer.checkpoint()
        anonymizer.close()
        obs.AUDITOR.reset()
        result = recover(directory)
        assert obs.AUDITOR.sequence == 2
        record = result.anonymizer.anonymize(10)
        assert obs.AUDITOR.latest["sequence"] == 2
    finally:
        obs.AUDITOR.disable()


def test_checkpoint_requires_durability(schema3, records):
    table = Table(schema3, tuple(records[:100]))
    anonymizer = RTreeAnonymizer(table, base_k=5)
    anonymizer.bulk_load(table)
    with pytest.raises(ValueError, match="no durability configured"):
        anonymizer.checkpoint()


def test_mutations_while_batch_open_are_rejected(tmp_path, schema3, records):
    directory = tmp_path / "state"
    anonymizer = durable(schema3, directory, records)
    manager = anonymizer.durability
    manager.begin_batch()
    with pytest.raises(RuntimeError, match="batch is open"):
        manager.log_insert(records[301])
    with pytest.raises(RuntimeError, match="batch is open"):
        manager.checkpoint(anonymizer.tree, anonymizer.schema)
    manager.abort_batch()
    anonymizer.close()
