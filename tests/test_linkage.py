"""Linkage attacks: quantifying what releases disclose to an external join."""

from __future__ import annotations

import pytest

from repro.baselines.mondrian import mondrian_anonymize
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_table
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.privacy.linkage import linkage_attack
from repro.privacy.ldiversity import DistinctLDiversity
from tests.conftest import random_records


@pytest.fixture
def simple_release(schema3):
    """Two partitions: one sensitive-homogeneous, one diverse."""
    homogeneous = tuple(
        Record(i, (float(i), 0.0, 0.0), ("flu",)) for i in range(3)
    )
    diverse = tuple(
        Record(10 + i, (50.0 + i, 50.0, 50.0), (d,))
        for i, d in enumerate(("flu", "cancer", "acl"))
    )
    return AnonymizedTable(
        schema3,
        [
            Partition(homogeneous, Box((0.0, 0.0, 0.0), (2.0, 0.0, 0.0))),
            Partition(diverse, Box((50.0, 50.0, 50.0), (52.0, 50.0, 50.0))),
        ],
    )


class TestLinkageAttack:
    def test_certain_absence_from_gaps(self, simple_release) -> None:
        outsider = Record(99, (25.0, 25.0, 25.0))
        report = linkage_attack(simple_release, [outsider])
        assert report.certain_absences == 1
        assert report.absence_rate == 1.0

    def test_homogeneous_partition_discloses(self, simple_release) -> None:
        victim = Record(99, (1.0, 0.0, 0.0))  # inside the all-flu box
        report = linkage_attack(simple_release, [victim])
        assert report.uniquely_located == 1
        assert report.sensitive_disclosed == 1

    def test_diverse_partition_protects(self, simple_release) -> None:
        victim = Record(99, (51.0, 50.0, 50.0))  # inside the diverse box
        report = linkage_attack(simple_release, [victim])
        assert report.uniquely_located == 1
        assert report.sensitive_disclosed == 0

    def test_empty_externals_rejected(self, simple_release) -> None:
        with pytest.raises(ValueError):
            linkage_attack(simple_release, [])

    def test_compaction_increases_absence_claims(self, schema3) -> None:
        """§4 quantified: compacting Mondrian strictly grows the set of
        externals the adversary can prove absent."""
        table = Table(schema3, random_records(400, seed=31))
        release = mondrian_anonymize(table, 10)
        compacted = compact_table(release)
        outsiders = [
            Record(10_000 + i, r.point)
            for i, r in enumerate(random_records(300, seed=32))
        ]
        before = linkage_attack(release, outsiders)
        after = linkage_attack(compacted, outsiders)
        # Uncompacted Mondrian regions tile the domain: nothing is absent.
        assert before.certain_absences == 0
        assert after.certain_absences > 0

    def test_l_diversity_caps_disclosure(self, schema3) -> None:
        """The paper's remedy: an l-diverse release has zero
        sensitive-homogeneous partitions, so outright disclosure is 0."""
        # Correlated sensitive values (the risky case).
        records = [
            Record(
                i,
                (float(i % 100), float(i % 37), float(i % 53)),
                ("flu" if i % 100 < 50 else "cancer",),
            )
            for i in range(500)
        ]
        table = Table(schema3, records)
        anonymizer = RTreeAnonymizer(table, base_k=5)
        anonymizer.bulk_load(table)
        diverse = anonymizer.anonymize(
            10, constraint=DistinctLDiversity(2, sensitive_index=0)
        )
        externals = [Record(20_000 + i, r.point) for i, r in enumerate(records)]
        report = linkage_attack(diverse, externals)
        assert report.sensitive_disclosed == 0
        # Plain release on the same data does disclose.
        plain = anonymizer.anonymize(10)
        assert linkage_attack(plain, externals).sensitive_disclosed > 0