"""Privacy verifiers: k-anonymity audit, l-diversity, (α,k)-anonymity."""

from __future__ import annotations

import math

import pytest

from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.privacy.kanonymity import is_k_anonymous, verify_release
from repro.privacy.ldiversity import (
    AlphaKAnonymity,
    DistinctLDiversity,
    EntropyLDiversity,
)


@pytest.fixture
def schema1() -> Schema:
    return Schema((Attribute.numeric("x", 0, 10),), sensitive=("diagnosis",))


def release_and_original(
    schema1: Schema, groups: list[list[tuple[float, str]]]
) -> tuple[AnonymizedTable, Table]:
    rid = 0
    partitions = []
    original = Table(schema1)
    for group in groups:
        records = []
        for value, diagnosis in group:
            record = Record(rid, (value,), (diagnosis,))
            original.append(record)
            records.append(record)
            rid += 1
        partitions.append(
            Partition(tuple(records), Box.from_points(r.point for r in records))
        )
    return AnonymizedTable(schema1, partitions), original


class TestVerifyRelease:
    def test_clean_release(self, schema1) -> None:
        release, original = release_and_original(
            schema1, [[(1, "flu"), (2, "cold")], [(8, "acl"), (9, "flu")]]
        )
        assert verify_release(release, original, 2) == []
        assert is_k_anonymous(release, 2)
        assert not is_k_anonymous(release, 3)

    def test_detects_small_partition(self, schema1) -> None:
        release, original = release_and_original(
            schema1, [[(1, "flu")], [(8, "acl"), (9, "flu")]]
        )
        problems = verify_release(release, original, 2)
        assert any("< k=2" in problem for problem in problems)

    def test_detects_missing_records(self, schema1) -> None:
        release, original = release_and_original(
            schema1, [[(1, "flu"), (2, "cold")]]
        )
        original.append(Record(99, (5.0,), ("flu",)))
        problems = verify_release(release, original, 2)
        assert any("missing" in problem for problem in problems)

    def test_detects_invented_records(self, schema1) -> None:
        release, original = release_and_original(
            schema1, [[(1, "flu"), (2, "cold")]]
        )
        foreign = Partition(
            (Record(50, (5.0,)), Record(51, (6.0,))), Box((5.0,), (6.0,))
        )
        bloated = AnonymizedTable(schema1, list(release.partitions) + [foreign])
        problems = verify_release(bloated, original, 2)
        assert any("does not exist" in problem for problem in problems)

    def test_detects_duplicates(self, schema1) -> None:
        release, original = release_and_original(
            schema1, [[(1, "flu"), (2, "cold")]]
        )
        doubled = AnonymizedTable(
            schema1, list(release.partitions) + [release.partitions[0]]
        )
        problems = verify_release(doubled, original, 2)
        assert any("twice" in problem for problem in problems)


class TestDiversityConstraints:
    def records(self, diagnoses: list[str]) -> list[Record]:
        return [
            Record(i, (float(i),), (diagnosis,))
            for i, diagnosis in enumerate(diagnoses)
        ]

    def test_distinct_l_diversity(self) -> None:
        constraint = DistinctLDiversity(2)
        assert constraint(self.records(["flu", "cold"]))
        assert not constraint(self.records(["flu", "flu", "flu"]))

    def test_distinct_is_monotone_under_union(self) -> None:
        constraint = DistinctLDiversity(2)
        satisfied = self.records(["flu", "cold"])
        more = satisfied + self.records(["flu", "flu"])
        assert constraint(more)

    def test_entropy_l_diversity(self) -> None:
        constraint = EntropyLDiversity(2)
        # Perfectly balanced two values: entropy = log 2 -> passes l=2.
        assert constraint(self.records(["flu", "cold", "flu", "cold"]))
        # Heavily skewed: entropy < log 2.
        assert not constraint(self.records(["flu"] * 9 + ["cold"]))

    def test_entropy_monotone_over_diverse_unions(self) -> None:
        constraint = EntropyLDiversity(2)
        a = self.records(["flu", "cold"])
        b = self.records(["acl", "whiplash"])
        assert constraint(a) and constraint(b)
        assert constraint(a + b)

    def test_alpha_k(self) -> None:
        constraint = AlphaKAnonymity(alpha=0.5, k=4)
        assert constraint(self.records(["flu", "cold", "flu", "acl"]))
        assert not constraint(self.records(["flu", "flu", "flu", "acl"]))
        assert not constraint(self.records(["flu", "cold"]))  # size < k

    def test_check_table(self, schema1) -> None:
        release, _ = release_and_original(
            schema1, [[(1, "flu"), (2, "cold")], [(8, "acl"), (9, "flu")]]
        )
        assert DistinctLDiversity(2).check_table(release)
        assert not DistinctLDiversity(3).check_table(release)
        assert EntropyLDiversity(2).check_table(release)
        assert AlphaKAnonymity(alpha=0.5, k=2).check_table(release)

    def test_entropy_threshold_is_log_l(self) -> None:
        records = self.records(["a", "b", "c"])
        assert EntropyLDiversity(3)(records)  # entropy == log 3 exactly
        assert math.isclose(math.log(3), math.log(3))
