"""Information-loss profiles and gap statistics."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import compact_table
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, Schema
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.metrics.certainty import certainty_penalty
from repro.metrics.profile import gap_statistics, information_profile
from tests.conftest import random_records


@pytest.fixture
def schema2() -> Schema:
    return Schema((Attribute.numeric("x", 0, 100), Attribute.numeric("y", 0, 100)))


def release_from_boxes(
    schema: Schema, groups: list[tuple[list[tuple[float, float]], Box]]
) -> tuple[AnonymizedTable, Table]:
    rid = 0
    partitions = []
    original = Table(schema)
    for points, box in groups:
        records = []
        for point in points:
            record = Record(rid, point)
            original.append(record)
            records.append(record)
            rid += 1
        partitions.append(Partition(tuple(records), box))
    return AnonymizedTable(schema, partitions), original


class TestInformationProfile:
    def test_per_attribute_breakdown(self, schema2) -> None:
        # x generalized hard (extent 50 of range 50), y exact.
        release, original = release_from_boxes(
            schema2,
            [
                ([(0.0, 10.0), (50.0, 10.0)], Box((0.0, 10.0), (50.0, 10.0))),
            ],
        )
        profile = information_profile(release, original)
        x_loss, y_loss = profile.attributes
        assert x_loss.name == "x" and x_loss.mean_ncp == pytest.approx(1.0)
        assert y_loss.mean_ncp == 0.0
        assert y_loss.exact_fraction == 1.0
        assert profile.dominant_attribute() == "x"

    def test_total_matches_certainty_per_record(self, schema3) -> None:
        table = Table(schema3, random_records(400, seed=1))
        release = RTreeAnonymizer.anonymize_table(table, k=10)
        profile = information_profile(release, table)
        expected = certainty_penalty(release, table) / len(table)
        assert profile.total_ncp_per_record == pytest.approx(expected)

    def test_partition_size_histogram(self, schema3) -> None:
        table = Table(schema3, random_records(400, seed=2))
        release = RTreeAnonymizer.anonymize_table(table, k=10)
        profile = information_profile(release, table)
        assert sum(size * count for size, count in profile.partition_sizes.items()) == 400
        assert min(profile.partition_sizes) >= 10


class TestGapStatistics:
    def test_full_coverage_has_no_gaps(self, schema2) -> None:
        # One partition covering the whole domain: zero disclosed gaps.
        release, original = release_from_boxes(
            schema2,
            [([(0.0, 0.0), (100.0, 100.0)], Box((0.0, 0.0), (100.0, 100.0)))],
        )
        stats = gap_statistics(release, original, samples=2_000)
        assert stats.covered_volume_fraction == pytest.approx(1.0)
        assert not stats.discloses_gaps

    def test_tight_boxes_disclose_gaps(self, schema2) -> None:
        # Two tiny clusters in a big domain: nearly everything is gap.
        release, original = release_from_boxes(
            schema2,
            [
                ([(0.0, 0.0), (5.0, 5.0)], Box((0.0, 0.0), (5.0, 5.0))),
                ([(95.0, 95.0), (100.0, 100.0)], Box((95.0, 95.0), (100.0, 100.0))),
            ],
        )
        stats = gap_statistics(release, original, samples=4_000)
        assert stats.discloses_gaps
        assert stats.gap_volume_fraction > 0.95
        # Per-attribute coverage: each axis covered 10 of 100.
        assert stats.per_attribute_coverage[0] == pytest.approx(0.1)

    def test_compaction_increases_gap_disclosure(self, schema3) -> None:
        """§4 quantified: compacting a Mondrian release strictly grows the
        disclosed-gap volume (uncompacted regions tile the domain)."""
        from repro.baselines.mondrian import mondrian_anonymize
        from repro.dataset.landsend import make_landsend_table
        from repro.dataset.schema import Attribute, Schema

        full = make_landsend_table(1_000, seed=4)
        schema = Schema(
            (
                Attribute.numeric("zipcode", 501, 99_950),
                Attribute.numeric("price", 1, 500),
            )
        )
        table = Table.from_points(
            schema, [(r.point[0], r.point[4]) for r in full]
        )
        release = mondrian_anonymize(table, 10)
        uncompacted = gap_statistics(release, table, samples=4_000)
        compacted = gap_statistics(compact_table(release), table, samples=4_000)
        assert uncompacted.gap_volume_fraction == pytest.approx(0.0, abs=1e-9)
        assert compacted.gap_volume_fraction > uncompacted.gap_volume_fraction
