"""Delete/update on a PagedLeafStore-backed tree, incl. durable replay.

The paged store mirrors every leaf mutation into the simulated page file;
deletes that dissolve a leaf must release its pages, and a WAL replay of
those same deletes (recovery onto a *fresh* pool) must rebuild an
identical partitioning.
"""

from __future__ import annotations

from repro import obs
from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.durability import DurabilityConfig, recover
from repro.index.leaf_store import PagedLeafStore
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile
from tests.conftest import random_records


def fresh_pool() -> BufferPool[Record]:
    pagefile: PageFile[Record] = PageFile(page_bytes=512, record_bytes=36)
    return BufferPool(pagefile, 64 * 1024)


def paged_anonymizer(schema3, records, directory=None):
    table = Table(schema3, tuple(records))
    anonymizer = RTreeAnonymizer(
        table,
        base_k=5,
        leaf_capacity=9,
        pool=fresh_pool(),
        durability=DurabilityConfig(directory) if directory else None,
    )
    anonymizer.bulk_load(table)
    return anonymizer


def test_deletes_dissolve_leaves_and_release_pages(schema3):
    records = random_records(180, seed=21)
    anonymizer = paged_anonymizer(schema3, records)
    store = anonymizer.tree._store
    assert isinstance(store, PagedLeafStore)
    obs.enable()
    try:
        # Drain one spatial region: forces occupancy below k => dissolves.
        victims = sorted(records, key=lambda r: r.point)[:60]
        for victim in victims:
            anonymizer.delete(victim.rid, victim.point)
        assert obs.OBS.counter_value("rtree.dissolves") > 0
    finally:
        obs.disable()
    anonymizer.tree.check_invariants()
    assert len(anonymizer) == 120
    # Every surviving leaf is still backed by pages; dissolved leaves not.
    live_ids = {leaf.node_id for leaf in anonymizer.tree.leaves()}
    for leaf in anonymizer.tree.leaves():
        assert store.pages_of(leaf), "live leaf lost its backing pages"
    assert set(store._pages) == live_ids


def test_update_moves_record_between_paged_leaves(schema3):
    records = random_records(120, seed=22)
    anonymizer = paged_anonymizer(schema3, records)
    moved = Record(records[0].rid, (0.0, 0.0, 0.0), records[0].sensitive)
    anonymizer.update(records[0].rid, records[0].point, moved)
    anonymizer.tree.check_invariants()
    found = anonymizer.tree.locate_leaf((0.0, 0.0, 0.0))
    assert any(r.rid == moved.rid for r in found.records)


def test_wal_replay_of_dissolving_deletes_onto_fresh_pool(tmp_path, schema3):
    records = random_records(180, seed=23)
    directory = tmp_path / "state"
    anonymizer = paged_anonymizer(schema3, records, directory=directory)
    victims = sorted(records, key=lambda r: r.point)[:60]
    for victim in victims:
        anonymizer.delete(victim.rid, victim.point)
    digest = release_digest(anonymizer.anonymize(5))
    anonymizer.close()

    # Recovery replays bulk load + 60 deletes against a brand-new pool.
    result = recover(directory, pool=fresh_pool())
    assert result.replayed_ops == 180 + 60
    restored = result.anonymizer
    restored.tree.check_invariants()
    assert len(restored) == 120
    assert release_digest(restored.anonymize(5)) == digest
    store = restored.tree._store
    assert isinstance(store, PagedLeafStore)
    for leaf in restored.tree.leaves():
        assert store.pages_of(leaf)


def test_recovery_without_pool_matches_paged_run_digest(tmp_path, schema3):
    records = random_records(150, seed=24)
    directory = tmp_path / "state"
    anonymizer = paged_anonymizer(schema3, records, directory=directory)
    for victim in records[:20]:
        anonymizer.delete(victim.rid, victim.point)
    digest = release_digest(anonymizer.anonymize(5))
    anonymizer.close()
    # The leaf store is an I/O mirror, not part of the logical state: a
    # pool-less recovery must still reproduce the partitioning exactly.
    result = recover(directory)
    assert release_digest(result.anonymizer.anonymize(5)) == digest
