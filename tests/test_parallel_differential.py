"""Serial/parallel differential suite.

The sharded engine's contract is *bit-for-bit equality* with the serial
Hilbert loaders for every worker count.  This suite enforces it across a
grid of datasets × k × workers, at four levels:

1. the partition grouping (`parallel_hilbert_partitions` vs
   `hilbert_partitions`),
2. the built index (leaf record groups, leaf MBRs, invariants vs
   `hilbert_bulk_load`),
3. the published release through :class:`RTreeAnonymizer` from a staged
   record file (leaf regions, partition boxes and membership, digest),
4. the privacy/quality verdicts (`is_k_anonymous`, discernibility,
   certainty) and the auditor's record, modulo its sequence field.
"""

from __future__ import annotations

from functools import lru_cache

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.agrawal import make_agrawal_table
from repro.dataset.census import make_census_table
from repro.dataset.io import write_table
from repro.dataset.landsend import make_landsend_table
from repro.index.bulk import hilbert_bulk_load, hilbert_partitions
from repro.metrics.certainty import certainty_penalty
from repro.metrics.discernibility import discernibility_penalty
from repro.obs import AUDITOR
from repro.parallel import parallel_bulk_load, parallel_hilbert_partitions
from repro.privacy.kanonymity import is_k_anonymous

RECORDS = 600
SEED = 7
DATASETS = {
    "landsend": make_landsend_table,
    "census": make_census_table,
    "agrawal": make_agrawal_table,
}
KS = (2, 5, 25)
WORKER_COUNTS = (1, 2, 4)
GRID = [
    (dataset, k)
    for dataset in sorted(DATASETS)
    for k in KS
]


@lru_cache(maxsize=None)
def _table(dataset: str):
    return DATASETS[dataset](RECORDS, seed=SEED)


def _domain(table):
    return table.schema.domain_lows(), table.schema.domain_highs()


def _leaf_groups(tree):
    return [[record.rid for record in leaf.records] for leaf in tree.leaves()]


def _leaf_mbrs(tree):
    return [leaf.mbr for leaf in tree.leaves()]


@pytest.mark.parametrize(("dataset", "k"), GRID)
def test_partition_grouping_matches_serial(dataset: str, k: int) -> None:
    table = _table(dataset)
    records = list(table.records)
    lows, highs = _domain(table)
    serial = hilbert_partitions(records, lows, highs, k)
    for workers in WORKER_COUNTS:
        parallel = parallel_hilbert_partitions(
            records, lows, highs, k, workers=workers
        )
        assert parallel == serial, (
            f"{dataset} k={k} workers={workers}: grouping diverged"
        )


@pytest.mark.parametrize(("dataset", "k"), GRID)
def test_built_tree_matches_serial(dataset: str, k: int) -> None:
    table = _table(dataset)
    records = list(table.records)
    lows, highs = _domain(table)
    serial = hilbert_bulk_load(records, lows, highs, k)
    serial_groups = _leaf_groups(serial)
    serial_mbrs = _leaf_mbrs(serial)
    for workers in WORKER_COUNTS:
        tree = parallel_bulk_load(records, lows, highs, k, workers=workers)
        tree.check_invariants()
        assert _leaf_groups(tree) == serial_groups, (
            f"{dataset} k={k} workers={workers}: leaf membership diverged"
        )
        assert _leaf_mbrs(tree) == serial_mbrs, (
            f"{dataset} k={k} workers={workers}: leaf MBRs diverged"
        )
        assert len(tree) == len(serial)


@pytest.fixture(scope="module")
def record_files(tmp_path_factory):
    staging = tmp_path_factory.mktemp("differential")
    paths = {}
    for dataset in DATASETS:
        path = str(staging / f"{dataset}.records")
        write_table(_table(dataset), path)
        paths[dataset] = path
    return paths


def _released(dataset: str, k: int, workers: int, path: str):
    """One audited release built from the staged file at a worker count."""
    table = _table(dataset)
    anonymizer = RTreeAnonymizer(table, base_k=min(5, k))
    consumed = anonymizer.bulk_load_file(path, workers=workers)
    assert consumed == RECORDS
    AUDITOR.enable(reset=True)
    try:
        release = anonymizer.anonymize(k)
        audit = dict(AUDITOR.latest)
    finally:
        AUDITOR.disable()
    regions = [
        (region.lows, region.highs) for region in anonymizer.leaf_regions()
    ]
    return release, regions, audit


@pytest.mark.parametrize(("dataset", "k"), GRID)
def test_release_from_file_matches_serial(dataset: str, k: int, record_files) -> None:
    """The anonymizer-level differential: leaf regions, partitions, digest,
    k verdict, quality metrics and audit record all agree across workers."""
    table = _table(dataset)
    path = record_files[dataset]
    reference = None
    for workers in WORKER_COUNTS:
        release, regions, audit = _released(dataset, k, workers, path)
        partitions = [
            ((p.box.lows, p.box.highs), sorted(p.rids()))
            for p in release.partitions
        ]
        verdict = is_k_anonymous(release, k)
        metrics = (
            discernibility_penalty(release),
            certainty_penalty(release, table),
        )
        digest = release_digest(release)
        audit.pop("sequence", None)
        snapshot = (regions, partitions, verdict, metrics, digest, audit)
        if reference is None:
            reference = snapshot
            assert verdict, f"{dataset} k={k}: serial release not k-anonymous"
            continue
        for name, got, expected in zip(
            ("regions", "partitions", "k-verdict", "metrics", "digest", "audit"),
            snapshot,
            reference,
        ):
            assert got == expected, (
                f"{dataset} k={k} workers={workers}: {name} diverged"
            )


def test_forced_multiprocessing_matches_serial(monkeypatch) -> None:
    """One grid cell with one process per slice forced, so the differential
    crosses the real multiprocessing boundary even on single-CPU machines
    (elsewhere the engine caps the pool at the CPU count)."""
    monkeypatch.setenv("REPRO_PARALLEL_POOL", "force")
    table = _table("landsend")
    records = list(table.records)
    lows, highs = _domain(table)
    serial = hilbert_bulk_load(records, lows, highs, 5)
    pooled = parallel_bulk_load(records, lows, highs, 5, workers=4)
    assert _leaf_groups(pooled) == _leaf_groups(serial)
    assert _leaf_mbrs(pooled) == _leaf_mbrs(serial)
    assert parallel_hilbert_partitions(
        records, lows, highs, 5, workers=4
    ) == hilbert_partitions(records, lows, highs, 5)
