"""CLI: shared option vocabulary, deprecation shims, durable commands."""

from __future__ import annotations

import warnings

import pytest

from repro import cli


@pytest.fixture(autouse=True)
def reset_warned_options():
    """Each test sees the warn-once state fresh."""
    cli._warned_options.clear()
    yield
    cli._warned_options.clear()


# -- shared option vocabulary -------------------------------------------------


def test_shared_options_parse_for_every_data_command():
    parser = cli._build_parser()
    for command in ("anonymize", "bench", "recover", "checkpoint"):
        arguments = parser.parse_args(
            [
                command,
                "--dataset",
                "census",
                "--k",
                "7",
                "--out",
                "out.file",
                "--workers",
                "3",
                "--dir",
                "state",
            ]
        )
        assert arguments.experiment == command
        assert arguments.dataset == "census"
        assert arguments.k == 7
        assert arguments.out == "out.file"
        assert arguments.workers == 3
        assert arguments.dir == "state"


def test_dataset_file_option_does_not_warn():
    parser = cli._build_parser()
    with warnings.catch_warnings():
        warnings.simplefilter("error")
        arguments = parser.parse_args(
            ["anonymize", "--dataset-file", "points.bin"]
        )
    assert arguments.dataset_file == "points.bin"


def test_input_alias_still_works_but_warns_deprecation():
    parser = cli._build_parser()
    with pytest.deprecated_call(match="--input is deprecated"):
        arguments = parser.parse_args(["anonymize", "--input", "points.bin"])
    assert arguments.dataset_file == "points.bin"


def test_input_alias_warns_only_once():
    parser = cli._build_parser()
    with pytest.deprecated_call():
        parser.parse_args(["anonymize", "--input", "a.bin"])
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        parser.parse_args(["anonymize", "--input", "b.bin"])
    assert not caught


def test_seconds_alias_still_works_but_warns_deprecation():
    parser = cli._build_parser()
    with pytest.deprecated_call(match="--seconds is deprecated"):
        arguments = parser.parse_args(["serve-demo", "--seconds", "2.5"])
    assert arguments.duration == 2.5


def test_duration_and_shards_defaults():
    parser = cli._build_parser()
    arguments = parser.parse_args(["serve-demo"])
    assert arguments.duration == 5.0
    assert arguments.shards == 1


# -- durable command round trip ----------------------------------------------


def run_cli(capsys, argv) -> tuple[int, str]:
    code = cli.main(argv)
    return code, capsys.readouterr().out


def grep_line(output: str, label: str) -> str:
    (line,) = [line for line in output.splitlines() if label in line]
    return line


def test_anonymize_recover_checkpoint_round_trip(tmp_path, capsys):
    state = str(tmp_path / "state")
    out_csv = str(tmp_path / "release.csv")
    code, anonymize_out = run_cli(
        capsys,
        [
            "anonymize",
            "--records",
            "1500",
            "--k",
            "10",
            "--dir",
            state,
            "--out",
            out_csv,
        ],
    )
    assert code == 0
    assert "durable:" in anonymize_out
    assert (tmp_path / "release.csv").exists()

    code, recover_out = run_cli(
        capsys, ["recover", "--dir", state, "--k", "10"]
    )
    assert code == 0
    assert grep_line(recover_out, "digest:") == grep_line(
        anonymize_out, "digest:"
    )

    code, checkpoint_out = run_cli(capsys, ["checkpoint", "--dir", state])
    assert code == 0
    assert "checkpoint written at LSN" in checkpoint_out


def test_recover_requires_dir(capsys):
    code = cli.main(["recover"])
    assert code == 2
    assert "--dir" in capsys.readouterr().err


def test_checkpoint_requires_dir(capsys):
    code = cli.main(["checkpoint"])
    assert code == 2
    assert "--dir" in capsys.readouterr().err


def test_anonymize_without_dir_stays_in_memory(tmp_path, capsys):
    code, output = run_cli(
        capsys, ["anonymize", "--records", "800", "--k", "5"]
    )
    assert code == 0
    assert "durable:" not in output
    assert "digest:" in output


# -- live telemetry commands --------------------------------------------------


def test_list_mentions_live_telemetry_commands(capsys):
    code, output = run_cli(capsys, ["list"])
    assert code == 0
    assert "serve-demo" in output
    assert "top" in output


def test_top_requires_url(capsys):
    code = cli.main(["top"])
    assert code == 2
    assert "--url" in capsys.readouterr().err


def test_serve_demo_serves_metrics_and_logs_slow_ops(tmp_path, capsys):
    slow_log = tmp_path / "slow.jsonl"
    code, output = run_cli(
        capsys,
        [
            "serve-demo",
            "--records",
            "400",
            "--k",
            "5",
            "--duration",
            "0.4",
            "--port",
            "0",
            "--slow-op-log",
            str(slow_log),
            "--slow-op-threshold",
            "0.000001",
        ],
    )
    assert code == 0
    assert "serving telemetry at http://" in output
    assert "health=healthy" in output
    # Every op beats a microsecond threshold, so the log must have entries.
    assert "slow ops:" in output
    assert slow_log.exists()
    first = slow_log.read_text().splitlines()[0]
    import json

    entry = json.loads(first)
    assert entry["op"] in {"commit", "release"}
    assert entry["seconds"] >= entry["threshold"]


def test_top_renders_one_frame_from_live_service(small_table, capsys):
    from repro import api, obs

    obs.enable()
    service = api.serve(
        small_table.schema,
        service_config=api.ServiceConfig(
            telemetry=api.TelemetryConfig(endpoint=True)
        ),
    )
    try:
        service.insert_batch(list(small_table.records))
        service.release(k=5)
        code = cli.main(
            [
                "top",
                "--url",
                service.telemetry_url,
                "--count",
                "1",
                "--no-clear",
            ]
        )
        output = capsys.readouterr().out
        assert code == 0
        assert "service health: healthy" in output
        assert "latency" in output or "p50" in output
    finally:
        service.close()
        obs.disable()
        obs.reset()


def test_top_reports_unreachable_endpoint(capsys):
    # Nothing listens on this port: the scrape must fail fast with rc 1.
    code = cli.main(
        ["top", "--url", "http://127.0.0.1:9", "--count", "1", "--no-clear"]
    )
    assert code == 1
    assert "cannot scrape" in capsys.readouterr().err
