"""Sort-based loaders: Hilbert/Morton keys and STR partitioning."""

from __future__ import annotations

import itertools
from functools import lru_cache

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.index.bulk import (
    chunk_with_floor,
    hilbert_bulk_load,
    hilbert_partitions,
    hilbert_sorted,
    str_bulk_load,
    str_partitions,
)
from repro.index.hilbert import (
    dequantize,
    hilbert_key,
    key_bits,
    morton_key,
    quantize,
)
from tests.conftest import random_records


class TestHilbertKey:
    def test_one_dimension_is_identity(self) -> None:
        assert hilbert_key([5], bits=4) == 5

    def test_bijective_in_two_dimensions(self) -> None:
        bits = 4
        keys = {
            hilbert_key([x, y], bits) for x in range(16) for y in range(16)
        }
        assert keys == set(range(16 * 16))

    def test_bijective_in_three_dimensions(self) -> None:
        bits = 3
        keys = {
            hilbert_key([x, y, z], bits)
            for x in range(8)
            for y in range(8)
            for z in range(8)
        }
        assert keys == set(range(8**3))

    def test_adjacent_keys_are_adjacent_cells(self) -> None:
        """The Hilbert property: consecutive curve positions are neighbours
        (Manhattan distance exactly 1) — the locality Morton lacks."""
        bits = 4
        inverse = {}
        for x in range(16):
            for y in range(16):
                inverse[hilbert_key([x, y], bits)] = (x, y)
        for key in range(16 * 16 - 1):
            (x1, y1), (x2, y2) = inverse[key], inverse[key + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError):
            hilbert_key([16], bits=4)
        with pytest.raises(ValueError):
            hilbert_key([-1], bits=4)
        with pytest.raises(ValueError):
            hilbert_key([], bits=4)

    def test_morton_key_interleaves(self) -> None:
        # x=0b10, y=0b01 -> interleaved MSB-first: 1,0 / 0,1 -> 0b1001
        assert morton_key([0b10, 0b01], bits=2) == 0b1001

    def test_quantize_clamps_and_scales(self) -> None:
        assert quantize((0.0, 50.0, 100.0), (0, 0, 0), (100, 100, 100), 4) == [
            0,
            7,
            15,
        ]
        # Degenerate domain maps to 0.
        assert quantize((5.0,), (5,), (5,), 4) == [0]

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=4))
    def test_hilbert_key_deterministic(self, coordinates: list[int]) -> None:
        assert hilbert_key(coordinates, 8) == hilbert_key(coordinates, 8)


#: (dimensions, bits) pairs small enough to enumerate the whole grid —
#: ``dimensions * bits`` bounded so a full sweep stays in milliseconds.
_GRID_SHAPES = [
    (dimensions, bits)
    for dimensions in (1, 2, 3, 4)
    for bits in (1, 2, 3, 4)
    if key_bits(dimensions, bits) <= 12
]


@lru_cache(maxsize=None)
def _grid_points(dimensions: int, bits: int) -> list[tuple[int, ...]]:
    return list(itertools.product(range(1 << bits), repeat=dimensions))


class TestHilbertProperties:
    """Property-based coverage of the key/quantization layer.

    The sharded parallel engine leans on these properties: injectivity is
    what makes ``(key, rid)`` a total order, and the round-trip bound is
    what keeps shard-boundary keys meaningful in domain space.
    """

    @given(
        st.sampled_from(_GRID_SHAPES),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_hilbert_key_injective_on_grid(self, shape, rng) -> None:
        dimensions, bits = shape
        points = _grid_points(dimensions, bits)
        sample = rng.sample(points, min(len(points), 256))
        keys = [hilbert_key(point, bits) for point in sample]
        assert len(set(keys)) == len(sample)
        assert all(0 <= key < (1 << key_bits(dimensions, bits)) for key in keys)

    @given(
        st.sampled_from(_GRID_SHAPES),
        st.randoms(use_true_random=False),
    )
    @settings(max_examples=40, deadline=None)
    def test_morton_key_injective_on_grid(self, shape, rng) -> None:
        dimensions, bits = shape
        points = _grid_points(dimensions, bits)
        sample = rng.sample(points, min(len(points), 256))
        keys = [morton_key(point, bits) for point in sample]
        assert len(set(keys)) == len(sample)

    @given(st.sampled_from([shape for shape in _GRID_SHAPES if shape[0] >= 2]))
    @settings(max_examples=len(_GRID_SHAPES), deadline=None)
    def test_hilbert_adjacency_exhaustive(self, shape) -> None:
        """Consecutive curve positions differ by exactly one grid step, in
        every dimensionality/resolution — the locality the loader exploits."""
        dimensions, bits = shape
        inverse = {
            hilbert_key(point, bits): point
            for point in _grid_points(dimensions, bits)
        }
        assert len(inverse) == 1 << key_bits(dimensions, bits)
        for key in range(len(inverse) - 1):
            here, there = inverse[key], inverse[key + 1]
            assert sum(abs(a - b) for a, b in zip(here, there)) == 1

    @given(
        st.integers(2, 12),
        st.lists(
            st.tuples(
                st.floats(-1e6, 1e6, allow_nan=False),
                st.floats(0.0, 1e6, allow_nan=False),
                st.floats(0.0, 1.0, allow_nan=False),
            ),
            min_size=1,
            max_size=4,
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_quantize_round_trip_within_one_cell(self, bits, axes) -> None:
        """dequantize(quantize(p)) re-quantizes to the same cells, and each
        coordinate lands within one cell width of the original point."""
        lows = [low for low, _extent, _frac in axes]
        highs = [low + extent for low, extent, _frac in axes]
        point = [
            low + (high - low) * frac
            for (low, _extent, frac), high in zip(axes, highs)
        ]
        cells = quantize(point, lows, highs, bits)
        restored = dequantize(cells, lows, highs, bits)
        assert quantize(restored, lows, highs, bits) == cells
        top = (1 << bits) - 1
        for value, back, low, high in zip(point, restored, lows, highs):
            assert low <= back <= high
            extent = high - low
            cell_width = extent / top if extent > 0 else 0.0
            assert abs(back - value) <= cell_width + 1e-9 * max(1.0, abs(value))


class TestSortLoaders:
    def test_hilbert_partitions_floor(self) -> None:
        records = random_records(203, seed=1)
        groups = hilbert_partitions(records, (0,) * 3, (100,) * 3, k=10)
        assert sum(len(g) for g in groups) == 203
        assert all(len(g) >= 10 for g in groups)

    def test_hilbert_sorted_is_permutation(self) -> None:
        records = random_records(100, seed=2)
        ordered = hilbert_sorted(records, (0,) * 3, (100,) * 3)
        assert sorted(r.rid for r in ordered) == list(range(100))

    def test_str_partitions_floor(self) -> None:
        records = random_records(500, seed=3)
        groups = str_partitions(records, dimensions=3, k=10)
        assert sum(len(g) for g in groups) == 500
        assert all(len(g) >= 10 for g in groups)
        assert all(len(g) <= 20 for g in groups)  # target 2k unless unsplittable

    def test_str_handles_duplicates(self) -> None:
        from repro.dataset.record import Record

        records = [Record(i, (5.0, 5.0, 5.0)) for i in range(100)]
        groups = str_partitions(records, dimensions=3, k=10)
        assert groups == [records]  # unsplittable -> one whole group

    def test_hilbert_bulk_load_builds_valid_tree(self) -> None:
        records = random_records(600, seed=4)
        tree = hilbert_bulk_load(
            records, (0.0,) * 3, (100.0,) * 3, k=5,
            domain_extents=(100.0,) * 3,
        )
        tree.check_invariants()
        assert len(tree) == 600

    def test_str_bulk_load_builds_valid_tree(self) -> None:
        records = random_records(600, seed=5)
        tree = str_bulk_load(records, dimensions=3, k=5, domain_extents=(100.0,) * 3)
        tree.check_invariants()
        assert len(tree) == 600


class TestChunkWithFloor:
    """The k-floor chunker shared by the serial and sharded loaders."""

    def test_exact_2k_chunks(self) -> None:
        records = random_records(40, seed=6)
        groups = chunk_with_floor(records, k=10)
        assert [len(g) for g in groups] == [20, 20]
        assert [r.rid for g in groups for r in g] == list(range(40))

    def test_short_tail_merges_into_last_group(self) -> None:
        records = random_records(47, seed=6)
        groups = chunk_with_floor(records, k=10)
        assert [len(g) for g in groups] == [20, 27]

    def test_tail_at_floor_stays_separate(self) -> None:
        records = random_records(30, seed=6)
        groups = chunk_with_floor(records, k=10)
        assert [len(g) for g in groups] == [20, 10]

    def test_exactly_k_records_is_one_group(self) -> None:
        records = random_records(10, seed=6)
        assert [len(g) for g in chunk_with_floor(records, k=10)] == [10]

    def test_fewer_than_k_records_raises(self) -> None:
        """No k-anonymous grouping exists below k records; emitting an
        undersized group (the old behavior) would break the k-floor."""
        records = random_records(9, seed=6)
        with pytest.raises(ValueError, match="9 records < k=10"):
            chunk_with_floor(records, k=10)

    def test_empty_input_raises(self) -> None:
        with pytest.raises(ValueError, match="0 records < k=1"):
            chunk_with_floor([], k=1)

    def test_nonpositive_k_raises(self) -> None:
        with pytest.raises(ValueError, match="k must be at least 1"):
            chunk_with_floor(random_records(5, seed=6), k=0)

    def test_hilbert_partitions_propagates_the_floor_error(self) -> None:
        records = random_records(4, seed=6)
        with pytest.raises(ValueError, match="4 records < k=5"):
            hilbert_partitions(records, (0.0,) * 3, (100.0,) * 3, k=5)

    @given(st.integers(1, 25), st.integers(0, 120))
    @settings(max_examples=120, deadline=None)
    def test_floor_invariants(self, k: int, count: int) -> None:
        records = random_records(count, seed=7)
        if count < k:
            with pytest.raises(ValueError):
                chunk_with_floor(records, k)
            return
        groups = chunk_with_floor(records, k)
        assert [r.rid for g in groups for r in g] == list(range(count))
        assert all(len(g) >= k for g in groups)
        assert all(len(g) <= 3 * k - 1 for g in groups)
