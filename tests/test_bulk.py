"""Sort-based loaders: Hilbert/Morton keys and STR partitioning."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.index.bulk import (
    hilbert_bulk_load,
    hilbert_partitions,
    hilbert_sorted,
    str_bulk_load,
    str_partitions,
)
from repro.index.hilbert import hilbert_key, morton_key, quantize
from tests.conftest import random_records


class TestHilbertKey:
    def test_one_dimension_is_identity(self) -> None:
        assert hilbert_key([5], bits=4) == 5

    def test_bijective_in_two_dimensions(self) -> None:
        bits = 4
        keys = {
            hilbert_key([x, y], bits) for x in range(16) for y in range(16)
        }
        assert keys == set(range(16 * 16))

    def test_bijective_in_three_dimensions(self) -> None:
        bits = 3
        keys = {
            hilbert_key([x, y, z], bits)
            for x in range(8)
            for y in range(8)
            for z in range(8)
        }
        assert keys == set(range(8**3))

    def test_adjacent_keys_are_adjacent_cells(self) -> None:
        """The Hilbert property: consecutive curve positions are neighbours
        (Manhattan distance exactly 1) — the locality Morton lacks."""
        bits = 4
        inverse = {}
        for x in range(16):
            for y in range(16):
                inverse[hilbert_key([x, y], bits)] = (x, y)
        for key in range(16 * 16 - 1):
            (x1, y1), (x2, y2) = inverse[key], inverse[key + 1]
            assert abs(x1 - x2) + abs(y1 - y2) == 1

    def test_out_of_range_rejected(self) -> None:
        with pytest.raises(ValueError):
            hilbert_key([16], bits=4)
        with pytest.raises(ValueError):
            hilbert_key([-1], bits=4)
        with pytest.raises(ValueError):
            hilbert_key([], bits=4)

    def test_morton_key_interleaves(self) -> None:
        # x=0b10, y=0b01 -> interleaved MSB-first: 1,0 / 0,1 -> 0b1001
        assert morton_key([0b10, 0b01], bits=2) == 0b1001

    def test_quantize_clamps_and_scales(self) -> None:
        assert quantize((0.0, 50.0, 100.0), (0, 0, 0), (100, 100, 100), 4) == [
            0,
            7,
            15,
        ]
        # Degenerate domain maps to 0.
        assert quantize((5.0,), (5,), (5,), 4) == [0]

    @given(st.lists(st.integers(0, 255), min_size=2, max_size=4))
    def test_hilbert_key_deterministic(self, coordinates: list[int]) -> None:
        assert hilbert_key(coordinates, 8) == hilbert_key(coordinates, 8)


class TestSortLoaders:
    def test_hilbert_partitions_floor(self) -> None:
        records = random_records(203, seed=1)
        groups = hilbert_partitions(records, (0,) * 3, (100,) * 3, k=10)
        assert sum(len(g) for g in groups) == 203
        assert all(len(g) >= 10 for g in groups)

    def test_hilbert_sorted_is_permutation(self) -> None:
        records = random_records(100, seed=2)
        ordered = hilbert_sorted(records, (0,) * 3, (100,) * 3)
        assert sorted(r.rid for r in ordered) == list(range(100))

    def test_str_partitions_floor(self) -> None:
        records = random_records(500, seed=3)
        groups = str_partitions(records, dimensions=3, k=10)
        assert sum(len(g) for g in groups) == 500
        assert all(len(g) >= 10 for g in groups)
        assert all(len(g) <= 20 for g in groups)  # target 2k unless unsplittable

    def test_str_handles_duplicates(self) -> None:
        from repro.dataset.record import Record

        records = [Record(i, (5.0, 5.0, 5.0)) for i in range(100)]
        groups = str_partitions(records, dimensions=3, k=10)
        assert groups == [records]  # unsplittable -> one whole group

    def test_hilbert_bulk_load_builds_valid_tree(self) -> None:
        records = random_records(600, seed=4)
        tree = hilbert_bulk_load(
            records, (0.0,) * 3, (100.0,) * 3, k=5,
            domain_extents=(100.0,) * 3,
        )
        tree.check_invariants()
        assert len(tree) == 600

    def test_str_bulk_load_builds_valid_tree(self) -> None:
        records = random_records(600, seed=5)
        tree = str_bulk_load(records, dimensions=3, k=5, domain_extents=(100.0,) * 3)
        tree.check_invariants()
        assert len(tree) == 600
