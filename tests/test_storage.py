"""Simulated storage: pages, the paged disk, and the LRU buffer pool."""

from __future__ import annotations

import pytest

from repro.storage.buffer_pool import BufferPool
from repro.storage.page import Page
from repro.storage.pagefile import IOStats, PageFile


class TestPage:
    def test_capacity_enforced(self) -> None:
        page: Page[int] = Page(0, capacity=2)
        page.append(1)
        page.append(2)
        assert page.is_full
        with pytest.raises(OverflowError):
            page.append(3)

    def test_extend_upto_returns_leftovers(self) -> None:
        page: Page[int] = Page(0, capacity=3)
        leftovers = page.extend_upto([1, 2, 3, 4, 5])
        assert list(page) == [1, 2, 3]
        assert leftovers == [4, 5]

    def test_nonpositive_capacity_rejected(self) -> None:
        with pytest.raises(ValueError):
            Page(0, capacity=0)


class TestPageFile:
    def test_items_per_page_is_B(self) -> None:
        pagefile: PageFile[int] = PageFile(page_bytes=8192, record_bytes=36)
        assert pagefile.items_per_page == 8192 // 36

    def test_page_smaller_than_record_rejected(self) -> None:
        with pytest.raises(ValueError):
            PageFile(page_bytes=16, record_bytes=36)

    def test_read_write_counters(self) -> None:
        pagefile: PageFile[int] = PageFile(page_bytes=100, record_bytes=10)
        page = pagefile.allocate()
        assert pagefile.stats.total == 0  # allocation is free
        pagefile.write_page(page)
        pagefile.read_page(page.page_id)
        assert pagefile.stats == IOStats(reads=1, writes=1)

    def test_stats_delta(self) -> None:
        stats = IOStats(reads=5, writes=3)
        earlier = stats.snapshot()
        stats.reads += 2
        assert stats.delta(earlier) == IOStats(reads=2, writes=0)

    def test_free_releases_page(self) -> None:
        pagefile: PageFile[int] = PageFile()
        page = pagefile.allocate()
        assert pagefile.page_count == 1
        pagefile.free(page.page_id)
        assert pagefile.page_count == 0


class TestBufferPool:
    def make_pool(self, pages: int) -> tuple[PageFile[int], BufferPool[int]]:
        pagefile: PageFile[int] = PageFile(page_bytes=100, record_bytes=10)
        return pagefile, BufferPool(pagefile, memory_bytes=pages * 100)

    def test_capacity_from_memory(self) -> None:
        _pagefile, pool = self.make_pool(4)
        assert pool.capacity_pages == 4

    def test_too_small_memory_rejected(self) -> None:
        pagefile: PageFile[int] = PageFile(page_bytes=100, record_bytes=10)
        with pytest.raises(ValueError):
            BufferPool(pagefile, memory_bytes=50)

    def test_cached_access_is_free(self) -> None:
        pagefile, pool = self.make_pool(4)
        page = pool.new_page()
        pool.get(page.page_id)
        pool.get(page.page_id)
        assert pagefile.stats.reads == 0
        assert pool.hits == 2

    def test_eviction_writes_dirty_pages_only(self) -> None:
        pagefile, pool = self.make_pool(2)
        dirty = pool.new_page()  # dirty by construction
        clean_candidate = pool.new_page()
        pool.flush()  # both persisted, both now clean
        writes_after_flush = pagefile.stats.writes
        # Touch one page read-only; fill the pool so the other is evicted.
        pool.get(dirty.page_id)
        pool.new_page()  # evicts clean_candidate (LRU) — no write needed
        assert pagefile.stats.writes == writes_after_flush
        assert clean_candidate.page_id not in (dirty.page_id,)

    def test_miss_reads_from_disk(self) -> None:
        pagefile, pool = self.make_pool(1)
        first = pool.new_page()
        pool.new_page()  # evicts first (dirty -> one write)
        assert pagefile.stats.writes == 1
        pool.get(first.page_id)  # miss -> one read
        assert pagefile.stats.reads == 1
        assert pool.misses == 1

    def test_lru_order(self) -> None:
        pagefile, pool = self.make_pool(2)
        a = pool.new_page()
        b = pool.new_page()
        pool.get(a.page_id)  # a becomes most-recent
        pool.new_page()  # evicts b
        pool.get(a.page_id)
        assert pagefile.stats.reads == 0  # a stayed resident
        pool.get(b.page_id)
        assert pagefile.stats.reads == 1  # b had to come back

    def test_mark_dirty_resident_page_is_written_back(self) -> None:
        pagefile, pool = self.make_pool(2)
        page = pool.new_page()
        pool.flush()  # clean now
        page.append(1)  # in-place modification of the cached page
        pool.mark_dirty(page.page_id)
        writes = pagefile.stats.writes
        pool.flush()
        assert pagefile.stats.writes == writes + 1

    def test_mark_dirty_evicted_page_raises(self) -> None:
        # Regression: mark_dirty used to silently no-op when the page had
        # been evicted, dropping the caller's in-place modification (the
        # evicted copy was written back *before* the change).
        pagefile, pool = self.make_pool(1)
        page = pool.new_page()
        pool.new_page()  # evicts page
        page.append(1)  # modification the pool can no longer see
        with pytest.raises(KeyError, match="not resident"):
            pool.mark_dirty(page.page_id)

    def test_free_skips_writeback(self) -> None:
        pagefile, pool = self.make_pool(2)
        page = pool.new_page()
        pool.free(page.page_id)
        pool.flush()
        assert pagefile.stats.writes == 0

    def test_flush_idempotent(self) -> None:
        pagefile, pool = self.make_pool(2)
        pool.new_page()
        pool.flush()
        writes = pagefile.stats.writes
        pool.flush()
        assert pagefile.stats.writes == writes

    def test_less_memory_means_more_io_monotonically(self) -> None:
        """Shrinking the pool can only increase I/O on a fixed access trace.

        (The paper's stronger sub-2x-per-halving claim is a property of the
        buffer-tree's skewed access pattern and is checked by the Figure
        8(b) bench, not of arbitrary traces.)
        """
        import random

        rng = random.Random(0)

        def run(pool_pages: int) -> int:
            pagefile: PageFile[int] = PageFile(page_bytes=100, record_bytes=10)
            pool: BufferPool[int] = BufferPool(pagefile, memory_bytes=pool_pages * 100)
            ids = [pool.new_page().page_id for _ in range(64)]
            rng.seed(1)
            for _ in range(2_000):
                # Zipf-ish: low-numbered (upper-level) pages dominate.
                index = min(int(rng.expovariate(0.4)), 63)
                pool.get(ids[index], for_write=rng.random() < 0.3)
            pool.flush()
            return pagefile.stats.total

        totals = [run(pages) for pages in (32, 16, 8, 4)]
        assert totals == sorted(totals)
        assert totals[-1] > totals[0]
