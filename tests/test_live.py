"""Live serving telemetry: endpoint, watchdog, slow-op log, dashboard."""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro import api, obs
from repro.dataset.table import Table
from repro.obs.live import (
    DEGRADED,
    HEALTH_CODES,
    HEALTHY,
    STALLED,
    SlowOpLog,
    TelemetryConfig,
    TelemetryServer,
    WriterWatchdog,
    metric_name,
    parse_prometheus_text,
    prometheus_text,
)
from repro.obs.registry import MetricsRegistry


@pytest.fixture(autouse=True)
def _clean_global_registry():
    """Tests toggle the process-wide OBS/TRACE; always leave them off."""
    yield
    obs.disable()
    obs.reset()
    obs.TRACE.disable()
    obs.TRACE.reset()


def _fetch(url: str) -> tuple[int, bytes]:
    try:
        with urllib.request.urlopen(url, timeout=5) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        with error:
            return error.code, error.read()


class TestTelemetryConfig:
    def test_defaults_are_opt_in(self) -> None:
        config = TelemetryConfig()
        assert not config.endpoint
        assert config.slow_op_log is None

    def test_rejects_bad_sample(self) -> None:
        with pytest.raises(ValueError, match="slow_op_sample"):
            TelemetryConfig(slow_op_sample=0)

    def test_rejects_inverted_thresholds(self) -> None:
        with pytest.raises(ValueError, match="degraded_after"):
            TelemetryConfig(degraded_after=2.0, stalled_after=1.0)
        with pytest.raises(ValueError, match="degraded_after"):
            TelemetryConfig(degraded_after=0.0)


class TestWriterWatchdog:
    def test_idle_writer_is_healthy_forever(self) -> None:
        watchdog = WriterWatchdog(degraded_after=0.01, stalled_after=0.02)
        time.sleep(0.05)  # heartbeat is ancient, but nothing is pending
        assert watchdog.assess(0) == HEALTHY

    def test_pending_work_ages_into_degraded_then_stalled(self) -> None:
        watchdog = WriterWatchdog(degraded_after=0.02, stalled_after=0.06)
        assert watchdog.assess(1) == HEALTHY  # backlog just observed
        time.sleep(0.03)
        assert watchdog.assess(1) == DEGRADED
        time.sleep(0.05)
        assert watchdog.assess(1) == STALLED

    def test_beat_resets_the_clock(self) -> None:
        watchdog = WriterWatchdog(degraded_after=0.02, stalled_after=0.06)
        watchdog.assess(1)
        time.sleep(0.03)
        watchdog.beat()
        assert watchdog.assess(1) == HEALTHY

    def test_submit_to_long_idle_writer_is_not_a_stall(self) -> None:
        # The heartbeat is older than every threshold, but the backlog was
        # only just observed: health must be judged from the backlog's age.
        watchdog = WriterWatchdog(degraded_after=0.01, stalled_after=0.02)
        time.sleep(0.05)
        assert watchdog.assess(1) == HEALTHY

    def test_drain_clears_pending_age(self) -> None:
        watchdog = WriterWatchdog(degraded_after=0.02, stalled_after=0.06)
        watchdog.assess(1)
        time.sleep(0.03)
        assert watchdog.assess(0) == HEALTHY  # drained
        assert watchdog.assess(1) == HEALTHY  # new backlog starts fresh

    def test_age_tracks_beats(self) -> None:
        watchdog = WriterWatchdog()
        watchdog.beat()
        assert watchdog.age() < 0.5

    def test_rejects_bad_thresholds(self) -> None:
        with pytest.raises(ValueError):
            WriterWatchdog(degraded_after=0.0)
        with pytest.raises(ValueError):
            WriterWatchdog(degraded_after=2.0, stalled_after=1.0)


class TestSlowOpLog:
    def test_below_threshold_is_not_recorded(self, tmp_path) -> None:
        with SlowOpLog(tmp_path / "slow.jsonl", threshold=0.5) as log:
            assert not log.record("commit", 0.1)
            assert log.recorded == 0

    def test_over_threshold_entry_shape(self, tmp_path) -> None:
        path = tmp_path / "slow.jsonl"
        with SlowOpLog(path, threshold=0.1) as log:
            assert log.record("commit", 0.4, kind="insert_batch", ops=3)
        entry = json.loads(path.read_text())
        assert entry["op"] == "commit"
        assert entry["seconds"] == pytest.approx(0.4)
        assert entry["threshold"] == pytest.approx(0.1)
        assert entry["context"] == {"kind": "insert_batch", "ops": 3}
        assert "ts" in entry

    def test_sampling_keeps_every_nth(self, tmp_path) -> None:
        path = tmp_path / "slow.jsonl"
        with SlowOpLog(path, threshold=0.0, sample_every=3) as log:
            written = [log.record("op", 1.0) for _ in range(7)]
        # The first always records, then every third over-threshold op.
        assert written == [True, False, False, True, False, False, True]
        assert log.recorded == 3
        assert len(path.read_text().splitlines()) == 3

    def test_spans_attached_when_tracing(self, tmp_path) -> None:
        obs.TRACE.enable()
        with obs.TRACE.span("wal.fsync", "durability"):
            pass
        path = tmp_path / "slow.jsonl"
        with SlowOpLog(path, threshold=0.0, max_spans=4) as log:
            log.record("commit", 1.0)
        entry = json.loads(path.read_text())
        assert [span["name"] for span in entry["spans"]] == ["wal.fsync"]

    def test_counts_slow_ops_when_obs_enabled(self, tmp_path) -> None:
        obs.enable()
        with SlowOpLog(tmp_path / "slow.jsonl", threshold=0.0) as log:
            log.record("release", 1.0)
        assert obs.OBS.counter_value("serve.slow_ops") == 1

    def test_rejects_bad_sampling(self, tmp_path) -> None:
        with pytest.raises(ValueError, match="sample_every"):
            SlowOpLog(tmp_path / "slow.jsonl", sample_every=0)


class TestPrometheusText:
    def _registry_snapshot(self) -> dict[str, object]:
        registry = MetricsRegistry()
        registry.enable(declare_defaults=False)
        registry.count("serve.cache_hits", 7)
        registry.gauge("serve.queue_depth", 3)
        for value in (0.001, 0.002, 0.004, 0.4):
            registry.observe("serve.commit_seconds", value)
        return registry.snapshot()

    def test_counter_and_gauge_lines(self) -> None:
        text = prometheus_text(self._registry_snapshot())
        assert "# TYPE repro_serve_cache_hits counter" in text
        assert "repro_serve_cache_hits 7" in text
        assert "# TYPE repro_serve_queue_depth gauge" in text
        assert "repro_serve_queue_depth 3" in text
        assert text.endswith("\n")

    def test_histogram_renders_as_summary_with_quantiles(self) -> None:
        text = prometheus_text(self._registry_snapshot())
        assert "# TYPE repro_serve_commit_seconds summary" in text
        for quantile in ("0.5", "0.9", "0.99"):
            assert f'repro_serve_commit_seconds{{quantile="{quantile}"}}' in text
        assert "repro_serve_commit_seconds_count 4" in text

    def test_extra_gauges_are_merged(self) -> None:
        text = prometheus_text(
            self._registry_snapshot(), extra_gauges={"serve.health": 2}
        )
        assert "repro_serve_health 2" in text

    def test_round_trip_through_parser(self) -> None:
        snapshot = self._registry_snapshot()
        samples = parse_prometheus_text(prometheus_text(snapshot))
        assert samples[("repro_serve_cache_hits", ())] == 7
        assert samples[("repro_serve_queue_depth", ())] == 3
        p99 = samples[("repro_serve_commit_seconds", (("quantile", "0.99"),))]
        assert p99 == pytest.approx(0.4, rel=0.06)  # sketch error + clamp
        count = samples[("repro_serve_commit_seconds_count", ())]
        assert count == 4

    def test_parser_rejects_malformed_lines(self) -> None:
        with pytest.raises(ValueError):
            parse_prometheus_text("this is { not exposition format\n")

    def test_metric_name_mangling(self) -> None:
        assert metric_name("serve.telemetry.scrapes") == (
            "repro_serve_telemetry_scrapes"
        )
        assert metric_name("wal.fsync_seconds") == "repro_wal_fsync_seconds"


class TestTelemetryServer:
    def test_serves_metrics_and_health_over_http(self) -> None:
        server = TelemetryServer(
            lambda: "repro_up 1\n",
            lambda: {"status": HEALTHY, "epoch": 4},
        )
        server.start()
        try:
            host, port = server.address
            status, body = _fetch(f"http://{host}:{port}/metrics")
            assert status == 200
            assert body == b"repro_up 1\n"
            status, body = _fetch(f"http://{host}:{port}/healthz")
            assert status == 200
            assert json.loads(body) == {"status": HEALTHY, "epoch": 4}
        finally:
            server.stop()

    def test_stalled_health_is_503(self) -> None:
        server = TelemetryServer(lambda: "", lambda: {"status": STALLED})
        server.start()
        try:
            status, body = _fetch(server.url + "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == STALLED
        finally:
            server.stop()

    def test_unknown_path_is_404(self) -> None:
        server = TelemetryServer(lambda: "", lambda: {"status": HEALTHY})
        server.start()
        try:
            status, _ = _fetch(server.url + "/nope")
            assert status == 404
        finally:
            server.stop()

    def test_handler_exception_is_500_and_counted(self) -> None:
        def broken() -> str:
            raise RuntimeError("scrape me not")

        obs.enable()
        server = TelemetryServer(broken, lambda: {"status": HEALTHY})
        server.start()
        try:
            status, _ = _fetch(server.url + "/metrics")
            assert status == 500
            assert obs.OBS.counter_value("serve.telemetry.errors") == 1
        finally:
            server.stop()

    def test_stop_is_idempotent(self) -> None:
        server = TelemetryServer(lambda: "", lambda: {"status": HEALTHY})
        server.start()
        server.stop()
        server.stop()


class TestServiceTelemetry:
    """The telemetry endpoint wired through a live AnonymizerService."""

    @pytest.fixture()
    def served(self, small_table: Table):
        obs.enable()
        service = api.serve(
            small_table.schema,
            service_config=api.ServiceConfig(
                telemetry=TelemetryConfig(endpoint=True)
            ),
        )
        service.insert_batch(list(small_table.records))
        service.release(k=5)
        yield service
        service.close()

    def test_healthz_reports_queue_cache_and_epoch(self, served) -> None:
        status, body = _fetch(served.telemetry_url + "/healthz")
        assert status == 200
        health = json.loads(body)
        assert health["status"] == HEALTHY
        assert health["epoch"] == served.epoch
        assert health["queue_depth"] == 0
        assert health["backpressure"] == 0.0
        assert health["cache"]["misses"] >= 1
        assert 0.0 <= health["cache"]["hit_ratio"] <= 1.0

    def test_metrics_parse_and_carry_quantiles(self, served) -> None:
        status, body = _fetch(served.telemetry_url + "/metrics")
        assert status == 200
        samples = parse_prometheus_text(body.decode("utf-8"))
        assert samples[("repro_serve_epoch", ())] == served.epoch
        assert samples[("repro_serve_health", ())] == HEALTH_CODES[HEALTHY]
        for histogram in ("commit_seconds", "queue_wait_seconds"):
            for quantile in ("0.5", "0.9", "0.99"):
                key = (f"repro_serve_{histogram}", (("quantile", quantile),))
                assert key in samples

    def test_scrapes_and_health_checks_are_counted(self, served) -> None:
        before = obs.OBS.counter_value("serve.telemetry.scrapes")
        _fetch(served.telemetry_url + "/metrics")
        _fetch(served.telemetry_url + "/healthz")
        assert obs.OBS.counter_value("serve.telemetry.scrapes") == before + 1
        assert obs.OBS.counter_value("serve.telemetry.health_checks") >= 1

    def test_every_served_metric_was_declared(self, served) -> None:
        # A typo'd metric name materializes only at its emit site; after a
        # full served round-trip every collected name must be declared.
        _fetch(served.telemetry_url + "/metrics")
        undeclared = obs.OBS.undeclared()
        assert undeclared == {"counters": [], "gauges": [], "histograms": []}

    def test_no_endpoint_without_opt_in(self, small_table: Table) -> None:
        with api.serve(small_table.schema) as service:
            assert service.telemetry_url is None
            assert service.telemetry_address is None
            assert service.health()["status"] == HEALTHY

    def test_slow_op_log_records_served_operations(
        self, small_table: Table, tmp_path
    ) -> None:
        path = tmp_path / "slow.jsonl"
        with api.serve(
            small_table.schema,
            service_config=api.ServiceConfig(
                telemetry=TelemetryConfig(
                    slow_op_log=path, slow_op_threshold=0.0
                )
            ),
        ) as service:
            service.insert_batch(list(small_table.records))
            service.release(k=5)
            assert service.slow_op_log is not None
            assert service.slow_op_log.recorded >= 2  # commit + release
        ops = {json.loads(line)["op"] for line in path.read_text().splitlines()}
        assert {"commit", "release"} <= ops

    def test_telemetry_failure_never_strands_a_writer(
        self, small_table: Table, tmp_path, capsys
    ) -> None:
        path = tmp_path / "slow.jsonl"
        with api.serve(
            small_table.schema,
            service_config=api.ServiceConfig(
                telemetry=TelemetryConfig(
                    slow_op_log=path, slow_op_threshold=0.0
                )
            ),
        ) as service:
            service.slow_op_log.close()  # sabotage: sink dies mid-serve
            service.insert_batch(list(small_table.records))  # must not hang
            service.release(k=5)
            assert service.health()["status"] == HEALTHY
        assert "slow-op log failed" in capsys.readouterr().err


class TestStalledWatchdog:
    def test_frozen_writer_flips_health_to_stalled(
        self, small_table: Table
    ) -> None:
        """Fault injection: freeze the writer mid-apply, watch health decay."""
        service = api.serve(
            small_table.schema,
            service_config=api.ServiceConfig(
                telemetry=TelemetryConfig(
                    endpoint=True, degraded_after=0.05, stalled_after=0.15
                )
            ),
        )
        frozen = threading.Event()
        release_writer = threading.Event()
        original = service.engine.insert_batch

        def freezing_insert_batch(records):
            frozen.set()
            release_writer.wait(timeout=10)
            return original(records)

        service.engine.insert_batch = freezing_insert_batch
        try:
            future = service.submit_insert_batch(list(small_table.records))
            assert frozen.wait(timeout=5)
            deadline = time.monotonic() + 5
            while time.monotonic() < deadline:
                if service.health()["status"] == STALLED:
                    break
                time.sleep(0.02)
            assert service.health()["status"] == STALLED
            status, body = _fetch(service.telemetry_url + "/healthz")
            assert status == 503
            assert json.loads(body)["status"] == STALLED
        finally:
            release_writer.set()
        future.result(timeout=10)
        deadline = time.monotonic() + 5
        while time.monotonic() < deadline:
            if service.health()["status"] == HEALTHY:
                break
            time.sleep(0.02)
        assert service.health()["status"] == HEALTHY  # recovered after thaw
        service.close()
