"""Schemas, records, tables and binary record I/O."""

from __future__ import annotations

import pytest

from repro.dataset.io import RecordFileReader, RecordFileWriter, read_table, write_table
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.dataset.table import Table
from tests.conftest import random_records


class TestSchema:
    def test_numeric_attribute(self) -> None:
        attribute = Attribute.numeric("age", 0, 120)
        assert attribute.kind is AttributeKind.NUMERIC
        assert attribute.domain_extent == 120

    def test_categorical_from_values(self) -> None:
        attribute = Attribute.categorical("sex", ["F", "M"])
        assert attribute.kind is AttributeKind.CATEGORICAL
        assert attribute.domain_low == 0
        assert attribute.domain_high == 1
        assert attribute.hierarchy is not None

    def test_categorical_needs_values_or_hierarchy(self) -> None:
        with pytest.raises(ValueError):
            Attribute.categorical("sex")

    def test_inverted_domain_rejected(self) -> None:
        with pytest.raises(ValueError):
            Attribute.numeric("age", 10, 0)

    def test_schema_lookup(self, schema3: Schema) -> None:
        assert schema3.dimensions == 3
        assert schema3.index_of("b") == 1
        assert schema3.attribute("c").name == "c"
        with pytest.raises(KeyError):
            schema3.index_of("missing")

    def test_duplicate_names_rejected(self) -> None:
        with pytest.raises(ValueError):
            Schema((Attribute.numeric("a", 0, 1), Attribute.numeric("a", 0, 1)))

    def test_empty_schema_rejected(self) -> None:
        with pytest.raises(ValueError):
            Schema(())

    def test_domain_vectors(self, schema3: Schema) -> None:
        assert schema3.domain_lows() == (0.0, 0.0, 0.0)
        assert schema3.domain_highs() == (100.0, 100.0, 100.0)


class TestTable:
    def test_append_validates_dimensions(self, schema3: Schema) -> None:
        table = Table(schema3)
        with pytest.raises(ValueError):
            table.append(Record(0, (1.0, 2.0)))

    def test_from_points_assigns_rids(self, schema3: Schema) -> None:
        table = Table.from_points(schema3, [(1, 2, 3), (4, 5, 6)])
        assert [record.rid for record in table] == [0, 1]

    def test_from_points_with_sensitive(self, schema3: Schema) -> None:
        table = Table.from_points(schema3, [(1, 2, 3)], sensitive=[("flu",)])
        assert table[0].sensitive == ("flu",)

    def test_extent_and_ranges(self, schema3: Schema) -> None:
        table = Table.from_points(schema3, [(0, 5, 9), (4, 5, 1)])
        assert table.extent().lows == (0.0, 5.0, 1.0)
        assert table.attribute_ranges() == (4.0, 0.0, 8.0)

    def test_extent_of_empty_rejected(self, schema3: Schema) -> None:
        with pytest.raises(ValueError):
            Table(schema3).extent()

    def test_sample_is_reproducible(self, small_table: Table) -> None:
        a = small_table.sample(50, seed=3)
        b = small_table.sample(50, seed=3)
        assert [r.rid for r in a] == [r.rid for r in b]
        assert len({r.rid for r in a}) == 50

    def test_sample_too_large_rejected(self, small_table: Table) -> None:
        with pytest.raises(ValueError):
            small_table.sample(10_000)

    def test_batches_cover_everything_in_order(self, small_table: Table) -> None:
        batches = list(small_table.batches(64))
        assert [len(batch) for batch in batches] == [64, 64, 64, 8]
        flattened = [record.rid for batch in batches for record in batch]
        assert flattened == [record.rid for record in small_table]

    def test_batches_rejects_nonpositive(self, small_table: Table) -> None:
        with pytest.raises(ValueError):
            list(small_table.batches(0))

    def test_head(self, small_table: Table) -> None:
        assert [r.rid for r in small_table.head(3)] == [0, 1, 2]


class TestRecordIO:
    def test_round_trip(self, tmp_path, schema3: Schema) -> None:
        table = Table(schema3, random_records(500, seed=9))
        path = tmp_path / "data.rec"
        assert write_table(table, path) == 500
        loaded = read_table(path, schema3)
        assert len(loaded) == 500
        assert loaded.points() == table.points()

    def test_reader_metadata(self, tmp_path) -> None:
        path = tmp_path / "data.rec"
        with RecordFileWriter(path, dimensions=9) as writer:
            assert writer.record_bytes == 36  # the paper's synthetic width
            writer.write_point((1,) * 9)
        reader = RecordFileReader(path)
        assert reader.dimensions == 9
        assert len(reader) == 1

    def test_landsend_width_is_32_bytes(self, tmp_path) -> None:
        with RecordFileWriter(tmp_path / "x.rec", dimensions=8) as writer:
            assert writer.record_bytes == 32  # the paper's Lands End width

    def test_batched_iteration_matches(self, tmp_path, schema3: Schema) -> None:
        table = Table(schema3, random_records(1000, seed=4))
        path = tmp_path / "data.rec"
        write_table(table, path)
        reader = RecordFileReader(path)
        small_batches = list(reader.iter_points(batch_size=7))
        assert small_batches == table.points()

    def test_bad_magic_rejected(self, tmp_path) -> None:
        path = tmp_path / "junk.rec"
        path.write_bytes(b"NOPE" + b"\x00" * 20)
        with pytest.raises(ValueError):
            RecordFileReader(path)

    def test_truncated_header_rejected(self, tmp_path) -> None:
        path = tmp_path / "tiny.rec"
        path.write_bytes(b"RP")
        with pytest.raises(ValueError):
            RecordFileReader(path)

    def test_read_table_synthesizes_schema(self, tmp_path, schema3: Schema) -> None:
        table = Table(schema3, random_records(50, seed=5))
        path = tmp_path / "data.rec"
        write_table(table, path)
        loaded = read_table(path)
        assert loaded.schema.dimensions == 3
        assert len(loaded) == 50

    def test_iter_records_assigns_rids(self, tmp_path, schema3: Schema) -> None:
        table = Table(schema3, random_records(10, seed=6))
        path = tmp_path / "data.rec"
        write_table(table, path)
        records = list(RecordFileReader(path).iter_records(first_rid=100))
        assert [record.rid for record in records] == list(range(100, 110))

    def test_truncated_body_rejected_at_open(self, tmp_path, schema3: Schema) -> None:
        """Header claims more records than the bytes on disk can hold."""
        table = Table(schema3, random_records(100, seed=7))
        path = tmp_path / "data.rec"
        write_table(table, path)
        data = path.read_bytes()
        # Chop the last 1.5 records off the body; the header still says 100.
        path.write_bytes(data[: len(data) - 18])
        with pytest.raises(ValueError, match="header claims 100 records"):
            RecordFileReader(path)

    def test_truncation_error_names_offending_offset(
        self, tmp_path, schema3: Schema
    ) -> None:
        table = Table(schema3, random_records(10, seed=7))
        path = tmp_path / "data.rec"
        write_table(table, path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 12])  # exactly one record short
        with pytest.raises(ValueError) as excinfo:
            RecordFileReader(path)
        # 12-byte header + 9 whole 12-byte records.
        assert "byte offset 120" in str(excinfo.value)

    def test_shrink_during_iteration_rejected(
        self, tmp_path, schema3: Schema
    ) -> None:
        """A file truncated after open fails loudly, never short-reads."""
        table = Table(schema3, random_records(100, seed=8))
        path = tmp_path / "data.rec"
        write_table(table, path)
        reader = RecordFileReader(path)
        data = path.read_bytes()
        path.write_bytes(data[: len(data) - 240])  # drop the last 20 records
        stream = reader.iter_points(batch_size=16)
        consumed = [next(stream) for _ in range(64)]
        assert len(consumed) == 64
        with pytest.raises(ValueError, match="short read at byte offset"):
            list(stream)

    def test_valid_slices_still_stream(self, tmp_path, schema3: Schema) -> None:
        table = Table(schema3, random_records(200, seed=9))
        path = tmp_path / "data.rec"
        write_table(table, path)
        reader = RecordFileReader(path)
        middle = list(reader.iter_points(batch_size=17, start=50, count=100))
        assert middle == table.points()[50:150]
        with pytest.raises(ValueError, match="outside the file"):
            list(reader.iter_points(start=150, count=100))
