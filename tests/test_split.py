"""Split policies: thresholds, objectives, bias, weighting, exhaustiveness."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.dataset.record import Record
from repro.index.split import (
    BiasedSplitPolicy,
    ExhaustiveSplitPolicy,
    MidpointSplitPolicy,
    MinMarginSplitPolicy,
    WeightedSplitPolicy,
    best_threshold,
    candidate_thresholds,
    exhaustive_ncp_split,
    exhaustive_ncp_split_small,
    group_margin,
    partition_records,
    widest_dimensions,
)


def records_from(points: list[tuple[float, ...]]) -> list[Record]:
    return [Record(i, p) for i, p in enumerate(points)]


class TestThresholds:
    def test_balanced_threshold_at_median(self) -> None:
        assert best_threshold([1, 2, 3, 4, 5, 6], 2) == (3, 3)

    def test_too_few_values(self) -> None:
        assert best_threshold([1, 2, 3], 2) is None

    def test_single_distinct_value(self) -> None:
        assert best_threshold([7, 7, 7, 7], 2) is None

    def test_duplicates_respect_min_count(self) -> None:
        # Only the boundary after the three 1s leaves 2+ on both sides.
        assert best_threshold([1, 1, 1, 9, 9], 2) == (1, 3)

    def test_no_legal_boundary_with_heavy_duplicates(self) -> None:
        assert best_threshold([1, 9, 9, 9], 2) is None

    def test_candidates_include_widest_gap(self) -> None:
        values = [1, 2, 3, 50, 51, 52]
        candidates = candidate_thresholds(values, 1)
        assert (3, 3) in candidates  # balanced == widest gap here
        values = [1, 2, 3, 4, 5, 100]
        candidates = candidate_thresholds(values, 1)
        assert candidates[0] == (3, 3)  # balanced first
        assert (5, 5) in candidates  # gap 5 -> 100


class TestPartitioning:
    def test_partition_records(self) -> None:
        records = records_from([(1, 0), (5, 0), (9, 0)])
        left, right = partition_records(records, 0, 5)
        assert [r.rid for r in left] == [0, 1]
        assert [r.rid for r in right] == [2]

    def test_group_margin_normalizes(self) -> None:
        records = records_from([(0, 0), (10, 40)])
        assert group_margin(records, (100, 100)) == pytest.approx(0.5)
        assert group_margin(records, (100, 0)) == pytest.approx(0.1)
        assert group_margin([], (100, 100)) == 0.0

    def test_group_margin_weighted(self) -> None:
        records = records_from([(0, 0), (10, 40)])
        assert group_margin(records, (100, 100), (2.0, 1.0)) == pytest.approx(0.6)

    def test_widest_dimensions(self) -> None:
        records = records_from([(0, 0, 0), (1, 50, 9)])
        assert widest_dimensions(records, (100, 100, 100), 2) == [1, 2]


class TestMinMargin:
    def test_respects_min_count(self) -> None:
        records = records_from([(float(i),) for i in range(10)])
        decision = MinMarginSplitPolicy().choose_split(records, 4, (10.0,))
        assert decision is not None
        assert decision.left_count >= 4 and decision.right_count >= 4

    def test_prefers_gap_dimension(self) -> None:
        # Dimension 1 splits the data into two tight clusters (0 vs 90,
        # alternating with dimension 0, so the cuts are not equivalent);
        # cutting dimension 0 would leave both sides spanning the full
        # dimension-1 extent.
        points = [(float(i), 0.0 if i % 2 == 0 else 90.0) for i in range(10)]
        decision = MinMarginSplitPolicy(max_dimensions=None).choose_split(
            records_from(points), 2, (100.0, 100.0)
        )
        assert decision is not None
        assert decision.dimension == 1

    def test_none_when_unsplittable(self) -> None:
        records = records_from([(5.0, 5.0)] * 8)
        assert MinMarginSplitPolicy().choose_split(records, 2, (10.0, 10.0)) is None

    def test_axis_preselection_matches_full_search_often(self) -> None:
        import random

        rng = random.Random(0)
        full = MinMarginSplitPolicy(max_dimensions=None)
        limited = MinMarginSplitPolicy(max_dimensions=2)
        agreements = 0
        for _ in range(20):
            records = records_from(
                [tuple(float(rng.randint(0, 50)) for _ in range(3)) for _ in range(16)]
            )
            a = full.choose_split(records, 4, (50.0,) * 3)
            b = limited.choose_split(records, 4, (50.0,) * 3)
            assert (a is None) == (b is None)
            if a is not None and a == b:
                agreements += 1
        assert agreements >= 12  # preselection rarely changes the winner

    def test_invalid_max_dimensions(self) -> None:
        with pytest.raises(ValueError):
            MinMarginSplitPolicy(max_dimensions=0)


class TestExhaustiveEquivalence:
    @given(
        st.lists(
            st.tuples(st.integers(0, 30), st.integers(0, 30)),
            min_size=8,
            max_size=40,
        )
    )
    def test_numpy_and_python_paths_agree(self, points: list[tuple[int, int]]) -> None:
        records = records_from([(float(a), float(b)) for a, b in points])
        extents = (30.0, 30.0)
        a = exhaustive_ncp_split(records, 3, extents, None, range(2))
        b = exhaustive_ncp_split_small(records, 3, extents, None, range(2))
        assert (a is None) == (b is None)
        if a is not None:
            # Both search the same space; scores tie -> cuts may differ,
            # so compare the achieved objective, not the cut itself.
            def score(decision) -> float:
                left, right = partition_records(
                    records, decision.dimension, decision.value
                )
                return len(left) * group_margin(left, extents) + len(
                    right
                ) * group_margin(right, extents)

            assert score(a) == pytest.approx(score(b))

    @given(
        st.lists(
            st.tuples(st.integers(0, 4), st.integers(0, 4)),
            min_size=4,
            max_size=32,
        ),
        st.integers(1, 4),
    )
    def test_paths_agree_exactly_on_tie_heavy_dyadic_inputs(
        self, points: list[tuple[int, int]], min_count: int
    ) -> None:
        """With power-of-two domain extents and integer coordinates every
        margin is a dyadic rational well inside float53, so the two paths'
        scores — accumulated in different association orders — are exact
        and the *decisions* (not just the objectives) must coincide.  The
        tiny value alphabet makes duplicate runs, the case where skipping
        intra-run boundaries must agree between the mask arithmetic and
        the sweep's equality check."""
        records = records_from([(float(a), float(b)) for a, b in points])
        extents = (4.0, 4.0)
        a = exhaustive_ncp_split(records, min_count, extents, None, range(2))
        b = exhaustive_ncp_split_small(records, min_count, extents, None, range(2))
        assert a == b

    def test_duplicates_on_one_dimension_force_the_other(self) -> None:
        records = records_from(
            [(7.0, float(value)) for value in (0, 0, 1, 1, 8, 8)]
        )
        extents = (8.0, 8.0)
        a = exhaustive_ncp_split(records, 2, extents, None, range(2))
        b = exhaustive_ncp_split_small(records, 2, extents, None, range(2))
        assert a == b
        assert a is not None and a.dimension == 1

    def test_no_legal_boundary_returns_none_on_both_paths(self) -> None:
        # Four identical records, and a duplicate pattern too tight for
        # min_count=3 on either side — both paths must refuse both.
        for rows in (
            [(2.0, 2.0)] * 4,
            [(1.0, 0.0), (1.0, 0.0), (9.0, 0.0), (9.0, 0.0), (9.0, 0.0)],
        ):
            records = records_from(rows)
            assert exhaustive_ncp_split(records, 3, (9.0, 9.0), None, range(2)) is None
            assert (
                exhaustive_ncp_split_small(records, 3, (9.0, 9.0), None, range(2))
                is None
            )

    @given(
        st.lists(
            st.tuples(st.integers(0, 16), st.integers(0, 16)),
            min_size=6,
            max_size=24,
        )
    )
    def test_weighted_paths_agree_exactly_on_dyadic_inputs(
        self, points: list[tuple[int, int]]
    ) -> None:
        records = records_from([(float(a), float(b)) for a, b in points])
        extents = (16.0, 16.0)
        weights = (2.0, 0.5)  # powers of two keep the arithmetic exact
        a = exhaustive_ncp_split(records, 2, extents, weights, range(2))
        b = exhaustive_ncp_split_small(records, 2, extents, weights, range(2))
        assert a == b

    def test_exhaustive_policy_wrapper(self) -> None:
        records = records_from([(float(i), 0.0) for i in range(12)])
        decision = ExhaustiveSplitPolicy().choose_split(records, 3, (12.0, 12.0))
        assert decision is not None
        assert decision.dimension == 0


class TestMidpoint:
    def test_cuts_widest_dimension(self) -> None:
        points = [(float(i), float(i * 10)) for i in range(10)]
        decision = MidpointSplitPolicy().choose_split(
            records_from(points), 2, (100.0, 100.0)
        )
        assert decision is not None
        assert decision.dimension == 1

    def test_falls_back_when_widest_unusable(self) -> None:
        # Dimension 1 is widest but all-duplicate save one value.
        points = [(float(i), 0.0) for i in range(9)] + [(9.0, 90.0)]
        decision = MidpointSplitPolicy().choose_split(
            records_from(points), 3, (100.0, 100.0)
        )
        assert decision is not None
        assert decision.dimension == 0


class TestBiased:
    def test_always_cuts_preferred_dimension(self) -> None:
        import random

        rng = random.Random(1)
        policy = BiasedSplitPolicy([1])
        for _ in range(10):
            records = records_from(
                [tuple(float(rng.randint(0, 50)) for _ in range(3)) for _ in range(12)]
            )
            decision = policy.choose_split(records, 3, (50.0,) * 3)
            if decision is not None:
                assert decision.dimension == 1

    def test_fallback_when_preferred_unusable(self) -> None:
        points = [(float(i), 7.0) for i in range(10)]
        decision = BiasedSplitPolicy([1]).choose_split(
            records_from(points), 2, (10.0, 10.0)
        )
        assert decision is not None
        assert decision.dimension == 0

    def test_empty_preferences_rejected(self) -> None:
        with pytest.raises(ValueError):
            BiasedSplitPolicy([])


class TestWeighted:
    def test_high_weight_attracts_cut(self) -> None:
        # The two dimensions are uncorrelated permutations of 0..9, so
        # cutting one leaves the other's extent wide; the x10 weight makes
        # shrinking dimension 1 the profitable choice.
        points = [(float(i), float(i * 7 % 10)) for i in range(10)]
        decision = WeightedSplitPolicy([1.0, 10.0]).choose_split(
            records_from(points), 2, (10.0, 10.0)
        )
        assert decision is not None
        assert decision.dimension == 1

    def test_weight_one_matches_min_margin(self) -> None:
        import random

        rng = random.Random(2)
        weighted = WeightedSplitPolicy([1.0, 1.0])
        plain = MinMarginSplitPolicy(max_dimensions=None)
        for _ in range(10):
            records = records_from(
                [tuple(float(rng.randint(0, 50)) for _ in range(2)) for _ in range(14)]
            )
            assert weighted.choose_split(records, 3, (50.0, 50.0)) == plain.choose_split(
                records, 3, (50.0, 50.0)
            )

    def test_negative_weights_rejected(self) -> None:
        with pytest.raises(ValueError):
            WeightedSplitPolicy([-1.0])

    def test_wrong_weight_count_rejected(self) -> None:
        records = records_from([(1.0, 2.0)] * 6)
        with pytest.raises(ValueError):
            WeightedSplitPolicy([1.0]).choose_split(records, 2, (10.0, 10.0))
