"""Write-ahead log: framing, validation, group commit, corruption."""

from __future__ import annotations

import struct

import pytest

from repro.dataset.record import Record
from repro.durability.errors import WalCorruption
from repro.durability.wal import (
    WAL_MAGIC,
    WriteAheadLog,
    read_wal,
)


def sample_record(rid: int = 1) -> Record:
    return Record(rid, (1.5, 2.5, 3.5), ("flu",))


def test_round_trip_all_op_kinds(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
        wal.append_delete(2, (4.0, 5.0, 6.0))
        wal.append_update(3, (7.0, 8.0, 9.0), sample_record(3))
        wal.append_insert(sample_record(4), batched=True)
        wal.append_batch_commit(1)
    scan = read_wal(path)
    kinds = [op.kind for op in scan.ops]
    assert kinds == ["insert", "delete", "update", "insert", "batch_commit"]
    assert scan.ops[0].record == sample_record(1)
    assert not scan.ops[0].batched
    assert scan.ops[1].rid == 2
    assert scan.ops[1].point == (4.0, 5.0, 6.0)
    assert scan.ops[2].record == sample_record(3)
    assert scan.ops[3].batched
    assert scan.ops[4].count == 1
    assert [op.lsn for op in scan.ops] == [1, 2, 3, 4, 5]
    assert scan.last_lsn == 5


def test_start_lsn_continues_numbering(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path, start_lsn=40) as wal:
        assert wal.append_insert(sample_record()) == 41
    scan = read_wal(path)
    assert scan.start_lsn == 40
    assert scan.ops[0].lsn == 41


def test_open_existing_appends_after_tail(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
    with WriteAheadLog.open_existing(path) as wal:
        assert wal.lsn == 1
        wal.append_insert(sample_record(2))
    scan = read_wal(path)
    assert [op.lsn for op in scan.ops] == [1, 2]


def test_empty_wal_scans_clean(tmp_path):
    path = tmp_path / "wal.log"
    WriteAheadLog(path).close()
    scan = read_wal(path)
    assert scan.ops == ()
    assert scan.last_lsn == 0


def test_bad_magic_raises(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"NOPE" + bytes(12))
    with pytest.raises(WalCorruption, match="bad magic"):
        read_wal(path)


def test_truncated_header_raises(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(WAL_MAGIC)
    with pytest.raises(WalCorruption, match="shorter than the WAL header"):
        read_wal(path)


def test_torn_tail_strict_raises_lenient_discards(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
        wal.append_insert(sample_record(2))
    data = path.read_bytes()
    path.write_bytes(data[:-5])  # tear the final frame mid-payload
    with pytest.raises(WalCorruption, match="truncated frame payload"):
        read_wal(path)
    scan = read_wal(path, allow_torn_tail=True)
    assert [op.lsn for op in scan.ops] == [1]


def test_mid_file_corruption_raises_even_lenient(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
        first_end = path.stat().st_size
        wal.append_insert(sample_record(2))
    data = bytearray(path.read_bytes())
    # Flip a bit inside the *first* frame's payload: the intact second
    # frame after it proves this is damage, not a crash-interrupted append.
    data[24] ^= 0x40
    path.write_bytes(bytes(data))
    assert first_end < len(data)
    with pytest.raises(WalCorruption):
        read_wal(path, allow_torn_tail=True)


def test_bit_flip_detected_by_crc(tmp_path):
    path = tmp_path / "wal.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
    data = bytearray(path.read_bytes())
    data[-3] ^= 0x01
    path.write_bytes(bytes(data))
    with pytest.raises(WalCorruption, match="CRC mismatch"):
        read_wal(path)


def test_out_of_order_lsn_raises(tmp_path):
    path = tmp_path / "a.log"
    other = tmp_path / "b.log"
    with WriteAheadLog(path) as wal:
        wal.append_insert(sample_record(1))
    with WriteAheadLog(other, start_lsn=10) as wal:
        wal.append_insert(sample_record(2))
    # Graft a frame numbered 11 after a frame numbered 1.
    header_size = struct.calcsize("<4sHQ")
    spliced = path.read_bytes() + other.read_bytes()[header_size:]
    path.write_bytes(spliced)
    with pytest.raises(WalCorruption, match="out of order"):
        read_wal(path)


def test_group_commit_window_batches_fsyncs(tmp_path):
    from repro.storage.pagefile import IOStats

    per_op = IOStats()
    with WriteAheadLog(tmp_path / "a.log", io_stats=per_op) as wal:
        for rid in range(8):
            wal.append_insert(sample_record(rid))
    grouped = IOStats()
    with WriteAheadLog(
        tmp_path / "b.log", group_commit_window=60.0, io_stats=grouped
    ) as wal:
        for rid in range(8):
            wal.append_insert(sample_record(rid))
    # Window 0: one fsync per acknowledged append (plus the header sync).
    assert per_op.fsyncs == 9
    # A wide window: the header sync plus one close-time flush.
    assert grouped.fsyncs == 2


def test_batch_members_defer_sync_to_commit(tmp_path):
    from repro.storage.pagefile import IOStats

    stats = IOStats()
    with WriteAheadLog(tmp_path / "wal.log", io_stats=stats) as wal:
        after_header = stats.fsyncs
        for rid in range(10):
            wal.append_insert(sample_record(rid), batched=True)
        assert stats.fsyncs == after_header  # members alone never sync
        wal.append_batch_commit(10)
        assert stats.fsyncs == after_header + 1


def test_wal_counters_metered(tmp_path):
    from repro import obs

    obs.enable()
    try:
        with WriteAheadLog(tmp_path / "wal.log") as wal:
            wal.append_insert(sample_record(1))
            wal.append_delete(2, (1.0, 2.0, 3.0))
        assert obs.OBS.counter_value("wal.appends") == 2
        assert obs.OBS.counter_value("wal.bytes") > 0
        assert obs.OBS.counter_value("wal.fsyncs") >= 2
    finally:
        obs.disable()
