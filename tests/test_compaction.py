"""The compaction procedure (§4)."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.core.compaction import (
    compact_categorical,
    compact_partitions,
    compact_table,
    compact_value_set,
    describe_partition,
)
from repro.core.partition import AnonymizedTable, Partition
from repro.dataset.record import Record
from repro.dataset.schema import Attribute, AttributeKind, Schema
from repro.geometry.box import Box
from repro.hierarchy.tree import GeneralizationHierarchy


def loose_partition(points: list[tuple[float, float]]) -> Partition:
    records = tuple(Record(i, p) for i, p in enumerate(points))
    return Partition(records, Box((0.0, 0.0), (100.0, 100.0)))


class TestCompaction:
    def test_shrinks_to_mbr(self) -> None:
        partition = loose_partition([(10.0, 20.0), (30.0, 25.0)])
        (compacted,) = compact_partitions([partition])
        assert compacted.box == Box((10.0, 20.0), (30.0, 25.0))
        assert compacted.records == partition.records

    def test_never_enlarges(self) -> None:
        partition = loose_partition([(10.0, 20.0), (30.0, 25.0)])
        (compacted,) = compact_partitions([partition])
        assert partition.box.contains_box(compacted.box)

    def test_idempotent(self) -> None:
        partition = loose_partition([(10.0, 20.0), (30.0, 25.0)])
        once = compact_partitions([partition])
        twice = compact_partitions(once)
        assert [p.box for p in once] == [p.box for p in twice]

    def test_membership_untouched(self) -> None:
        """Compaction changes descriptions, never groupings — hence the
        Figure 10(a) result that discernibility cannot see it."""
        partitions = [
            loose_partition([(1.0, 1.0), (2.0, 2.0)]),
            loose_partition([(50.0, 50.0), (60.0, 60.0), (70.0, 70.0)]),
        ]
        compacted = compact_partitions(partitions)
        assert [p.rids() for p in compacted] == [p.rids() for p in partitions]
        assert [len(p) for p in compacted] == [2, 3]

    def test_compact_table(self) -> None:
        schema = Schema(
            (Attribute.numeric("x", 0, 100), Attribute.numeric("y", 0, 100))
        )
        table = AnonymizedTable(schema, [loose_partition([(5.0, 5.0), (6.0, 8.0)])])
        compacted = compact_table(table)
        assert compacted.partitions[0].box == Box((5.0, 5.0), (6.0, 8.0))
        assert compacted.schema is schema

    @given(
        st.lists(
            st.tuples(st.integers(0, 100), st.integers(0, 100)),
            min_size=1,
            max_size=20,
        )
    )
    def test_compacted_box_is_minimal(self, points) -> None:
        partition = loose_partition([(float(x), float(y)) for x, y in points])
        (compacted,) = compact_partitions([partition])
        # Minimality: every face of the box touches some record.
        for dimension in range(2):
            values = [r.point[dimension] for r in compacted.records]
            assert compacted.box.lows[dimension] == min(values)
            assert compacted.box.highs[dimension] == max(values)


class TestCategoricalCompaction:
    def test_value_set_drops_absent_values(self) -> None:
        assert compact_value_set(["flu", "flu", "cold"]) == frozenset({"flu", "cold"})

    def test_lca_generalization(self) -> None:
        hierarchy = GeneralizationHierarchy.from_spec(
            "*", {"respiratory": ["flu", "cold"], "trauma": ["acl", "whiplash"]}
        )
        assert compact_categorical(["flu", "cold"], hierarchy).label == "respiratory"
        assert compact_categorical(["flu", "acl"], hierarchy).label == "*"

    def test_describe_partition_renders_hierarchy(self) -> None:
        hierarchy = GeneralizationHierarchy.from_spec(
            "*", {"north": ["53706", "53715"], "south": ["73301", "73302"]}
        )
        schema = Schema(
            (
                Attribute.numeric("age", 0, 100),
                Attribute(
                    "zip",
                    AttributeKind.CATEGORICAL,
                    0,
                    3,
                    hierarchy=hierarchy,
                ),
            )
        )
        # Codes 0..1 are the two "north" leaves under the DFS ordering.
        records = (Record(0, (20.0, 0.0)), Record(1, (30.0, 1.0)))
        partition = Partition(records, Box((20.0, 0.0), (30.0, 1.0)))
        rendered = describe_partition(partition, schema)
        assert rendered == ["[20 - 30]", "north"]

    def test_describe_degenerate_numeric(self) -> None:
        schema = Schema((Attribute.numeric("age", 0, 100),))
        partition = Partition((Record(0, (42.0,)),), Box((42.0,), (42.0,)))
        assert describe_partition(partition, schema) == ["42"]
