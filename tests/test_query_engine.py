"""Differential suite for the pushdown query engine (§5.4 semantics).

The engine's contract is *bit-identity*: every answer produced through
the packed aggregate R-tree — point lookups, range COUNTs, group-by
aggregates, distinct counts — must equal the leaf-scan oracle
(:func:`repro.query.ranges.count_anonymized`) exactly, never
approximately.  The tier-1 cells check the engine, the serving wire-up,
and one single-vs-cluster parity cell; the ``stress`` grid sweeps
{census, agrawal} x k {5, 25} x workload shape, the shard grid, and an
8-reader-vs-live-writer run where every answer must be reproducible
against the exact release snapshot whose digest it carries.
"""

from __future__ import annotations

import threading

import pytest

from repro.cluster import ClusterConfig, ShardedCluster
from repro.core.anonymizer import RTreeAnonymizer
from repro.geometry.box import Box
from repro.dataset.agrawal import make_agrawal_table
from repro.dataset.census import make_census_table
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.query.engine import QueryEngine, group_by_queries, point_query
from repro.query.ranges import (
    count_anonymized,
    count_anonymized_bulk,
    count_original,
)
from repro.query.workload import random_range_workload, single_attribute_workload
from repro.serve import AnonymizerService

QUERIES = 40


def _make_table(dataset: str, records: int, seed: int) -> Table:
    if dataset == "census":
        return make_census_table(records, seed=seed)
    if dataset == "agrawal":
        return make_agrawal_table(records, seed=seed)
    raise AssertionError(dataset)


def _workload(table: Table, shape: str, seed: int):
    if shape == "random_range":
        return random_range_workload(table, QUERIES, seed=seed)
    if shape == "single_attribute":
        attribute = table.schema.quasi_identifiers[0].name
        return single_attribute_workload(table, attribute, QUERIES, seed=seed)
    raise AssertionError(shape)


def _check_cell(dataset: str, records: int, k: int, shape: str, seed: int) -> None:
    """One grid cell: engine == scalar oracle == bulk oracle, exactly."""
    table = _make_table(dataset, records, seed)
    engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
    with AnonymizerService(engine_core) as service:
        service.insert_batch(table)
        workload = _workload(table, shape, seed + 1)
        result = service.query(workload, k=k)
        snapshot = service.release(k)
        assert result.digest == snapshot.digest
        assert result.epoch == snapshot.epoch
        oracle = count_anonymized_bulk(workload, snapshot.table)
        assert list(result.values) == [int(value) for value in oracle]
        # Spot-check the scalar oracle too: the bulk kernel is itself a
        # derived artifact, so anchor a few cells to the pure-python count.
        for query in workload[:5]:
            assert count_anonymized(query, snapshot.table) == int(
                oracle[workload.index(query)]
            )
        # Distinct counts reduce the same way: each intersecting partition
        # contributes exactly one, so the oracle is a partition scan.
        distinct = service.query(workload, k=k, kind="distinct")
        for query, value in zip(workload, distinct.values):
            expected = sum(
                1 for p in snapshot.table.partitions if p.box.intersects(query.box)
            )
            assert value == expected


class TestEngineUnits:
    """Direct engine checks against hand-computable oracles."""

    def test_pushdown_prunes_and_stays_exact(self) -> None:
        table = make_census_table(1_500, seed=3)
        engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
        with AnonymizerService(engine_core) as service:
            service.insert_batch(table)
            snapshot = service.release(10)
        engine = QueryEngine(snapshot.table)
        workload = random_range_workload(table, QUERIES, seed=4)
        values = engine.evaluate(workload)
        oracle = count_anonymized_bulk(workload, snapshot.table)
        assert list(values) == [int(value) for value in oracle]
        # The acceptance gate: descending past every leaf would still be
        # exact, but it would not be an index — pruning must happen.
        assert engine.stats.nodes_pruned > 0
        assert engine.stats.nodes_visited > 0

    def test_point_lookup_matches_partition_scan(self) -> None:
        table = make_agrawal_table(800, seed=5)
        engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
        with AnonymizerService(engine_core) as service:
            service.insert_batch(table)
            snapshot = service.release(5)
        engine = QueryEngine(snapshot.table)
        for record in table.records[:25]:
            expected = sum(
                len(p)
                for p in snapshot.table.partitions
                if p.box.contains_point(record.point)
            )
            assert engine.point_lookup(record.point) == expected
            owners = engine.point_partitions(record.point)
            assert all(p.box.contains_point(record.point) for p in owners)
            assert sum(len(p) for p in owners) == expected

    def test_group_by_matches_per_bin_oracle(self) -> None:
        table = make_census_table(900, seed=6)
        engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
        with AnonymizerService(engine_core) as service:
            service.insert_batch(table)
            snapshot = service.release(10)
        engine = QueryEngine(snapshot.table)
        lows = snapshot.table.partitions[0].box.lows
        dimension = 0
        low = min(p.box.lows[dimension] for p in snapshot.table.partitions)
        high = max(p.box.highs[dimension] for p in snapshot.table.partitions)
        edges = [low + (high - low) * step / 4 for step in range(5)]
        bins = engine.group_by_count(dimension, edges)
        queries = group_by_queries(engine.bounds, dimension, edges)
        assert len(bins) == len(edges) - 1 == len(queries)
        for query, (bin_low, bin_high, value) in zip(queries, bins):
            assert (bin_low, bin_high) == (
                query.box.lows[dimension],
                query.box.highs[dimension],
            )
            assert value == count_anonymized(query, snapshot.table)
        assert len(lows) == snapshot.table.schema.dimensions

    def test_point_query_is_degenerate_box(self) -> None:
        query = point_query((3.0, 4.0))
        assert query.box == Box((3.0, 4.0), (3.0, 4.0))

    def test_rejects_unknown_kind(self) -> None:
        table = make_census_table(300, seed=8)
        engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
        with AnonymizerService(engine_core) as service:
            service.insert_batch(table)
            with pytest.raises(ValueError):
                service.query(random_range_workload(table, 1), k=5, kind="sum")


def test_query_differential_tier1_cells() -> None:
    _check_cell("census", 700, 5, "random_range", seed=11)
    _check_cell("agrawal", 700, 25, "single_attribute", seed=11)


@pytest.mark.stress
@pytest.mark.parametrize("dataset", ["census", "agrawal"])
@pytest.mark.parametrize("k", [5, 25])
@pytest.mark.parametrize("shape", ["random_range", "single_attribute"])
def test_query_differential_grid(dataset: str, k: int, shape: str) -> None:
    _check_cell(dataset, 1_200, k, shape, seed=23)


def _cluster_parity_cell(dataset: str, k: int, shards: int, seed: int) -> None:
    """Scatter-gathered answers must match the single-writer's bit for bit."""
    table = _make_table(dataset, 800, seed)
    workload = random_range_workload(table, QUERIES, seed=seed + 1)
    engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
    with AnonymizerService(engine_core) as service:
        service.insert_batch(table)
        single = service.query(workload, k=k, strategy="hilbert")
        single_distinct = service.query(
            workload, k=k, kind="distinct", strategy="hilbert"
        )
    with ShardedCluster(table, ClusterConfig(shards=shards)) as cluster:
        cluster.insert_batch(table)
        sharded = cluster.query(workload, k=k)
        assert sharded.digest == single.digest
        assert sharded.values == single.values
        sharded_distinct = cluster.query(workload, k=k, kind="distinct")
        assert sharded_distinct.values == single_distinct.values


def test_cluster_query_parity_tier1_cell() -> None:
    _cluster_parity_cell("census", 5, 2, seed=31)


@pytest.mark.stress
@pytest.mark.parametrize("dataset", ["census", "agrawal"])
@pytest.mark.parametrize("shards", [2, 4])
def test_cluster_query_parity_grid(dataset: str, shards: int) -> None:
    _cluster_parity_cell(dataset, 25, shards, seed=37)


@pytest.mark.stress
def test_readers_vs_live_writer_answers_are_epoch_consistent() -> None:
    """8 reader threads query while a writer inserts; answers must replay.

    Every :class:`QueryResult` is stamped with the digest of the release
    it was answered against.  For any result whose digest matches a
    snapshot we can still observe, re-counting the same batch against
    that snapshot's table must reproduce the values bit for bit — the
    engine cache may never serve an answer from a stale epoch under a
    matching digest.
    """
    table = make_census_table(1_200, seed=41)
    base = table.records[:800]
    feed = table.records[800:]
    workload = random_range_workload(table, 64, seed=42)
    k = 10
    readers = 8
    engine_core = RTreeAnonymizer(Table(table.schema, ()), base_k=5)
    with AnonymizerService(engine_core) as service:
        service.insert_batch(base)
        stop = threading.Event()
        failures: list[str] = []
        results: list[list] = [[] for _ in range(readers)]

        def write() -> None:
            next_rid = max(record.rid for record in table.records) + 1
            position = 0
            while not stop.is_set():
                batch = [
                    Record(next_rid + offset, record.point, record.sensitive)
                    for offset, record in enumerate(
                        feed[position % len(feed) :][:25] or feed[:25]
                    )
                ]
                next_rid += len(batch)
                position += len(batch)
                service.insert_batch(batch)

        def read(index: int) -> None:
            batch = workload[index::readers] or workload[:8]
            for _ in range(20):
                try:
                    result = service.query(batch, k=k)
                except Exception as error:  # pragma: no cover - fail loudly
                    failures.append(f"reader {index}: {error!r}")
                    return
                results[index].append((batch, result))

        writer = threading.Thread(target=write)
        threads = [
            threading.Thread(target=read, args=(index,)) for index in range(readers)
        ]
        writer.start()
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        writer.join()
        assert not failures, failures
        # The writer has stopped, so the final release is stable: every
        # result stamped with its digest must replay against it exactly,
        # and each reader is guaranteed at least one such result by
        # issuing one more query now.
        final = service.release(k)
        verified = 0
        for index in range(readers):
            batch = workload[index::readers] or workload[:8]
            results[index].append((batch, service.query(batch, k=k)))
        for index, observed in enumerate(results):
            epochs = [result.epoch for _, result in observed]
            assert epochs == sorted(epochs), f"reader {index} saw epochs go back"
            replayed = False
            for batch, result in observed:
                if result.digest != final.digest:
                    continue
                oracle = count_anonymized_bulk(list(batch), final.table)
                assert list(result.values) == [int(value) for value in oracle]
                replayed = True
            assert replayed, f"reader {index} never matched the final digest"
            verified += 1
        assert verified == readers
        # Sanity: the oracle itself agrees with a fresh original count on
        # at least one query, tying the run back to the source table.
        sample = workload[0]
        assert count_original(sample, Table(table.schema, tuple(base))) >= 0
