"""The R+-tree anonymizer end to end."""

from __future__ import annotations

import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.dataset.record import Record
from repro.dataset.table import Table
from repro.geometry.box import Box
from repro.privacy.kanonymity import verify_release
from repro.privacy.ldiversity import DistinctLDiversity
from repro.storage.buffer_pool import BufferPool
from repro.storage.pagefile import PageFile
from tests.conftest import random_records


@pytest.fixture
def loaded(medium_table: Table) -> RTreeAnonymizer:
    anonymizer = RTreeAnonymizer(medium_table, base_k=5)
    anonymizer.bulk_load(medium_table)
    return anonymizer


class TestBulkAnonymization:
    def test_release_passes_full_audit(self, loaded, medium_table) -> None:
        for k in (5, 10, 25):
            release = loaded.anonymize(k)
            assert verify_release(release, medium_table, k) == []

    def test_release_below_base_k_rejected(self, loaded) -> None:
        with pytest.raises(ValueError):
            loaded.anonymize(3)

    def test_release_above_population_rejected(self, schema3) -> None:
        table = Table(schema3, random_records(8, seed=1))
        anonymizer = RTreeAnonymizer(table, base_k=5)
        anonymizer.bulk_load(table)
        with pytest.raises(ValueError):
            anonymizer.anonymize(20)

    def test_one_shot_classmethod(self, medium_table) -> None:
        release = RTreeAnonymizer.anonymize_table(medium_table, k=10)
        assert release.k_effective >= 10
        assert release.record_count == len(medium_table)

    def test_unknown_strategy_rejected(self, loaded) -> None:
        with pytest.raises(ValueError):
            loaded.anonymize(10, strategy="zigzag")

    def test_sequential_strategy_also_audits_clean(
        self, loaded, medium_table
    ) -> None:
        release = loaded.anonymize(10, strategy="sequential")
        assert verify_release(release, medium_table, 10) == []

    def test_constraint_release(self, loaded, medium_table) -> None:
        constraint = DistinctLDiversity(2)
        release = loaded.anonymize(10, constraint=constraint)
        assert verify_release(release, medium_table, 10) == []
        assert constraint.check_table(release)


class TestUncompactedReleases:
    def test_region_boxes_contain_mbrs(self, loaded) -> None:
        compacted = loaded.anonymize(10, compacted=True)
        uncompacted = loaded.anonymize(10, compacted=False)
        assert len(compacted.partitions) == len(uncompacted.partitions)
        for tight, loose in zip(compacted.partitions, uncompacted.partitions):
            assert loose.box.contains_box(tight.box)
            assert tight.rids() == loose.rids()

    def test_leaf_regions_tile_the_domain(self, loaded, medium_table) -> None:
        """Sibling regions are disjoint and cover the whole domain box:
        total discrete volume of the leaf regions equals the domain's."""
        regions = loaded.leaf_regions()
        domain = medium_table.domain_box()
        assert all(domain.contains_box(region) for region in regions)
        # Pairwise interiors are disjoint: shared volume must be zero.
        for i, a in enumerate(regions):
            for b in regions[i + 1 :]:
                overlap = a.intersection(b)
                assert overlap is None or overlap.area() == 0.0
        total_area = sum(region.area() for region in regions)
        assert total_area == pytest.approx(domain.area())

    def test_every_record_in_its_leaf_region(self, loaded) -> None:
        regions = loaded.leaf_regions()
        leaves = loaded.tree.leaves()
        assert len(regions) == len(leaves)
        for region, leaf in zip(regions, leaves):
            assert all(region.contains_point(r.point) for r in leaf.records)
            assert leaf.mbr is not None and region.contains_box(leaf.mbr)


class TestIncremental:
    def test_insert_batch_then_release(self, medium_table, schema3) -> None:
        half = len(medium_table) // 2
        first = Table(schema3, medium_table.records[:half])
        anonymizer = RTreeAnonymizer(first, base_k=5)
        anonymizer.bulk_load(first)
        anonymizer.insert_batch(medium_table.records[half:])
        release = anonymizer.anonymize(10)
        assert verify_release(release, medium_table, 10) == []

    def test_single_inserts_and_deletes(self, schema3) -> None:
        records = random_records(300, seed=3)
        table = Table(schema3, records)
        anonymizer = RTreeAnonymizer(table, base_k=4)
        anonymizer.bulk_load(table)
        extra = Record(9_999, (50.0, 50.0, 50.0), ("flu",))
        anonymizer.insert(extra)
        assert len(anonymizer) == 301
        removed = anonymizer.delete(9_999, extra.point)
        assert removed.rid == 9_999
        anonymizer.tree.check_invariants()

    def test_release_after_deletions_audits_clean(self, schema3) -> None:
        records = random_records(400, seed=4)
        table = Table(schema3, records)
        anonymizer = RTreeAnonymizer(table, base_k=4)
        anonymizer.bulk_load(table)
        for record in records[:100]:
            anonymizer.delete(record.rid, record.point)
        survivors = Table(schema3, records[100:])
        release = anonymizer.anonymize(8)
        assert verify_release(release, survivors, 8) == []


class TestStorageIntegration:
    def test_pool_accounting_surfaces(self, medium_table) -> None:
        pagefile: PageFile[Record] = PageFile(page_bytes=512, record_bytes=12)
        pool: BufferPool[Record] = BufferPool(pagefile, 64 * 512)
        anonymizer = RTreeAnonymizer(medium_table, base_k=5, pool=pool)
        anonymizer.bulk_load(medium_table)
        stats = anonymizer.io_stats()
        assert stats is not None
        assert stats.total > 0

    def test_no_pool_reports_none(self, loaded) -> None:
        assert loaded.io_stats() is None


class TestIntrospection:
    def test_counts(self, loaded, medium_table) -> None:
        assert len(loaded) == len(medium_table)
        assert loaded.leaf_count() == len(loaded.tree.leaves())
        assert loaded.base_k == 5
        assert loaded.schema is medium_table.schema


class TestFileLoading:
    def test_bulk_load_file_streams(self, tmp_path, schema3) -> None:
        from repro.dataset.io import write_table
        from repro.dataset.table import Table

        table = Table(schema3, random_records(500, seed=21))
        path = tmp_path / "stage.rec"
        write_table(table, path)
        anonymizer = RTreeAnonymizer(table, base_k=5)
        consumed = anonymizer.bulk_load_file(str(path), batch_size=64)
        assert consumed == 500
        assert len(anonymizer) == 500
        release = anonymizer.anonymize(10)
        # Payloads are not persisted in record files, so audit against the
        # staged (sensitive-free) view of the table.
        staged = Table(
            schema3, [Record(r.rid, r.point) for r in table]
        )
        assert verify_release(release, staged, 10) == []

    def test_bulk_load_file_dimension_mismatch(self, tmp_path, schema3) -> None:
        from repro.dataset.io import RecordFileWriter
        from repro.dataset.table import Table

        path = tmp_path / "wrong.rec"
        with RecordFileWriter(path, dimensions=2) as writer:
            writer.write_point((1, 2))
        table = Table(schema3, random_records(10, seed=22))
        anonymizer = RTreeAnonymizer(table, base_k=2)
        with pytest.raises(ValueError):
            anonymizer.bulk_load_file(str(path))

    def test_bulk_load_file_reports_consumed_not_header_count(
        self, tmp_path, schema3, monkeypatch
    ) -> None:
        """Regression: the return value is what the loader consumed.

        ``bulk_load_file`` used to return ``len(reader)`` — the header's
        claim — so a short read (e.g. a reader that tolerates truncation)
        was misreported.  Simulate a short read and check the honest count
        comes back.
        """
        import repro.dataset.io as io_module
        from repro.dataset.io import write_table
        from repro.dataset.table import Table

        table = Table(schema3, random_records(200, seed=23))
        path = tmp_path / "short.rec"
        write_table(table, path)

        real_iter = io_module.RecordFileReader.iter_records

        def short_iter(self, batch_size=8192, first_rid=0):  # noqa: ANN001
            for index, record in enumerate(
                real_iter(self, batch_size, first_rid=first_rid)
            ):
                if index >= 120:
                    return
                yield record

        monkeypatch.setattr(io_module.RecordFileReader, "iter_records", short_iter)
        anonymizer = RTreeAnonymizer(table, base_k=5)
        # The stub replaces the scalar iterator, so pin the scalar path —
        # the kernel stream decodes pages directly and would bypass it.
        consumed = anonymizer.bulk_load_file(str(path), use_kernels=False)
        assert consumed == 120
        assert len(anonymizer) == 120


class TestReleaseReflectsPendingWork:
    def test_anonymize_drains_pending_loader_buffers(
        self, medium_table, schema3
    ) -> None:
        """Regression: undelivered buffered records must not be silently
        missing from a "k-anonymous" release."""
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        # Stream through the loader directly and "forget" to drain.
        anonymizer.loader.insert_batch(medium_table.records)
        assert (
            anonymizer.loader.buffered_records > 0
            or anonymizer.tree.in_bulk_mode
        )
        release = anonymizer.anonymize(10)
        assert release.record_count == len(medium_table)
        assert verify_release(release, medium_table, 10) == []
        assert anonymizer.loader.buffered_records == 0
        assert not anonymizer.tree.in_bulk_mode

    def test_anonymize_finishes_bulk_mode_without_buffers(
        self, medium_table
    ) -> None:
        """A tree left in bulk mode (over-full unsplit leaves) is finished
        before leaves are scanned, so occupancy bounds hold in the release."""
        anonymizer = RTreeAnonymizer(medium_table, base_k=5)
        anonymizer.tree.begin_bulk()
        for record in medium_table.records:
            anonymizer.tree.insert(record)
        assert anonymizer.tree.in_bulk_mode
        release = anonymizer.anonymize(10)
        assert not anonymizer.tree.in_bulk_mode
        assert release.record_count == len(medium_table)
        assert verify_release(release, medium_table, 10) == []

    def test_uncompacted_subtree_cursor_stays_aligned(
        self, loaded, medium_table
    ) -> None:
        """The leaf-cursor arithmetic of ``compacted=False`` must consume
        exactly the leaves each subtree-scan group is made of."""
        release = loaded.anonymize(10, compacted=False, strategy="subtree")
        leaves = loaded.tree.leaves()
        regions = loaded.leaf_regions()
        assert release.record_count == len(medium_table)
        assert sum(len(leaf.records) for leaf in leaves) == len(medium_table)
        cursor = 0
        for partition in release.partitions:
            consumed = 0
            expected_rids = set()
            while consumed < len(partition):
                expected_rids.update(r.rid for r in leaves[cursor].records)
                # Every consumed leaf's region is inside the published box.
                assert partition.box.contains_box(regions[cursor])
                consumed += len(leaves[cursor].records)
                cursor += 1
            assert consumed == len(partition)
            assert expected_rids == partition.rids()
        assert cursor == len(leaves)
