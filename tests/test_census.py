"""The census generator and the hierarchy-aware pipeline on top of it."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.compaction import describe_partition
from repro.dataset.census import (
    CENSUS_ATTRIBUTES,
    INCOME_BRACKETS,
    CensusGenerator,
    census_schema,
    make_census_table,
)
from repro.metrics.certainty import certainty_penalty
from repro.privacy.kanonymity import verify_release
from repro.privacy.ldiversity import DistinctLDiversity


@pytest.fixture(scope="module")
def census_table():
    return make_census_table(3_000, seed=5)


class TestGenerator:
    def test_schema_shape(self) -> None:
        schema = census_schema()
        assert schema.names() == CENSUS_ATTRIBUTES
        assert schema.sensitive == ("income",)
        # Five attributes carry deep hierarchies; race/sex are flat.
        deep = [
            a.name
            for a in schema.quasi_identifiers
            if a.hierarchy is not None and a.hierarchy.height > 1
        ]
        assert set(deep) == {
            "workclass", "education", "marital_status", "occupation", "region"
        }

    def test_determinism(self) -> None:
        a = make_census_table(100, seed=1)
        b = make_census_table(100, seed=1)
        assert a.points() == b.points()
        assert [r.sensitive for r in a] == [r.sensitive for r in b]

    def test_codes_match_hierarchy_orderings(self) -> None:
        generator = CensusGenerator()
        schema = generator.schema
        education = schema.attribute("education").hierarchy
        assert education is not None
        ordering = education.ordering()
        assert generator.code("education", "Bachelors") == ordering["Bachelors"]

    def test_values_within_domains(self, census_table) -> None:
        for dimension, attribute in enumerate(
            census_table.schema.quasi_identifiers
        ):
            values = [r.point[dimension] for r in census_table]
            assert min(values) >= attribute.domain_low
            assert max(values) <= attribute.domain_high

    def test_income_is_sensitive_and_correlated(self, census_table) -> None:
        incomes = {r.sensitive[0] for r in census_table}
        assert incomes <= set(INCOME_BRACKETS)
        # Structure for diversity experiments: both brackets present, the
        # high bracket a minority, and correlated with education tier.
        high = [r for r in census_table if r.sensitive[0] == ">50K"]
        assert 0.1 * len(census_table) < len(high) < 0.5 * len(census_table)
        generator = CensusGenerator(seed=5)
        bachelor_code = generator.code("education", "Bachelors")
        education_index = census_table.schema.index_of("education")
        high_rate_educated = np.mean(
            [
                r.sensitive[0] == ">50K"
                for r in census_table
                if r.point[education_index] >= bachelor_code
            ]
        )
        high_rate_rest = np.mean(
            [
                r.sensitive[0] == ">50K"
                for r in census_table
                if r.point[education_index] < bachelor_code
            ]
        )
        assert high_rate_educated > 1.5 * high_rate_rest


class TestHierarchyAwarePipeline:
    def test_release_audits_clean(self, census_table) -> None:
        release = RTreeAnonymizer.anonymize_table(census_table, k=10)
        assert verify_release(release, census_table, 10) == []

    def test_hierarchical_certainty_differs_from_numeric(self, census_table) -> None:
        """The categorical NCP branch charges leaf fractions, not interval
        widths — the two scores must genuinely differ on hierarchy data."""
        release = RTreeAnonymizer.anonymize_table(census_table, k=10)
        numeric = certainty_penalty(release, census_table)
        hierarchical = certainty_penalty(
            release, census_table, use_hierarchies=True
        )
        assert numeric != hierarchical
        assert hierarchical > 0

    def test_describe_partition_uses_hierarchy_labels(self, census_table) -> None:
        release = RTreeAnonymizer.anonymize_table(census_table, k=25)
        rendered = [
            describe_partition(partition, census_table.schema)
            for partition in release.partitions[:50]
        ]
        # Workclass column: every rendering is a hierarchy node label,
        # never a bare code interval.
        workclass_labels = {row[1] for row in rendered}
        hierarchy = census_table.schema.attribute("workclass").hierarchy
        assert hierarchy is not None
        valid_labels = {"*", "employed", "not-employed", "private-sector",
                        "self-employed", "government", "Private",
                        "Self-emp-not-inc", "Self-emp-inc", "Federal-gov",
                        "State-gov", "Local-gov", "Without-pay", "Never-worked"}
        assert workclass_labels <= valid_labels

    def test_l_diverse_release_on_income(self, census_table) -> None:
        anonymizer = RTreeAnonymizer(census_table, base_k=5, leaf_capacity=9)
        anonymizer.bulk_load(census_table)
        constraint = DistinctLDiversity(2, sensitive_index=0)
        release = anonymizer.anonymize(10, constraint=constraint)
        assert constraint.check_table(release)
        assert verify_release(release, census_table, 10) == []
