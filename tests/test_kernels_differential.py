"""Kernels-on/kernels-off differential suite.

The columnar kernels' contract is *bit-for-bit equality* with the scalar
paths they replace: flipping ``use_kernels`` must never change a release.
This suite enforces it end to end across a grid of datasets × k × worker
counts, comparing leaf regions, partition boxes and membership, the
release digest, and the audit record (modulo its sequence field) between
the two modes — the same four levels as the serial/parallel differential
suite, with the kernel flag as the axis instead of the worker count.

One small cell runs in tier-1 on every push; the full grid carries the
``stress`` marker and runs in the dedicated CI job alongside the byte-level
writer/reader and loader differentials below.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np
import pytest

from repro.core.anonymizer import RTreeAnonymizer
from repro.core.partition import release_digest
from repro.dataset.agrawal import make_agrawal_table
from repro.dataset.census import make_census_table
from repro.dataset.io import RecordFileReader, RecordFileWriter, write_table
from repro.index.bulk import hilbert_partitions, hilbert_sorted
from repro.kernels import scoped_kernels
from repro.obs import AUDITOR
from repro.parallel.planner import plan_file_shards, plan_record_shards

RECORDS = 600
STRESS_RECORDS = 2_400
SEED = 7
DATASETS = {
    "census": make_census_table,
    "agrawal": make_agrawal_table,
}
GRID = [
    (dataset, k, workers)
    for dataset in sorted(DATASETS)
    for k in (5, 25)
    for workers in (1, 4)
]


@lru_cache(maxsize=None)
def _table(dataset: str, records: int):
    return DATASETS[dataset](records, seed=SEED)


def _domain(table):
    return table.schema.domain_lows(), table.schema.domain_highs()


@pytest.fixture(scope="module")
def record_files(tmp_path_factory):
    staging = tmp_path_factory.mktemp("kernels_differential")
    paths = {}
    for dataset in DATASETS:
        for records in (RECORDS, STRESS_RECORDS):
            path = str(staging / f"{dataset}-{records}.records")
            write_table(_table(dataset, records), path)
            paths[dataset, records] = path
    return paths


def _release_snapshot(
    dataset: str, k: int, workers: int | None, records: int, path: str, on: bool
):
    """Load from file and publish at k with the kernels forced on or off."""
    table = _table(dataset, records)
    with scoped_kernels(on):
        anonymizer = RTreeAnonymizer(table, base_k=min(5, k))
        consumed = anonymizer.bulk_load_file(path, workers=workers)
        assert consumed == records
        AUDITOR.enable(reset=True)
        try:
            release = anonymizer.anonymize(k)
            audit = dict(AUDITOR.latest)
        finally:
            AUDITOR.disable()
    audit.pop("sequence", None)
    regions = [
        (region.lows, region.highs) for region in anonymizer.leaf_regions()
    ]
    partitions = [
        ((p.box.lows, p.box.highs), sorted(p.rids()))
        for p in release.partitions
    ]
    return regions, partitions, release_digest(release), audit


def _assert_flag_invisible(dataset, k, workers, records, path) -> None:
    fast = _release_snapshot(dataset, k, workers, records, path, on=True)
    slow = _release_snapshot(dataset, k, workers, records, path, on=False)
    for name, got, expected in zip(
        ("regions", "partitions", "digest", "audit"), fast, slow
    ):
        assert got == expected, (
            f"{dataset} k={k} workers={workers}: {name} diverged across "
            "the kernel flag"
        )


def test_small_cell_release_identical_across_flag(record_files) -> None:
    """The tier-1 cell: serial and sharded, census at the default k."""
    path = record_files["census", RECORDS]
    for workers in (None, 2):
        _assert_flag_invisible("census", 5, workers, RECORDS, path)


@pytest.mark.stress
@pytest.mark.parametrize(("dataset", "k", "workers"), GRID)
def test_release_identical_across_flag(
    dataset: str, k: int, workers: int, record_files
) -> None:
    path = record_files[dataset, STRESS_RECORDS]
    _assert_flag_invisible(dataset, k, workers, STRESS_RECORDS, path)


@pytest.mark.stress
def test_forced_multiprocessing_identical_across_flag(
    monkeypatch, record_files
) -> None:
    """Cross the real process boundary: the resolved flag rides inside the
    worker task tuples, so a forced pool must behave like the in-process
    fallback in both modes."""
    monkeypatch.setenv("REPRO_PARALLEL_POOL", "force")
    path = record_files["census", RECORDS]
    _assert_flag_invisible("census", 5, 4, RECORDS, path)


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_hilbert_ordering_identical_across_flag(dataset: str) -> None:
    """The loader's sort — keys, stable tie order, and grouping — is the
    innermost surface the flag touches; compare it directly."""
    table = _table(dataset, RECORDS)
    records = list(table.records)
    lows, highs = _domain(table)
    assert hilbert_sorted(records, lows, highs, use_kernels=True) == (
        hilbert_sorted(records, lows, highs, use_kernels=False)
    )
    assert hilbert_partitions(records, lows, highs, 5, use_kernels=True) == (
        hilbert_partitions(records, lows, highs, 5, use_kernels=False)
    )


@pytest.mark.parametrize("dataset", sorted(DATASETS))
def test_shard_plans_identical_across_flag(dataset: str, record_files) -> None:
    """Planner sampling keys through the kernels must place the exact same
    shard boundaries (they are plain Python ints on both paths)."""
    table = _table(dataset, RECORDS)
    records = list(table.records)
    lows, highs = _domain(table)
    path = record_files[dataset, RECORDS]
    from repro.index.bulk import DEFAULT_HILBERT_BITS as BITS

    for shards in (2, 5):
        assert plan_record_shards(
            records, shards, lows, highs, BITS, use_kernels=True
        ) == plan_record_shards(
            records, shards, lows, highs, BITS, use_kernels=False
        )
        assert plan_file_shards(
            path, shards, lows, highs, BITS, use_kernels=True
        ) == plan_file_shards(
            path, shards, lows, highs, BITS, use_kernels=False
        )


def test_batch_writer_produces_byte_identical_files(tmp_path) -> None:
    """``write_batch`` against a per-record ``write_point`` control file."""
    table = _table("census", RECORDS)
    points = [record.point for record in table.records]
    scalar_path = tmp_path / "scalar.records"
    batch_path = tmp_path / "batch.records"
    with RecordFileWriter(scalar_path, len(points[0])) as writer:
        for point in points:
            writer.write_point(point)
    with RecordFileWriter(batch_path, len(points[0])) as writer:
        written = writer.write_batch(np.array(points, dtype=np.float64))
    assert written == len(points)
    assert batch_path.read_bytes() == scalar_path.read_bytes()


def test_batch_reader_yields_the_scalar_rows(tmp_path) -> None:
    """``iter_point_batches`` over every batch size tiles ``iter_points``
    exactly, including the slice-window form the shard scanners use."""
    table = _table("census", RECORDS)
    path = tmp_path / "census.records"
    write_table(table, path)
    reader = RecordFileReader(path)
    scalar = [tuple(point) for point in reader.iter_points()]
    for batch_size in (1, 7, 256, 10_000):
        rows: list[tuple[float, ...]] = []
        positions: list[int] = []
        for position, points in reader.iter_point_batches(batch_size):
            positions.append(position)
            rows.extend(tuple(row) for row in points.tolist())
        assert rows == scalar
        assert positions[0] == 0
    window = list(reader.iter_point_batches(64, start=100, count=37))
    windowed = [
        tuple(row) for _, points in window for row in points.tolist()
    ]
    assert windowed == scalar[100:137]
    assert window[0][0] == 100
