"""Cut trees and node structure: routing, replacement, shared-slot semantics."""

from __future__ import annotations

import pytest

from repro.dataset.record import Record
from repro.index.node import (
    Cut,
    InternalNode,
    LeafNode,
    Slot,
    count_cut_children,
    find_slot,
    iter_cut_children,
    make_cut,
    route_cut,
)


def leaf_with(points: list[tuple[float, ...]], first_rid: int = 0) -> LeafNode:
    leaf = LeafNode()
    leaf.records = [Record(first_rid + i, p) for i, p in enumerate(points)]
    leaf.recompute_mbr()
    return leaf


@pytest.fixture
def three_leaves() -> tuple[LeafNode, LeafNode, LeafNode, InternalNode]:
    """An internal node over cuts:  (x<=5 ? A : (x<=8 ? B : C))."""
    a, b, c = leaf_with([(1.0,)]), leaf_with([(6.0,)], 10), leaf_with([(9.0,)], 20)
    cuts = Slot(Cut(0, 5.0, Slot(a), Slot(Cut(0, 8.0, Slot(b), Slot(c)))))
    node = InternalNode(level=1, cuts=cuts)
    for child in node.children():
        child.parent = node
    node.recompute_mbr()
    return a, b, c, node


class TestCutTree:
    def test_children_left_to_right(self, three_leaves) -> None:
        a, b, c, node = three_leaves
        assert list(node.children()) == [a, b, c]
        assert count_cut_children(node.cuts) == 3
        assert node.fanout == 3

    def test_routing_is_deterministic(self, three_leaves) -> None:
        a, b, c, node = three_leaves
        assert node.route((5.0,)) is a  # boundary goes left
        assert node.route((5.1,)) is b
        assert node.route((8.0,)) is b
        assert node.route((8.5,)) is c

    def test_find_slot(self, three_leaves) -> None:
        a, _b, _c, node = three_leaves
        slot = find_slot(node.cuts, a)
        assert slot is not None and slot.inner is a
        assert find_slot(node.cuts, LeafNode()) is None

    def test_replace_child_updates_fanout(self, three_leaves) -> None:
        a, b, c, node = three_leaves
        a1, a2 = leaf_with([(0.0,)], 30), leaf_with([(3.0,)], 40)
        node.replace_child(a, make_cut(0, 2.0, a1, a2), added=1)
        assert node.fanout == 4
        assert list(node.children()) == [a1, a2, b, c]
        assert node.route((0.5,)) is a1

    def test_replace_missing_child_raises(self, three_leaves) -> None:
        _a, _b, _c, node = three_leaves
        with pytest.raises(KeyError):
            node.replace_child(LeafNode(), LeafNode(), added=0)

    def test_remove_child_promotes_sibling(self, three_leaves) -> None:
        a, b, c, node = three_leaves
        node.remove_child(b)
        assert node.fanout == 2
        assert list(node.children()) == [a, c]
        # the x<=8 cut was spliced out: everything right of 5 routes to c
        assert node.route((6.0,)) is c
        assert node.route((4.0,)) is a

    def test_remove_only_child_rejected(self) -> None:
        a = leaf_with([(1.0,)])
        node = InternalNode(level=1, cuts=Slot(a))
        with pytest.raises(ValueError):
            node.remove_child(a)

    def test_stale_view_sees_replacement(self, three_leaves) -> None:
        """The load-bearing slot property: structural edits are mutations.

        A stale holder of the cut tree (here: the raw ``cuts`` slot captured
        before the edit) must observe child replacements, because the
        buffer-tree loader routes from node references captured before
        splits restructure the tree.
        """
        a, _b, _c, node = three_leaves
        stale_view = node.cuts  # captured "before"
        a1, a2 = leaf_with([(0.0,)], 30), leaf_with([(3.0,)], 40)
        node.replace_child(a, make_cut(0, 2.0, a1, a2), added=1)
        assert route_cut(stale_view, (0.5,)) is a1
        assert route_cut(stale_view, (3.0,)) is a2


class TestNodeMetadata:
    def test_leaf_mbr_recompute(self) -> None:
        leaf = leaf_with([(1.0,), (5.0,)])
        assert leaf.mbr is not None
        assert (leaf.mbr.lows, leaf.mbr.highs) == ((1.0,), (5.0,))
        leaf.records.pop()
        leaf.recompute_mbr()
        assert leaf.mbr.highs == (1.0,)
        leaf.records.clear()
        leaf.recompute_mbr()
        assert leaf.mbr is None

    def test_internal_mbr_unions_children(self, three_leaves) -> None:
        _a, _b, _c, node = three_leaves
        assert node.mbr is not None
        assert (node.mbr.lows, node.mbr.highs) == ((1.0,), (9.0,))

    def test_record_count_recurses(self, three_leaves) -> None:
        _a, _b, _c, node = three_leaves
        assert node.record_count() == 3

    def test_levels(self, three_leaves) -> None:
        a, _b, _c, node = three_leaves
        assert a.is_leaf and not node.is_leaf
        assert a.level == 0 and node.level == 1

    def test_node_ids_unique(self) -> None:
        assert LeafNode().node_id != LeafNode().node_id

    def test_iter_cut_children_on_bare_slot(self) -> None:
        leaf = leaf_with([(1.0,)])
        assert list(iter_cut_children(Slot(leaf))) == [leaf]
